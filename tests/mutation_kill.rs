//! Mutation-kill: every behaviour-changing injected RTL bug must be caught
//! by sequential equivalence checking, and SEC must never contradict
//! concrete simulation — the soundness contract between the two
//! verification paths of the paper's §2.

use dfv::bits::Bv;
use dfv::cosim::{apply_mutation, enumerate_mutations, FieldSpec, StimulusGen};
use dfv::designs::alu;
use dfv::rtl::Simulator;
use dfv::sec::{check_equivalence, EquivOutcome};
use dfv::slmir::{elaborate, parse};

#[test]
fn every_alu_mutant_is_classified_soundly() {
    let prog = parse(alu::slm_bit_accurate()).unwrap();
    let slm = elaborate(&prog, "alu").unwrap();
    let golden = alu::rtl(8, 8);
    let spec = alu::equiv_spec();
    assert!(check_equivalence(&slm, &golden, &spec)
        .unwrap()
        .outcome
        .is_equivalent());

    let mutations = enumerate_mutations(&golden);
    assert!(mutations.len() >= 8, "want a meaningful mutant population");
    let mut caught = 0;
    let mut benign = 0;
    for m in &mutations {
        let mutant = apply_mutation(&golden, m);
        let report = check_equivalence(&slm, &mutant, &spec).unwrap();
        match report.outcome {
            EquivOutcome::NotEquivalent(cex) => {
                caught += 1;
                // The checker already replay-validated the counterexample;
                // revalidate here across the crate boundary.
                let mut sim = Simulator::new(mutant).unwrap();
                for (name, v) in &cex.rtl_inputs[0] {
                    sim.poke(name, v.clone());
                }
                sim.step();
                for (name, v) in &cex.rtl_inputs[1] {
                    sim.poke(name, v.clone());
                }
                let got = sim.output("out");
                let mismatch = &cex.mismatches[0];
                assert_eq!(got, mismatch.rtl_value, "replay of {m:?}");
            }
            EquivOutcome::Equivalent => {
                benign += 1;
                // SEC says equivalent: simulation must agree on a random
                // sweep (no false equivalences).
                let mut gen = StimulusGen::new(99)
                    .field(
                        "a",
                        FieldSpec::Corners {
                            width: 8,
                            corner_percent: 40,
                        },
                    )
                    .field(
                        "b",
                        FieldSpec::Corners {
                            width: 8,
                            corner_percent: 40,
                        },
                    )
                    .field(
                        "c",
                        FieldSpec::Corners {
                            width: 8,
                            corner_percent: 40,
                        },
                    );
                let mutant = apply_mutation(&golden, m);
                let mut mut_sim = Simulator::new(mutant).unwrap();
                let mut ref_sim = Simulator::new(golden.clone()).unwrap();
                for _ in 0..300 {
                    let txn = gen.next_transaction();
                    for sim in [&mut mut_sim, &mut ref_sim] {
                        sim.reset();
                        sim.step_with(&[
                            ("a", txn["a"].clone()),
                            ("b", txn["b"].clone()),
                            ("c", txn["c"].clone()),
                        ]);
                    }
                    assert_eq!(
                        mut_sim.output("out"),
                        ref_sim.output("out"),
                        "SEC called {m:?} benign but simulation disagrees"
                    );
                }
            }
            EquivOutcome::Inconclusive { reason, .. } => {
                panic!("unbudgeted SEC must never be inconclusive: {reason}")
            }
        }
    }
    // Every datapath mutation must be caught; the benign ones are the
    // reset-value flips, which a from-reset transaction that overwrites
    // both registers on cycle 0 genuinely cannot observe.
    assert!(caught >= 4, "caught {caught}, benign {benign}");
    assert_eq!(caught + benign, mutations.len());
}

#[test]
fn dropped_stall_bug_is_caught_on_fir() {
    use dfv::cosim::Mutation;
    use dfv::designs::fir;
    // The paper's §3.2 "stall conditions" bug: drop a clock enable.
    let prog = parse(fir::slm_source()).unwrap();
    let slm = elaborate(&prog, "fir").unwrap();
    let golden = fir::rtl();
    let mutations = enumerate_mutations(&golden);
    let drop_en = mutations
        .iter()
        .find(|m| matches!(m, Mutation::DropEnable { .. }))
        .expect("fir has enables to drop");
    let mutant = apply_mutation(&golden, drop_en);

    // The stall-free transaction cannot distinguish them (enables are
    // always on in that environment)...
    let report = check_equivalence(&slm, &mutant, &fir::equiv_spec()).unwrap();
    assert!(report.outcome.is_equivalent());

    // ...but a transaction with one stalled cycle exposes the bug: delay
    // every post-stall binding and compare point by one cycle, with the
    // stalled cycle's inputs free.
    let spec = stalling_spec();
    let golden_report = check_equivalence(&slm, &golden, &spec).unwrap();
    assert!(
        golden_report.outcome.is_equivalent(),
        "golden must honor stalls: {:?}",
        golden_report.outcome
    );
    let mutant_report = check_equivalence(&slm, &mutant, &spec).unwrap();
    assert!(
        !mutant_report.outcome.is_equivalent(),
        "dropped enable must be caught under a stalling environment"
    );
}

/// Like `fir::equiv_spec`, but with a stall bubble inserted at cycle 3.
fn stalling_spec() -> dfv::sec::EquivSpec {
    use dfv::sec::{Binding, EquivSpec};
    let block = dfv::designs::fir::BLOCK as u32;
    let ow = dfv::designs::fir::OUT_WIDTH;
    let stall_at = 3u32;
    let mut spec = EquivSpec::new(block + 2);
    for n in 0..block {
        // Samples before the bubble go at cycle n; later ones shift by 1.
        let t = if n < stall_at { n } else { n + 1 };
        spec = spec
            .bind("in_valid", t, Binding::Const(Bv::from_bool(true)))
            .bind("stall", t, Binding::Const(Bv::from_bool(false)))
            .bind(
                "x",
                t,
                Binding::SlmSlice {
                    name: "xs".into(),
                    hi: n * 8 + 7,
                    lo: n * 8,
                },
            );
        spec = spec.compare_slice("ys", (n + 1) * ow - 1, n * ow, "y", t + 1);
    }
    // The bubble: stall asserted, inputs free (the RTL must ignore them).
    spec = spec
        .bind("stall", stall_at, Binding::Const(Bv::from_bool(true)))
        .bind("in_valid", stall_at, Binding::Free)
        .bind("x", stall_at, Binding::Free);
    // Idle tail.
    spec.bind("in_valid", block + 1, Binding::Const(Bv::from_bool(false)))
}
