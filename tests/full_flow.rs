//! End-to-end integration: the complete paper methodology across crates —
//! lint → elaborate → co-simulate → equivalence-check → campaign.

use dfv::bits::Bv;
use dfv::core::{BlockPair, BlockStatus, Campaign, VerificationPlan};
use dfv::designs::{alu, conv, fir};
use dfv::rtl::Simulator;
use dfv::sec::{check_equivalence, EquivOutcome};
use dfv::slmir::{elaborate, is_conditioned, parse, Interp, ScalarTy, Value};

/// The full campaign over the verifiable design pairs.
fn plan() -> VerificationPlan {
    VerificationPlan::new()
        .block(BlockPair {
            name: "alu".into(),
            slm_source: alu::slm_bit_accurate().into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        })
        .block(BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        })
        .block(BlockPair {
            name: "conv".into(),
            slm_source: conv::slm_source().into(),
            slm_entry: "blur".into(),
            rtl: conv::rtl(),
            spec: conv::equiv_spec(),
        })
}

#[test]
fn whole_campaign_passes_and_caches() {
    let plan = plan();
    let mut campaign = Campaign::new();
    let r1 = campaign.run(&plan);
    assert!(r1.all_pass(), "\n{r1}");
    assert_eq!(r1.cache_hits(), 0);
    // Re-run: all cache hits, dramatically faster (paper §4.1).
    let r2 = campaign.run(&plan);
    assert!(r2.all_pass());
    assert_eq!(r2.cache_hits(), plan.blocks.len());
    assert!(r2.duration < r1.duration / 10);
}

#[test]
fn editing_one_block_reverifies_only_it() {
    let mut campaign = Campaign::new();
    let base = plan();
    campaign.run(&base);
    let mut edited = base.clone();
    edited.blocks[0].slm_source = alu::slm_int_style().into();
    let r = campaign.run(&edited);
    assert_eq!(r.cache_hits(), base.blocks.len() - 1);
    // The int-style SLM is NOT equivalent to the 8-bit-temp RTL (Fig 1).
    assert!(matches!(r.blocks[0].status, BlockStatus::NotEquivalent(_)));
    assert!(r.blocks[1].status == BlockStatus::Pass);
}

#[test]
fn all_design_slms_are_conditioned() {
    for (src, entry) in [
        (alu::slm_bit_accurate(), "alu"),
        (alu::slm_int_style(), "alu"),
        (fir::slm_source(), "fir"),
        (conv::slm_source(), "blur"),
    ] {
        let prog = parse(src).unwrap();
        assert!(is_conditioned(&prog, entry), "{entry} has blocking lints");
    }
}

#[test]
fn interpreter_elaborator_and_rtl_agree_on_fir() {
    // Three-way agreement on concrete data: SLM interpreter, elaborated
    // SLM hardware model, and the streaming RTL.
    let prog = parse(fir::slm_source()).unwrap();
    let slm_hw = elaborate(&prog, "fir").unwrap();
    let samples: Vec<i64> = vec![12, -33, 7, 127, -128, 0, 55, -1];

    // Interpreter.
    let s8 = ScalarTy {
        width: 8,
        signed: true,
    };
    let xs = Value::Array(samples.iter().map(|&s| Bv::from_i64(8, s)).collect(), s8);
    let run = Interp::new(&prog).run("fir", &[xs]).unwrap();
    let (_, Value::Array(interp_ys, _)) = &run.outs[0] else {
        panic!()
    };

    // Elaborated hardware model.
    let mut packed = Bv::from_i64(8, samples[0]);
    for &s in &samples[1..] {
        packed = Bv::from_i64(8, s).concat(&packed);
    }
    let mut hw = Simulator::new(slm_hw).unwrap();
    let hw_ys = hw.eval_comb(&[("xs", packed)])["ys"].clone();

    // Streaming RTL.
    let mut rtl = Simulator::new(fir::rtl()).unwrap();
    let mut rtl_ys = Vec::new();
    for &s in &samples {
        rtl.poke("in_valid", Bv::from_bool(true));
        rtl.poke("stall", Bv::from_bool(false));
        rtl.poke("x", Bv::from_i64(8, s));
        rtl.step();
        rtl_ys.push(rtl.output("y"));
    }

    for (i, iy) in interp_ys.iter().enumerate() {
        let lo = i as u32 * fir::OUT_WIDTH;
        assert_eq!(&hw_ys.slice(lo + fir::OUT_WIDTH - 1, lo), iy, "hw ys[{i}]");
        assert_eq!(&rtl_ys[i], iy, "rtl ys[{i}]");
    }
}

#[test]
fn fig1_flow_from_the_paper() {
    // The paper's storyline end to end: the int-style SLM simulates
    // "correctly", random simulation may or may not hit the corner, and SEC
    // nails the exact witness.
    let prog = parse(alu::slm_int_style()).unwrap();
    let slm = elaborate(&prog, "alu").unwrap();
    let narrow_rtl = alu::rtl(8, 8);
    let report = check_equivalence(&slm, &narrow_rtl, &alu::equiv_spec()).unwrap();
    let EquivOutcome::NotEquivalent(cex) = report.outcome else {
        panic!("int-style SLM must diverge from narrow RTL");
    };
    // The witness must exercise the 8-bit overflow of a + b.
    let get = |n: &str| {
        cex.slm_inputs
            .iter()
            .find(|(name, _)| name == n)
            .unwrap()
            .1
            .to_i64()
    };
    let sum = get("a") + get("b");
    assert!(!(-128..=127).contains(&sum), "witness must overflow: {cex}");

    // The paper's fix: widen the RTL temporary; now they are equivalent.
    let wide_rtl = alu::rtl(8, 9);
    let report = check_equivalence(&slm, &wide_rtl, &alu::equiv_spec()).unwrap();
    assert!(report.outcome.is_equivalent());
}

#[test]
fn netlist_roundtrip_preserves_design_rtl() {
    for m in [alu::rtl(8, 8), fir::rtl(), conv::rtl()] {
        let text = dfv::rtl::write_module(&m);
        let back = dfv::rtl::parse_module(&text).unwrap();
        assert_eq!(back, m, "netlist roundtrip of {}", m.name);
    }
}
