//! Per-output incremental SEC: a divergence is localized to the specific
//! output samples (stream beats) that disagree, on one shared CNF with
//! clause learning carried across outputs.

use dfv::cosim::{apply_mutation, enumerate_mutations, Mutation};
use dfv::designs::fir;
use dfv::sec::{check_equivalence_per_output, EquivOutcome};
use dfv::slmir::{elaborate, parse};

#[test]
fn clean_fir_proves_every_output() {
    let slm = elaborate(&parse(fir::slm_source()).unwrap(), "fir").unwrap();
    let report = check_equivalence_per_output(&slm, &fir::rtl(), &fir::equiv_spec()).unwrap();
    assert!(report.all_equivalent());
    assert_eq!(report.verdicts.len(), fir::BLOCK);
    // Shared learning: no later output may be drastically more expensive
    // than the whole-check; just sanity-check they all completed.
    for v in &report.verdicts {
        assert!(v.outcome.is_equivalent(), "{:?}", v.compare);
    }
}

#[test]
fn mutated_fir_divergence_is_localized() {
    let slm = elaborate(&parse(fir::slm_source()).unwrap(), "fir").unwrap();
    let golden = fir::rtl();
    // Swap an adder in the MAC into a subtractor (an Add -> Sub swap can
    // only target the accumulate chain in this design): every output beat
    // diverges; the per-output report says exactly which.
    let m = enumerate_mutations(&golden)
        .into_iter()
        .find(|m| {
            matches!(
                m,
                Mutation::SwapBinOp {
                    new_op: dfv::rtl::ir::BinOp::Sub,
                    ..
                }
            )
        })
        .expect("fir has adders");
    let mutant = apply_mutation(&golden, &m);
    let report = check_equivalence_per_output(&slm, &mutant, &fir::equiv_spec()).unwrap();
    let bad: Vec<u32> = report
        .verdicts
        .iter()
        .filter(|v| !v.outcome.is_equivalent())
        .map(|v| v.compare.rtl_cycle)
        .collect();
    assert!(!bad.is_empty(), "a datapath mutation must show somewhere");
    // Every reported divergence carries a concrete (replayed) witness.
    for v in &report.verdicts {
        if let EquivOutcome::NotEquivalent(cex) = &v.outcome {
            assert!(!cex.mismatches.is_empty());
        }
    }
    // And the one-shot checker agrees that the pair diverges at all.
    let whole = dfv::sec::check_equivalence(&slm, &mutant, &fir::equiv_spec()).unwrap();
    assert!(!whole.outcome.is_equivalent());
}
