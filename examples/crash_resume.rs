//! Crash-tolerant campaigns end to end: run a journaled verification
//! campaign, kill the process mid-run with a chaos-injected hard abort,
//! then rerun the same command to resume from the journal — the resumed
//! canonical report is byte-identical to an uninterrupted run's.
//!
//! Modes:
//!
//! * `cargo run --example crash_resume -- <journal> <out.json>` — run the
//!   plan with the journal at `<journal>` (resuming from whatever records
//!   it already holds) and write the canonical JSON report to `<out.json>`;
//! * `cargo run --example crash_resume -- <journal> <out.json> --kill-after N`
//!   — same, but the process `abort()`s the instant the Nth journal
//!   record lands on disk: a genuine SIGKILL mid-campaign. The command
//!   exits nonzero and writes no report; the journal keeps the N records.
//!
//! `scripts/check.sh` uses exactly this sequence — clean run, killed run,
//! resumed run — and byte-compares the clean and resumed reports.

use dfv::core::{
    BlockPair, Campaign, CampaignOptions, ChaosPlan, IoHandle, JournalLoad, VerificationPlan,
};
use dfv::designs::{alu, fir};
use dfv::rtl::ModuleBuilder;
use dfv::sec::{Binding, EquivSpec};
use std::path::PathBuf;

/// An equivalent multiplier-commutativity block (`a * b` against `b * a`)
/// at `width` bits per operand.
fn mul_block(name: &str, width: u32) -> BlockPair {
    let out = 2 * width;
    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", width);
    let b = rb.input("b", width);
    let (aw, bw) = (rb.zext(a, out), rb.zext(b, out));
    let y = rb.mul(bw, aw);
    rb.output("y", y);
    BlockPair {
        name: name.into(),
        slm_source: format!(
            "uint<{out}> mul(uint<{width}> a, uint<{width}> b) {{ return (uint<{out}>)a * (uint<{out}>)b; }}"
        ),
        slm_entry: "mul".into(),
        rtl: rb.finish().expect("mul rtl builds"),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

fn plan() -> VerificationPlan {
    let mut plan = VerificationPlan::new()
        .block(BlockPair {
            name: "alu".into(),
            slm_source: alu::slm_bit_accurate().into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        })
        .block(BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        });
    for (i, width) in [4, 4, 5, 5, 6].into_iter().enumerate() {
        plan = plan.block(mul_block(&format!("mul{width}_{i}"), width));
    }
    plan
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(journal), Some(out)) = (args.next(), args.next()) else {
        eprintln!("usage: crash_resume <journal> <out.json> [--kill-after N]");
        std::process::exit(2);
    };
    let kill_after = match (args.next().as_deref(), args.next()) {
        (Some("--kill-after"), Some(n)) => Some(n.parse::<u64>().expect("N must be a number")),
        (None, _) => None,
        _ => {
            eprintln!("usage: crash_resume <journal> <out.json> [--kill-after N]");
            std::process::exit(2);
        }
    };

    let io = match kill_after {
        // abort() the instant the Nth journal record is durable: the
        // process dies mid-campaign exactly as a SIGKILL would.
        Some(n) => IoHandle::chaos(ChaosPlan::none(0).kill_after_nth_append(n)),
        None => IoHandle::real(),
    };
    let plan = plan();
    let mut campaign = Campaign::with_options(CampaignOptions {
        journal_path: Some(PathBuf::from(&journal)),
        io,
        ..CampaignOptions::default()
    });
    let report = campaign.run(&plan);
    // A --kill-after run never reaches this line.

    println!("{report}");
    match report.journal_load {
        JournalLoad::Resumed { entries, dropped } => println!(
            "resumed: {entries} journaled record(s) loaded, {dropped} dropped, \
             {} block(s) replayed without recomputation",
            report.journal_replayed()
        ),
        JournalLoad::Fresh => println!("fresh journal started at {journal}"),
        JournalLoad::Disabled => unreachable!("journal_path is always set here"),
    }
    let canonical = report.to_run_report().canonical_json();
    std::fs::write(&out, &canonical).expect("write canonical report");
    println!("canonical report written to {out}");

    // Crashed blocks are quarantined, not fatal, during the run — but a
    // report that still contains them after resume means some work never
    // produced a verdict, and CI must see that as a failure.
    let crashed = report.crashed();
    if crashed > 0 {
        eprintln!("{crashed} block(s) crashed and were quarantined; rerun to retry them");
        std::process::exit(1);
    }
    assert!(report.all_pass(), "every block in this plan is equivalent");
}
