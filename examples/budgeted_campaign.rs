//! Resource-governed campaigns: budgets, graceful degradation, and the
//! crash-safe persisted cache.
//!
//! Four acts:
//! 1. A campaign mixing an easy block with a deliberately hard one (16x16
//!    multiplier commutativity — CDCL-intractable under a tiny budget) runs
//!    under a 100-conflict / 1 ms escalating policy: the easy block is
//!    proven, the hard one degrades to bounded random falsification and
//!    comes back `INCONC` in bounded time.
//! 2. A second campaign on the same cache path (a "process restart") serves
//!    the easy block from the persisted cache and retries the inconclusive
//!    one — inconclusive verdicts are never cached.
//! 3. A cache *record* is corrupted on disk; the next campaign drops just
//!    that record (a miss for that entry only), recovers the rest, and
//!    still finishes.
//! 4. The cache file's magic line is corrupted; the next campaign rejects
//!    the whole file, reports why, rebuilds cold, and still finishes.
//!
//! Run with `cargo run --example budgeted_campaign`.

use std::time::Duration;

use dfv::core::{BlockPair, CacheLoad, Campaign, CampaignOptions, RetryPolicy, VerificationPlan};
use dfv::rtl::ModuleBuilder;
use dfv::sec::{Binding, EquivSpec};

fn easy_block() -> BlockPair {
    let mut rb = ModuleBuilder::new("rtl_inc");
    let x = rb.input("x", 8);
    let one = rb.lit(8, 1);
    let y = rb.add(x, one);
    rb.output("y", y);
    BlockPair {
        name: "inc".into(),
        slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
        slm_entry: "inc".into(),
        rtl: rb.finish().expect("inc rtl builds"),
        spec: EquivSpec::new(1)
            .bind("x", 0, Binding::Slm("x".into()))
            .compare("return", "y", 0),
    }
}

/// Commutativity of a 16x16 multiplier: genuinely equivalent, but proving
/// `a*b == b*a` at the bit level is far beyond a 100-conflict budget.
fn hard_block() -> BlockPair {
    let mut rb = ModuleBuilder::new("rtl_mul_comm");
    let a = rb.input("a", 16);
    let b = rb.input("b", 16);
    let (aw, bw) = (rb.zext(a, 32), rb.zext(b, 32));
    let y = rb.mul(bw, aw); // b * a, against the SLM's a * b
    rb.output("y", y);
    BlockPair {
        name: "mul_comm".into(),
        slm_source: "uint32 mul(uint16 a, uint16 b) { return (uint32)a * (uint32)b; }".into(),
        slm_entry: "mul".into(),
        rtl: rb.finish().expect("mul rtl builds"),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

fn main() {
    let cache = std::env::temp_dir().join(format!(
        "dfv-budgeted-campaign-{}.cache",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache);
    let plan = VerificationPlan::new()
        .block(easy_block())
        .block(hard_block());
    let opts = || CampaignOptions {
        retry: RetryPolicy::escalating(100, 10, 2).with_timeout(Duration::from_millis(1)),
        deadline: Some(Duration::from_secs(30)),
        cache_path: Some(cache.clone()),
        ..CampaignOptions::default()
    };

    println!("== act 1: cold campaign under a 100-conflict / 1 ms budget ==");
    let mut c1 = Campaign::with_options(opts());
    println!("cache load: {:?}", c1.cache_load());
    let r1 = c1.run(&plan);
    print!("{r1}");
    assert_eq!(
        r1.inconclusive(),
        1,
        "the multiplier must exhaust its budget"
    );

    println!("\n== act 2: restart — unchanged proven blocks come from disk ==");
    let mut c2 = Campaign::with_options(opts());
    println!("cache load: {:?}", c2.cache_load());
    let r2 = c2.run(&plan);
    print!("{r2}");
    assert!(
        r2.blocks[0].from_cache,
        "the easy block must be a cache hit"
    );
    assert!(
        !r2.blocks[1].from_cache,
        "inconclusive verdicts are never cached; the hard block retries"
    );

    println!("\n== act 3: one cache record is corrupted on disk ==");
    let text = std::fs::read_to_string(&cache).expect("cache exists");
    std::fs::write(&cache, text.replace("pass", "warp")).expect("corrupt in place");
    let mut c3 = Campaign::with_options(opts());
    match c3.cache_load() {
        CacheLoad::Recovered { entries, dropped } => println!(
            "recovered: {entries} intact record(s) kept, {dropped} damaged record(s) \
             dropped as misses"
        ),
        other => panic!("expected per-entry recovery, got {other:?}"),
    }
    let r3 = c3.run(&plan);
    print!("{r3}");
    assert!(
        !r3.blocks[0].from_cache,
        "the damaged record is a miss for that entry"
    );

    println!("\n== act 4: the cache file's magic line is corrupted ==");
    let text = std::fs::read_to_string(&cache).expect("cache exists");
    std::fs::write(&cache, text.replace("dfv-campaign-cache", "not-a-cache"))
        .expect("corrupt in place");
    let mut c4 = Campaign::with_options(opts());
    match c4.cache_load() {
        CacheLoad::Corrupt { reason } => println!("detected: {reason} -> rebuilding cold"),
        other => panic!("expected whole-file rejection, got {other:?}"),
    }
    let r4 = c4.run(&plan);
    print!("{r4}");
    assert!(!r4.blocks[0].from_cache, "cold after corruption");

    let _ = std::fs::remove_file(&cache);
    println!("\nall four acts behaved; no hang, no panic.");
}
