//! The observability layer end to end: a seeded cosim run with one
//! injected computational fault, localized to a cycle, a signal, and a
//! ranked fan-in cone — then reduced to a byte-reproducible JSON report.
//!
//! The flow is the paper's debugging story instrumented:
//!
//! 1. the golden FIR RTL and a mutant (one operator swapped — a seeded
//!    computational bug) run the same stimulus with recorders attached;
//! 2. the watched traces are diffed: the localizer names the first
//!    divergence cycle, the offending signal, and the RTL fan-in cone of
//!    that signal ranked by structural distance;
//! 3. both traces render into one combined VCD (SLM-side and RTL-side
//!    values in separate scopes, initial-value block included);
//! 4. engine counters and run metadata become a `RunReport` whose
//!    canonical JSON reproduces byte-for-byte — `scripts/check.sh` runs
//!    this example twice and diffs the files.
//!
//! Run with: `cargo run --example observability [-- out.json]`

use dfv::bits::Bv;
use dfv::cosim::{apply_mutation, combined_divergence_vcd, enumerate_mutations, localize};
use dfv::obs::{Json, MemoryRecorder, RunReport, WatchedTrace};
use dfv::rtl::{Module, Simulator};

const STEPS: u64 = 24;

/// Drives `STEPS` samples of deterministic stimulus through a FIR
/// module, recording engine counters and the watched output trace.
fn run_instrumented(module: Module, rec: dfv::obs::SharedRecorder) -> WatchedTrace {
    let mut sim = Simulator::new(module).expect("fir rtl builds");
    sim.set_recorder(rec);
    sim.watch_output("y");
    sim.watch_output("out_valid");
    for i in 0..STEPS {
        sim.poke("in_valid", Bv::from_bool(true));
        sim.poke("stall", Bv::from_bool(false));
        sim.poke("x", Bv::from_i64(8, (i as i64 * 7 % 100) - 50));
        sim.step();
    }
    sim.watched_trace()
}

/// One full instrumented run: golden vs mutant, localization, combined
/// VCD, and the reduced run report.
fn build_report() -> (RunReport, String, String) {
    let golden_rtl = dfv::designs::fir::rtl();
    let mutations = enumerate_mutations(&golden_rtl);

    let golden_rec = MemoryRecorder::shared();
    let mutant_rec = MemoryRecorder::shared();
    let mut rep = RunReport::new("observability_example");
    let expected = rep.phase("golden", || {
        run_instrumented(golden_rtl.clone(), golden_rec.clone())
    });

    // One injected computational fault: the first enumerated mutation
    // this stimulus actually distinguishes (some mutants survive a short
    // run — E3 measures that; here we want a visible divergence).
    let (mutation, mutant_rtl, actual) = rep.phase("mutant", || {
        mutations
            .iter()
            .find_map(|m| {
                let mutant = apply_mutation(&golden_rtl, m);
                let trace = run_instrumented(mutant.clone(), mutant_rec.clone());
                dfv::obs::first_divergence(&expected, &trace).map(|_| (m, mutant, trace))
            })
            .expect("some mutation must diverge under this stimulus")
    });

    let localized = rep.phase("localize", || {
        localize(&mutant_rtl, &expected, &actual, 16)
            .expect("the chosen mutant diverges by construction")
    });
    let text = localized.render_text();
    let vcd = combined_divergence_vcd(&expected, &actual);

    // Counters from the golden side (the mutant's differ only in
    // rtl.value_changes, which the divergence already demonstrates).
    rep.add_counters(
        golden_rec
            .lock()
            .unwrap()
            .counters()
            .iter()
            .map(|(k, v)| (*k, *v)),
    );
    rep.set_value("mutation", Json::Str(format!("{mutation:?}")));
    rep.set_value(
        "divergence_cycle",
        Json::UInt(localized.divergence.step as u64),
    );
    rep.set_value("divergence_signal", Json::str(&localized.divergence.signal));
    rep.set_value("cone_suspects", Json::UInt(localized.cone.len() as u64));
    (rep, text, vcd)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/observability.json".into());

    let (rep, text, vcd) = build_report();
    println!("== localization ==\n{text}");

    // The combined VCD must round-trip: both scopes present, initial
    // values dumped at the earliest time per IEEE 1364 §21.7.2.
    let parsed = dfv::obs::parse_vcd(&vcd).expect("combined VCD parses");
    for scope in ["slm", "rtl"] {
        assert!(parsed.var(scope, "y").is_some(), "scope {scope} has y");
        assert!(
            parsed.var(scope, "out_valid").is_some(),
            "scope {scope} has out_valid"
        );
    }
    assert_eq!(
        parsed.dumpvars_len, 4,
        "all four watched signals get initial values"
    );
    println!(
        "== combined VCD == {} signals, {} change records (both scopes verified)\n",
        parsed.vars.len(),
        parsed.changes.len()
    );

    // The canonical JSON is a pure function of the seeded run: building
    // the report again must reproduce it byte for byte.
    let canon = rep.canonical_json();
    let (rep2, _, _) = build_report();
    assert_eq!(canon, rep2.canonical_json(), "canonical JSON reproduces");
    dfv::obs::parse_json(&canon).expect("canonical JSON parses");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("output directory");
    }
    std::fs::write(&out_path, &canon).expect("write JSON report");
    println!("== run report ==\n{}", rep.full_json());
    println!("\ncanonical report written to {out_path}");
}
