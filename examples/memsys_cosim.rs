//! Timing-alignment demo (paper Fig 2 / §3.2): comparing an untimed SLM
//! against RTL whose latency varies and whose responses complete out of
//! order.
//!
//! The memsys design answers bank-0 lookups in 1 cycle and bank-1 lookups
//! in 3, on separate tagged response ports. An exact comparator drowns in
//! false mismatches; the tag-matched out-of-order comparator aligns the
//! streams and confirms functional agreement.
//!
//! Run with: `cargo run --example memsys_cosim`

use dfv::bits::Bv;
use dfv::bits::SplitMix64;
use dfv::cosim::{Comparator, ExactComparator, OutOfOrderComparator, StreamItem};
use dfv::designs::memsys;
use dfv::rtl::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = [0u8; 16];
    for (i, v) in table.iter_mut().enumerate() {
        *v = (i as u8) * 11 + 5;
    }

    // Random tagged lookups, one per cycle.
    let mut rng = SplitMix64::new(7);
    let reqs: Vec<(u64, u64)> = (0..24).map(|i| (i % 8, rng.below(16))).collect();

    // Drive the RTL, merging both response ports into one stream.
    let mut sim = Simulator::new(memsys::rtl(&table))?;
    let mut responses = Vec::new();
    for cycle in 0..(reqs.len() as u64 + memsys::SLOW_LATENCY + 1) {
        if let Some(&(tag, addr)) = reqs.get(cycle as usize) {
            sim.poke("req_valid", Bv::from_bool(true));
            sim.poke("tag", Bv::from_u64(memsys::TAG_W, tag));
            sim.poke("addr", Bv::from_u64(memsys::ADDR_W, addr));
        } else {
            sim.poke("req_valid", Bv::from_bool(false));
        }
        sim.step();
        for port in ["resp0", "resp1"] {
            if sim.output(&format!("{port}_valid")).bit(0) {
                responses.push((
                    cycle,
                    sim.output(&format!("{port}_tag")).to_u64(),
                    sim.output(&format!("{port}_data")).to_u64(),
                ));
            }
        }
    }

    println!(
        "request order : {:?}",
        reqs.iter().map(|r| r.0).collect::<Vec<_>>()
    );
    println!(
        "response order: {:?}",
        responses.iter().map(|r| r.1).collect::<Vec<_>>()
    );

    // Feed both comparators the same streams.
    let mut exact = ExactComparator::new();
    let mut ooo = OutOfOrderComparator::new(10, 8, 8);
    for (i, &(tag, addr)) in reqs.iter().enumerate() {
        let golden = memsys::pack_response(tag, memsys::slm_golden(&table, addr as u8) as u64);
        exact.push_expected(StreamItem {
            value: golden.clone(),
            time: i as u64,
        });
        ooo.push_expected(StreamItem {
            value: golden,
            time: i as u64,
        });
    }
    for &(cycle, tag, data) in &responses {
        let v = memsys::pack_response(tag, data);
        exact.push_actual(StreamItem {
            value: v.clone(),
            time: cycle,
        });
        ooo.push_actual(StreamItem {
            value: v,
            time: cycle,
        });
    }
    let exact_report = exact.finish();
    let ooo_report = ooo.finish();
    println!(
        "\nexact comparator      : {} matched, {} mismatches (latency + reordering \
         look like bugs)",
        exact_report.matched,
        exact_report.mismatches.len()
    );
    println!(
        "out-of-order comparator: {} matched, {} mismatches (streams align by tag)",
        ooo_report.matched,
        ooo_report.mismatches.len()
    );
    assert!(ooo_report.is_clean());
    assert!(!exact_report.is_clean());
    println!(
        "\n-> the models were functionally consistent all along; only the \
         *interface timing* differs — the paper's Fig 2 in action."
    );
    Ok(())
}
