//! Word-width exploration for the FIR filter — the paper's §1 use-case for
//! signal-processing SLMs: "decide on the optimal word widths to support
//! the desired bit error rates".
//!
//! The exact (double-precision) filter response is compared against
//! fixed-point implementations at a range of fraction widths, reporting the
//! worst-case and RMS error per configuration — the table an architect
//! reads to choose the datapath width before RTL is written.
//!
//! Run with: `cargo run --example fir_wordwidth`

use dfv::designs::fir;

fn main() {
    // A test signal: two tones plus a step.
    let samples: Vec<f64> = (0..256)
        .map(|i| {
            let t = i as f64 / 16.0;
            let tone = (t * 1.7).sin() * 0.4 + (t * 5.3).sin() * 0.2;
            let step = if i > 128 { 0.25 } else { -0.25 };
            tone + step
        })
        .collect();
    let exact = fir::fir_reference_exact(&samples);

    println!("fixed-point FIR error vs fraction bits (width = frac + 6)");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>9}",
        "width", "frac", "max err", "rms err", "ok?"
    );
    let budget = 0.002; // the "desired bit error rate" of the spec
    let mut chosen = None;
    for frac in 2..=14u32 {
        let width = frac + 6;
        let fx = fir::fir_reference_fx(&samples, width, frac);
        let (mut max_err, mut sum_sq) = (0f64, 0f64);
        for (e, f) in exact.iter().zip(&fx) {
            let d = (e - f).abs();
            max_err = max_err.max(d);
            sum_sq += d * d;
        }
        let rms = (sum_sq / exact.len() as f64).sqrt();
        let ok = max_err <= budget;
        if ok && chosen.is_none() {
            chosen = Some((width, frac));
        }
        println!(
            "{:>6} {:>6} {:>12.6} {:>12.6} {:>9}",
            width,
            frac,
            max_err,
            rms,
            if ok { "yes" } else { "no" }
        );
    }
    let (width, frac) = chosen.expect("some width meets the budget");
    println!(
        "\nsmallest datapath meeting the {budget} error budget: \
         width {width}, {frac} fraction bits"
    );
    println!(
        "-> the RTL datapath ships at q{}.{frac}; the SLM keeps computing in \
         double precision, and the quantized reference model is the contract \
         between them.",
        width - frac
    );
}
