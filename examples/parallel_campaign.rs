//! The deterministic parallel campaign scheduler end to end: one
//! verification plan — the ALU and FIR reference blocks plus a ramp of
//! multiplier-commutativity proofs — run by a worker pool whose size
//! comes from the `DFV_WORKERS` environment variable (default:
//! `available_parallelism`), reduced to a byte-reproducible canonical
//! JSON report.
//!
//! The scheduler's contract is that the worker count is *invisible* in
//! the canonical report: `scripts/check.sh` runs this example under
//! `DFV_WORKERS=1` and `DFV_WORKERS=4` and byte-compares the two output
//! files.
//!
//! Run with: `DFV_WORKERS=4 cargo run --example parallel_campaign [-- out.json]`

use dfv::core::{BlockPair, Campaign, CampaignOptions, RetryPolicy, VerificationPlan};
use dfv::designs::{alu, fir};
use dfv::rtl::ModuleBuilder;
use dfv::sec::{Binding, EquivSpec};

/// An equivalent multiplier-commutativity block (`a * b` against `b * a`)
/// at `width` bits per operand.
fn mul_block(name: &str, width: u32) -> BlockPair {
    let out = 2 * width;
    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", width);
    let b = rb.input("b", width);
    let (aw, bw) = (rb.zext(a, out), rb.zext(b, out));
    let y = rb.mul(bw, aw);
    rb.output("y", y);
    BlockPair {
        name: name.into(),
        slm_source: format!(
            "uint<{out}> mul(uint<{width}> a, uint<{width}> b) {{ return (uint<{out}>)a * (uint<{out}>)b; }}"
        ),
        slm_entry: "mul".into(),
        rtl: rb.finish().expect("mul rtl builds"),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

fn plan() -> VerificationPlan {
    let mut plan = VerificationPlan::new()
        .block(BlockPair {
            name: "alu".into(),
            slm_source: alu::slm_bit_accurate().into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        })
        .block(BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        });
    for (i, width) in [4, 4, 5, 5, 6].into_iter().enumerate() {
        plan = plan.block(mul_block(&format!("mul{width}_{i}"), width));
    }
    plan
}

fn main() {
    let plan = plan();
    // `workers: None` defers to DFV_WORKERS / available_parallelism.
    let mut campaign = Campaign::with_options(CampaignOptions {
        retry: RetryPolicy::default(),
        workers: None,
        ..CampaignOptions::default()
    });
    let workers = dfv::core::resolve_workers(None);
    let report = campaign.run(&plan);
    println!("{report}");
    println!("workers: {workers} (set DFV_WORKERS to override)");
    assert!(report.all_pass(), "every block in this plan is equivalent");

    let canonical = report.to_run_report().canonical_json();
    assert!(
        !canonical.contains("wall_us"),
        "canonical JSON must not depend on wall time"
    );
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &canonical).expect("write canonical report");
        println!("canonical report written to {path}");
    } else {
        println!("{canonical}");
    }
}
