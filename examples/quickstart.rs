//! Quickstart: the whole design-for-verification flow on one small block.
//!
//! 1. write a system-level model in SLM-C,
//! 2. lint it against the paper's §4.3 conditioning rules,
//! 3. execute it (the fast golden model),
//! 4. build the RTL,
//! 5. co-simulate SLM vs wrapped-RTL on random stimulus,
//! 6. *prove* transaction equivalence with the sequential equivalence
//!    checker — and watch it produce a concrete counterexample when we
//!    inject a bug.
//!
//! Run with: `cargo run --example quickstart`

use dfv::bits::Bv;
use dfv::cosim::{apply_mutation, enumerate_mutations, FieldSpec, StimulusGen};
use dfv::rtl::{ModuleBuilder, Simulator};
use dfv::sec::{check_equivalence, Binding, EquivOutcome, EquivSpec};
use dfv::slmir::{elaborate, lint, parse, Interp, ScalarTy, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. The system-level model: a saturating 8-bit adder. ----------
    let slm_src = r#"
        // Saturating add: the golden functional model.
        uint8 sat_add(uint8 a, uint8 b) {
            uint16 wide = (uint16) a + (uint16) b;
            if (wide > 255) { return 255; }
            return (uint8) wide;
        }
    "#;
    let prog = parse(slm_src)?;

    // ---- 2. Lint: is this model conditioned for verification? ----------
    let findings = lint(&prog, Some("sat_add"));
    println!("lint findings: {}", findings.len());
    for f in &findings {
        println!("  {f}");
    }

    // ---- 3. Execute the SLM (the paper's fast golden reference). -------
    let u8t = ScalarTy {
        width: 8,
        signed: false,
    };
    let mut interp = Interp::new(&prog);
    let demo = interp.run(
        "sat_add",
        &[Value::from_u64(u8t, 200), Value::from_u64(u8t, 100)],
    )?;
    println!("SLM says sat_add(200, 100) = {}", demo.ret);

    // ---- 4. The RTL: one-cycle registered implementation. --------------
    let rtl = build_rtl(false)?;
    let mut sim = Simulator::new(rtl.clone())?;
    sim.step_with(&[("a", Bv::from_u64(8, 200)), ("b", Bv::from_u64(8, 100))]);
    println!("RTL says sat_add(200, 100) = {}", sim.output("y"));

    // ---- 5. Co-simulation on constrained-random stimulus. --------------
    let mut gen = StimulusGen::new(2024)
        .field(
            "a",
            FieldSpec::Corners {
                width: 8,
                corner_percent: 30,
            },
        )
        .field(
            "b",
            FieldSpec::Corners {
                width: 8,
                corner_percent: 30,
            },
        );
    let mut sim = Simulator::new(rtl.clone())?;
    let mut mismatches = 0;
    for _ in 0..1000 {
        let txn = gen.next_transaction();
        let expect = interp
            .run(
                "sat_add",
                &[
                    Value::Scalar(txn["a"].clone(), false),
                    Value::Scalar(txn["b"].clone(), false),
                ],
            )?
            .ret;
        sim.step_with(&[("a", txn["a"].clone()), ("b", txn["b"].clone())]);
        if expect.as_bv() != Some(&sim.output("y")) {
            mismatches += 1;
        }
    }
    println!("co-simulation: 1000 random transactions, {mismatches} mismatches");

    // ---- 6. Sequential equivalence checking: the proof. -----------------
    let slm_hw = elaborate(&prog, "sat_add")?;
    let spec = EquivSpec::new(2)
        .bind("a", 0, Binding::Slm("a".into()))
        .bind("b", 0, Binding::Slm("b".into()))
        .compare("return", "y", 1);
    let report = check_equivalence(&slm_hw, &rtl, &spec)?;
    println!(
        "SEC: {:?} ({} CNF vars, {} clauses, {} conflicts, {:?})",
        matches!(report.outcome, EquivOutcome::Equivalent),
        report.cnf_vars,
        report.cnf_clauses,
        report.solver_stats.conflicts,
        report.duration
    );
    assert!(report.outcome.is_equivalent());

    // And on a buggy RTL, SEC returns a concrete witness instantly —
    // "very effective at quickly finding discrepancies" (paper §2).
    let buggy = build_rtl(true)?;
    let report = check_equivalence(&slm_hw, &buggy, &spec)?;
    if let EquivOutcome::NotEquivalent(cex) = report.outcome {
        println!("SEC on buggy RTL: {cex}");
    }

    // The mutation engine can manufacture more bugs like that:
    let mutants = enumerate_mutations(&rtl);
    println!("mutation engine found {} injection sites", mutants.len());
    let mutant = apply_mutation(&rtl, &mutants[0]);
    let verdict = check_equivalence(&slm_hw, &mutant, &spec)?;
    println!(
        "first mutant is {}",
        if verdict.outcome.is_equivalent() {
            "functionally benign"
        } else {
            "caught by SEC"
        }
    );
    Ok(())
}

/// The RTL: wide add, compare, clamp — registered once. With `bug`, the
/// comparison is off by one (saturates at 254).
fn build_rtl(bug: bool) -> Result<dfv::rtl::Module, dfv::rtl::RtlError> {
    let mut b = ModuleBuilder::new(if bug { "sat_add_bug" } else { "sat_add" });
    let a = b.input("a", 8);
    let bi = b.input("b", 8);
    let aw = b.zext(a, 9);
    let bw = b.zext(bi, 9);
    let sum = b.add(aw, bw);
    let limit = b.lit(9, if bug { 254 } else { 255 });
    let over = b.ult(limit, sum);
    let clamped = b.mux(over, limit, sum);
    let out = b.trunc(clamped, 8);
    let r = b.reg("y_r", 8, Bv::zero(8));
    b.connect_reg(r, out);
    let q = b.reg_q(r);
    b.output("y", q);
    b.finish()
}
