//! Bug hunt: simulation vs sequential equivalence checking on injected RTL
//! bugs (the paper's §2 claim that SEC "is very effective at quickly
//! finding discrepancies").
//!
//! Every width-preserving mutation of the Figure-1 ALU is checked two ways:
//!
//! * constrained-random co-simulation against the SLM interpreter, counting
//!   how many transactions it takes to expose the bug (if it ever does);
//! * SEC, which either *proves* the mutant benign or returns a witness.
//!
//! Run with: `cargo run --release --example bug_hunt`

use dfv::bits::Bv;
use dfv::cosim::{apply_mutation, enumerate_mutations, FieldSpec, StimulusGen};
use dfv::designs::alu;
use dfv::rtl::Simulator;
use dfv::sec::check_equivalence;
use dfv::slmir::{elaborate, parse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = parse(alu::slm_bit_accurate())?;
    let slm = elaborate(&prog, "alu")?;
    let golden_rtl = alu::rtl(8, 8);
    let spec = alu::equiv_spec();

    // Sanity: the un-mutated pair is equivalent.
    assert!(check_equivalence(&slm, &golden_rtl, &spec)?
        .outcome
        .is_equivalent());

    let mutations = enumerate_mutations(&golden_rtl);
    println!("hunting {} mutants of the Fig-1 ALU\n", mutations.len());
    println!(
        "{:>3} {:<28} {:>10} {:>12} {:>10}",
        "#", "mutation", "sim txns", "sim verdict", "sec"
    );

    let budget = 2000;
    let mut sim_caught = 0;
    let mut sec_caught = 0;
    let mut benign = 0;
    for (i, m) in mutations.iter().enumerate() {
        let mutant = apply_mutation(&golden_rtl, m);

        // Random co-simulation with corner bias.
        let mut gen = StimulusGen::new(0xBEEF + i as u64);
        let fields: Vec<(&str, FieldSpec)> = ["a", "b", "c"]
            .iter()
            .map(|n| {
                (
                    *n,
                    FieldSpec::Corners {
                        width: 8,
                        corner_percent: 25,
                    },
                )
            })
            .collect();
        let mut sim = Simulator::new(mutant.clone())?;
        let mut slm_sim = Simulator::new(slm.clone())?;
        let mut found = None;
        for t in 0..budget {
            let vals: Vec<Bv> = fields.iter().map(|(_, s)| gen.draw(s)).collect();
            // SLM (combinational elaborated model).
            let expect = slm_sim.eval_comb(&[
                ("a", vals[0].clone()),
                ("b", vals[1].clone()),
                ("c", vals[2].clone()),
            ])["return"]
                .clone();
            // RTL transaction: 2 cycles from reset.
            sim.reset();
            sim.step_with(&[
                ("a", vals[0].clone()),
                ("b", vals[1].clone()),
                ("c", vals[2].clone()),
            ]);
            let got = sim.output("out");
            if got != expect {
                found = Some(t + 1);
                break;
            }
        }

        // SEC.
        let report = check_equivalence(&slm, &mutant, &spec)?;
        let equivalent = report.outcome.is_equivalent();
        match (found, equivalent) {
            (Some(_), false) => sim_caught += 1,
            (None, false) => {}
            (_, true) => benign += 1,
        }
        if !equivalent {
            sec_caught += 1;
        }
        println!(
            "{:>3} {:<28} {:>10} {:>12} {:>10}",
            i,
            format!("{m:?}").chars().take(28).collect::<String>(),
            found.map_or("-".into(), |t| t.to_string()),
            match found {
                Some(_) => "caught",
                None => "missed",
            },
            if equivalent { "benign" } else { "caught" }
        );
        // Soundness cross-check: simulation can never catch a mutant SEC
        // proved equivalent.
        assert!(!(found.is_some() && equivalent), "soundness violation");
    }
    println!(
        "\nsummary: {} mutants | SEC caught {} (rest proven benign: {}) | \
         random sim caught {} within {} transactions",
        mutations.len(),
        sec_caught,
        benign,
        sim_caught,
        budget
    );
    println!(
        "-> every SEC 'caught' verdict came with a replay-validated \
         counterexample; every 'benign' verdict is a proof over all 2^24 \
         input combinations."
    );
    Ok(())
}
