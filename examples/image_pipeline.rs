//! The paper's image-processing scenario (§3.2): a whole-image SLM against
//! a pixel-streaming RTL, bridged by serializing transactors.
//!
//! A 16x16 grayscale image is blurred tile by tile. The SLM processes each
//! 4x4 tile as one array-in/array-out function call; the wrapped-RTL
//! receives the same tile as a 16-beat pixel stream, and its output stream
//! is reassembled and compared (in order, timing-tolerant) against the SLM.
//!
//! Run with: `cargo run --example image_pipeline`

use dfv::bits::Bv;
use dfv::cosim::{
    Comparator, InOrderComparator, SerialCollector, SerialDriver, StreamItem, Transaction,
    WrappedRtl,
};
use dfv::designs::conv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic 16x16 image (a diagonal gradient with a bright square).
    const W: usize = 16;
    const H: usize = 16;
    let mut image = [[0u8; W]; H];
    for (y, row) in image.iter_mut().enumerate() {
        for (x, px) in row.iter_mut().enumerate() {
            let base = (x * 9 + y * 13) % 200;
            let bright = if (4..8).contains(&x) && (6..10).contains(&y) {
                55
            } else {
                0
            };
            *px = (base + bright) as u8;
        }
    }

    // The wrapped-RTL: serializer in, collector out (paper §2's
    // transactor-based wrapped-RTL).
    let mut wrapped = WrappedRtl::new(conv::rtl())?
        .with_driver(SerialDriver::new("img", "pix_in", "in_valid", 8))
        .with_monitor(SerialCollector::new(
            "res",
            "pix_out",
            "out_valid",
            conv::PIXELS,
        ));

    let mut comparator = InOrderComparator::default(); // untimed SLM: ignore time
    let mut tiles = 0;
    let side = conv::SIDE;
    let mut out_image = [[0u8; W]; H];
    for ty in (0..H).step_by(side) {
        for tx in (0..W).step_by(side) {
            // Pack the tile LSB-first (row-major).
            let mut packed = Bv::from_u64(8, image[ty][tx] as u64);
            let mut first = true;
            for dy in 0..side {
                for dx in 0..side {
                    if first {
                        first = false;
                        continue;
                    }
                    packed = Bv::from_u64(8, image[ty + dy][tx + dx] as u64).concat(&packed);
                }
            }
            // SLM golden (zero simulated time).
            let golden = conv::slm_golden(&packed);
            comparator.push_expected(StreamItem {
                value: golden.clone(),
                time: 0,
            });
            // Wrapped-RTL transaction.
            let mut txn = Transaction::new();
            txn.insert("img".into(), packed);
            let outs = wrapped.run_transaction(&txn);
            let (name, value, cycle) = &outs[0];
            assert_eq!(name, "res");
            comparator.push_actual(StreamItem {
                value: value.clone(),
                time: *cycle,
            });
            // Unpack into the output image for the ASCII rendering below.
            for dy in 0..side {
                for dx in 0..side {
                    let i = (dy * side + dx) as u32;
                    out_image[ty + dy][tx + dx] = value.slice(i * 8 + 7, i * 8).to_u64() as u8;
                }
            }
            tiles += 1;
        }
    }

    let report = comparator.finish();
    println!(
        "processed {tiles} tiles ({} RTL cycles total): {} matched, {} mismatches",
        wrapped.total_cycles(),
        report.matched,
        report.mismatches.len()
    );
    assert!(report.is_clean());

    // Render input and output side by side.
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let render = |img: &[[u8; W]; H]| -> Vec<String> {
        img.iter()
            .map(|row| {
                row.iter()
                    .map(|&p| shades[(p as usize * shades.len()) / 256])
                    .collect()
            })
            .collect()
    };
    println!("\ninput{}blurred (RTL stream output)", " ".repeat(W - 1));
    for (a, b) in render(&image).iter().zip(render(&out_image).iter()) {
        println!("{a}    {b}");
    }
    Ok(())
}
