//! Interface-fault campaign + hang-proof kernel demo.
//!
//! Part 1 shows the `dfv-slm` kernel watchdogs: a zero-delay self-notify
//! livelock is caught by the delta-cycle limit, and a drained event queue
//! with starved waiters is named process-by-process by the deadlock
//! diagnostic — typed errors instead of a hung process.
//!
//! Part 2 runs a seeded fault-injection sweep (the paper's Fig 2 hazard
//! taxonomy: stall, backpressure, drop, duplicate, reorder, jitter) over
//! two live designs — the streaming FIR and the dual-bank tagged memsys —
//! and classifies every cell as detected, tolerated, or masked. The whole
//! sweep is a pure function of its seed; the example re-runs it and
//! asserts byte-for-byte identical reports.
//!
//! Run with: `cargo run --example fault_campaign`

use dfv::bits::{Bv, SplitMix64};
use dfv::core::{FaultBlock, FaultCampaign};
use dfv::cosim::{ComparatorPolicy, StreamItem};
use dfv::designs::{fir, memsys};
use dfv::rtl::Simulator;
use dfv::slm::{Fifo, Kernel, KernelHalt};

const SEED: u64 = 0x00FA_0175;

/// Watchdog demo 1: a process that re-notifies its own trigger with zero
/// delay would spin forever; the default delta-cycle limit converts the
/// hang into a typed, diagnosable halt.
fn livelock_demo() {
    let mut k = Kernel::new();
    let tick = k.event("tick");
    k.process("spinner", &[tick], move |k| {
        k.notify(tick, 0);
    });
    k.notify(tick, 0);
    match k.run(100) {
        Err(KernelHalt::Livelock {
            time,
            deltas,
            runnable,
        }) => {
            println!("  livelock caught at t={time} after {deltas} delta cycles");
            println!("  runnable set: {runnable:?}");
        }
        other => panic!("expected a livelock halt, got {other:?}"),
    }
}

/// Watchdog demo 2: a consumer sensitized to a FIFO no producer ever
/// fills. The kernel quiesces early; the deadlock diagnostic names the
/// starved process and the event it waits on.
fn deadlock_demo() {
    let mut k = Kernel::new();
    let ch: Fifo<u32> = Fifo::new(&mut k, "requests", 4);
    let rx = ch.clone();
    k.process("consumer", &[ch.written_event()], move |k| {
        while rx.try_get(k).is_some() {}
    });
    match k.run_expecting_activity(1_000) {
        Err(KernelHalt::Deadlock { time, starved }) => {
            println!("  deadlock diagnosed at t={time}:");
            for s in &starved {
                println!("    {s}");
            }
        }
        other => panic!("expected a deadlock diagnostic, got {other:?}"),
    }
}

fn fir_out(acc: i64) -> Bv {
    Bv::from_u64(fir::OUT_WIDTH, (acc as u64) & ((1 << fir::OUT_WIDTH) - 1))
}

/// The streaming FIR as a fault-sweep subject: SLM convolution vs the
/// RTL's sampled output stream, compared in-order untimed.
fn fir_block(samples: &[i8]) -> Result<FaultBlock, Box<dyn std::error::Error>> {
    let mut expected = Vec::with_capacity(samples.len());
    for n in 0..samples.len() {
        let mut acc = 0i64;
        for (k, &c) in fir::COEFFS.iter().enumerate() {
            if k > n {
                break;
            }
            acc += c * samples[n - k] as i64;
        }
        expected.push(StreamItem {
            value: fir_out(acc),
            time: n as u64,
        });
    }
    let mut sim = Simulator::new(fir::rtl())?;
    sim.poke("stall", Bv::from_bool(false));
    let mut actual = Vec::new();
    for cycle in 0..samples.len() as u64 + 2 {
        match samples.get(cycle as usize) {
            Some(&x) => {
                sim.poke("in_valid", Bv::from_bool(true));
                sim.poke("x", Bv::from_u64(8, (x as u64) & 0xFF));
            }
            None => sim.poke("in_valid", Bv::from_bool(false)),
        }
        sim.step();
        if sim.output("out_valid").bit(0) {
            actual.push(StreamItem {
                value: sim.output("y"),
                time: cycle,
            });
        }
    }
    Ok(FaultBlock {
        name: "fir".into(),
        expected,
        actual,
        policy: ComparatorPolicy::InOrder {
            tolerance: u64::MAX,
            max_skew: None,
        },
    })
}

/// The dual-bank memsys as a fault-sweep subject: zero-delay SLM lookups
/// vs tagged responses with 1- and 3-cycle latencies, compared
/// out-of-order by tag.
fn memsys_block() -> Result<FaultBlock, Box<dyn std::error::Error>> {
    let mut table = [0u8; 16];
    for (i, v) in table.iter_mut().enumerate() {
        *v = (i as u8) * 7 + 3;
    }
    let mut rng = SplitMix64::new(SEED ^ 0x5A);
    let reqs: Vec<(u64, u64)> = (0..24).map(|i| (i % 8, rng.below(16))).collect();
    let expected: Vec<StreamItem> = reqs
        .iter()
        .enumerate()
        .map(|(i, &(tag, addr))| StreamItem {
            value: memsys::pack_response(tag, memsys::slm_golden(&table, addr as u8) as u64),
            time: i as u64,
        })
        .collect();
    let mut sim = Simulator::new(memsys::rtl(&table))?;
    let mut actual = Vec::new();
    for cycle in 0..reqs.len() as u64 + memsys::SLOW_LATENCY + 2 {
        match reqs.get(cycle as usize) {
            Some(&(tag, addr)) => {
                sim.poke("req_valid", Bv::from_bool(true));
                sim.poke("tag", Bv::from_u64(memsys::TAG_W, tag));
                sim.poke("addr", Bv::from_u64(memsys::ADDR_W, addr));
            }
            None => sim.poke("req_valid", Bv::from_bool(false)),
        }
        sim.step();
        for port in ["resp0", "resp1"] {
            if sim.output(&format!("{port}_valid")).bit(0) {
                actual.push(StreamItem {
                    value: memsys::pack_response(
                        sim.output(&format!("{port}_tag")).to_u64(),
                        sim.output(&format!("{port}_data")).to_u64(),
                    ),
                    time: cycle,
                });
            }
        }
    }
    Ok(FaultBlock {
        name: "memsys".into(),
        expected,
        actual,
        policy: ComparatorPolicy::OutOfOrder {
            tag_hi: 8 + memsys::TAG_W - 1,
            tag_lo: 8,
            window: 4,
            max_skew: None,
        },
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("-- kernel watchdogs --");
    livelock_demo();
    deadlock_demo();

    println!("\n-- fault-injection sweep (seed {SEED:#x}) --");
    let mut rng = SplitMix64::new(SEED);
    let samples: Vec<i8> = (0..48).map(|_| rng.bits(8) as i8).collect();
    let blocks = [fir_block(&samples)?, memsys_block()?];

    let report = FaultCampaign::new(SEED).run(&blocks);
    println!("{report}");
    assert!(
        report.all_accounted(),
        "every injected fault must be detected or tolerated"
    );

    // Reproducibility: the same seed renders the same report, byte for
    // byte — the property that makes fault campaigns debuggable.
    let again = FaultCampaign::new(SEED).run(&blocks);
    assert_eq!(report.to_string(), again.to_string());
    println!("\nre-run with the same seed: byte-for-byte identical report");
    Ok(())
}
