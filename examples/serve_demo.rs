//! `dfv-serve` end to end over real sockets: a daemon, clients, graceful
//! drain, and kill-9 restart recovery.
//!
//! Subcommands (all sharing a `<state_dir>` that holds the address file
//! and campaign journals):
//!
//! * `serve <state_dir> [--unix] [--kill-after N]` — start the daemon on
//!   a loopback TCP port (or a Unix-domain socket with `--unix`), write
//!   the address to `<state_dir>/serve.addr`, and serve until a client
//!   sends `Drain` (then finish in-flight work and exit 0).
//!   `--kill-after N` arms the chaos shim: the process hard-aborts the
//!   instant the Nth journal record lands on disk — a deterministic
//!   SIGKILL mid-campaign for the restart-recovery drill.
//! * `submit <state_dir> [--journal NAME] [--out FILE]` — submit the
//!   demo plan, stream progress, print the report, and optionally write
//!   the canonical JSON to `FILE`. Exits nonzero if the submission is
//!   rejected or the connection dies (e.g. the daemon was killed).
//! * `status <state_dir>` — print the daemon's counters. After two
//!   `submit`s the `campaign.cache_hits` in the second report and the
//!   shared-store dedup are visible here: the fleet pays for each proof
//!   once.
//! * `drain <state_dir>` — ask the daemon to stop admitting, finish
//!   what it accepted, and exit.
//!
//! `scripts/check.sh` drives the full drill: baseline run, `--kill-after`
//! crash mid-campaign, restart, resubmit with the same journal name, and
//! a byte-compare of the canonical reports.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dfv::core::{BlockPair, ChaosPlan, IoHandle};
use dfv::designs::{alu, fir};
use dfv::obs::Json;
use dfv::rtl::ModuleBuilder;
use dfv::sec::{Binding, EquivSpec};
use dfv::serve::{Client, JobSpec, ServeConfig, Server, SubmitOptions, SubmitOutcome};

/// An equivalent multiplier-commutativity block at `width` bits.
fn mul_block(name: &str, width: u32) -> BlockPair {
    let out = 2 * width;
    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", width);
    let b = rb.input("b", width);
    let (aw, bw) = (rb.zext(a, out), rb.zext(b, out));
    let y = rb.mul(bw, aw);
    rb.output("y", y);
    BlockPair {
        name: name.into(),
        slm_source: format!(
            "uint<{out}> mul(uint<{width}> a, uint<{width}> b) {{ return (uint<{out}>)a * (uint<{out}>)b; }}"
        ),
        slm_entry: "mul".into(),
        rtl: rb.finish().expect("mul rtl builds"),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

/// The demo plan: the ALU and FIR reference blocks plus a multiplier
/// ramp — the same shape every client submits, so resubmissions dedup
/// and journaled resumes replay.
fn demo_blocks() -> Vec<BlockPair> {
    let mut blocks = vec![
        BlockPair {
            name: "alu".into(),
            slm_source: alu::slm_bit_accurate().into(),
            slm_entry: "alu".into(),
            rtl: alu::rtl(8, 8),
            spec: alu::equiv_spec(),
        },
        BlockPair {
            name: "fir".into(),
            slm_source: fir::slm_source().into(),
            slm_entry: "fir".into(),
            rtl: fir::rtl(),
            spec: fir::equiv_spec(),
        },
    ];
    for (i, width) in [4, 4, 5, 5, 6].into_iter().enumerate() {
        blocks.push(mul_block(&format!("mul{width}_{i}"), width));
    }
    blocks
}

fn addr_file(state_dir: &Path) -> PathBuf {
    state_dir.join("serve.addr")
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_demo serve <state_dir> [--unix] [--kill-after N]\n\
         \x20      serve_demo submit <state_dir> [--journal NAME] [--out FILE]\n\
         \x20      serve_demo status <state_dir>\n\
         \x20      serve_demo drain  <state_dir>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(state_dir)) = (args.first(), args.get(1)) else {
        usage();
    };
    let state_dir = PathBuf::from(state_dir);
    let rest = &args[2..];
    match cmd.as_str() {
        "serve" => cmd_serve(&state_dir, rest),
        "submit" => cmd_submit(&state_dir, rest),
        "status" => with_client(&state_dir, |c| {
            for (name, value) in c.status().expect("status") {
                println!("{name} = {value}");
            }
        }),
        "drain" => with_client(&state_dir, |c| {
            c.drain().expect("drain ack");
            println!("drain acknowledged: the daemon exits once in-flight work finishes");
        }),
        _ => usage(),
    }
}

fn cmd_serve(state_dir: &Path, rest: &[String]) {
    let mut unix = false;
    let mut kill_after = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--unix" => unix = true,
            "--kill-after" => {
                let n = it.next().unwrap_or_else(|| usage());
                kill_after = Some(n.parse::<u64>().expect("N must be a number"));
            }
            _ => usage(),
        }
    }
    std::fs::create_dir_all(state_dir).expect("create state dir");

    let mut cfg = ServeConfig::new(state_dir);
    if let Some(n) = kill_after {
        // The chaos shim hard-aborts the whole process the moment the
        // Nth journal record is durable: a deterministic kill -9 for
        // the restart-recovery drill.
        cfg.io = IoHandle::chaos(ChaosPlan::none(0).kill_after_nth_append(n));
    }
    let server = Arc::new(Server::start(cfg));
    // Connection handles are kept so the daemon can flush every writer
    // (the DrainAck in particular) before the process exits.
    let conns = Arc::new(Mutex::new(Vec::new()));

    if unix {
        #[cfg(unix)]
        {
            let sock = state_dir.join("serve.sock");
            let _ = std::fs::remove_file(&sock);
            let listener = std::os::unix::net::UnixListener::bind(&sock).expect("bind unix socket");
            std::fs::write(addr_file(state_dir), format!("unix:{}", sock.display()))
                .expect("write addr file");
            eprintln!("dfv-serve listening on {}", sock.display());
            let acceptor = server.clone();
            let accepted = conns.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    let r = stream.try_clone().expect("clone unix stream");
                    let conn = acceptor.attach(r, stream);
                    accepted.lock().expect("conn list lock").push(conn);
                }
            });
        }
        #[cfg(not(unix))]
        {
            eprintln!("--unix is only available on Unix platforms");
            std::process::exit(2);
        }
    } else {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        std::fs::write(addr_file(state_dir), format!("tcp:{addr}")).expect("write addr file");
        eprintln!("dfv-serve listening on {addr}");
        let acceptor = server.clone();
        let accepted = conns.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let r = stream.try_clone().expect("clone tcp stream");
                let conn = acceptor.attach(r, stream);
                accepted.lock().expect("conn list lock").push(conn);
            }
        });
    }

    // Blocks until a client's Drain lets the executor pool run dry,
    // then waits for every connection to finish flushing (each client
    // here disconnects once it has its answer) so the final DrainAck is
    // on the wire before the process exits.
    server.wait();
    let drained: Vec<_> = std::mem::take(&mut *conns.lock().expect("conn list lock"));
    for conn in drained {
        conn.join();
    }
    eprintln!("drained; exiting");
}

/// Connects to the daemon named by the state dir's address file and runs
/// `f` against the client, over whichever transport the daemon chose.
fn with_client(state_dir: &Path, f: impl FnOnce(&mut Client<Box<dyn Read>, Box<dyn Write>>)) {
    let addr = std::fs::read_to_string(addr_file(state_dir))
        .expect("read serve.addr (is the daemon running?)");
    let addr = addr.trim();
    let (r, w): (Box<dyn Read>, Box<dyn Write>) = if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let s = std::os::unix::net::UnixStream::connect(path).expect("connect unix socket");
            let r = s.try_clone().expect("clone unix stream");
            (Box::new(r), Box::new(s))
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            eprintln!("this daemon listens on a Unix socket; not supported here");
            std::process::exit(2);
        }
    } else {
        let addr = addr.strip_prefix("tcp:").unwrap_or(addr);
        let s = TcpStream::connect(addr).expect("connect daemon");
        let r = s.try_clone().expect("clone tcp stream");
        (Box::new(r), Box::new(s))
    };
    let mut client = Client::new(r, w);
    f(&mut client);
}

fn cmd_submit(state_dir: &Path, rest: &[String]) {
    let mut journal = None;
    let mut out = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => journal = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    let spec = JobSpec::Campaign {
        blocks: demo_blocks(),
        options: SubmitOptions {
            workers: Some(2),
            deadline_ms: None,
            journal,
        },
    };
    with_client(state_dir, |client| {
        let outcome = match client.submit(&spec, |block, status| {
            eprintln!("  progress: {block} {status}");
        }) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("submission failed: {e}");
                std::process::exit(1);
            }
        };
        match outcome {
            SubmitOutcome::Report { job, report } => {
                let canonical = report.render();
                let hits = report
                    .get("counters")
                    .and_then(|c| c.get("campaign.cache_hits"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                println!("job {job} finished; {hits} block(s) served from shared verdicts");
                if let Some(path) = out {
                    std::fs::write(&path, &canonical).expect("write canonical report");
                    println!("canonical report written to {path}");
                } else {
                    println!("{canonical}");
                }
            }
            SubmitOutcome::Rejected { reason, class } => {
                eprintln!("rejected ({}): {reason}", class.tag());
                std::process::exit(3);
            }
        }
    });
}
