//! Block-level verification utilities beyond equivalence: X-propagation
//! reset coverage (§3.2's "SLM and RTL diverge until reset completes"),
//! bounded model checking of safety properties, and VCD waveform export.
//!
//! Run with: `cargo run --example reset_and_properties`

use dfv::bits::Bv;
use dfv::designs::{conv, fir};
use dfv::rtl::{reset_coverage, trace_to_vcd, ModuleBuilder, Simulator};
use dfv::sec::{check_property, BmcOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. X-prop reset coverage on the shipped designs. --------------
    println!("reset coverage (registers start X; when does the design flush?)\n");
    for (name, module, inputs) in [
        (
            "fir",
            fir::rtl(),
            vec![
                ("in_valid", Bv::from_bool(true)),
                ("stall", Bv::from_bool(false)),
                ("x", Bv::from_u64(8, 1)),
            ],
        ),
        (
            "conv",
            conv::rtl(),
            vec![
                ("in_valid", Bv::from_bool(true)),
                ("pix_in", Bv::from_u64(8, 7)),
            ],
        ),
    ] {
        let ins: Vec<(&str, Bv)> = inputs.iter().map(|(n, v)| (*n, v.clone())).collect();
        let report = reset_coverage(&module, &ins, 64)?;
        match report.registers_known_after {
            Some(c) => println!("  {name}: all registers known after {c} cycles"),
            None => println!(
                "  {name}: still unknown after {} cycles: {:?}",
                report.cycles_run, report.unknown_regs
            ),
        }
    }
    // The FIR flushes (shift registers overwrite X); an accumulator without
    // a reset mux would not — build one to show the failure mode:
    let mut b = ModuleBuilder::new("acc_noreset");
    let x = b.input("x", 8);
    let r = b.reg("acc", 8, Bv::zero(8));
    let q = b.reg_q(r);
    let s = b.add(q, x);
    b.connect_reg(r, s);
    b.output("y", q);
    let bad = b.finish()?;
    let report = reset_coverage(&bad, &[("x", Bv::from_u64(8, 1))], 64)?;
    println!(
        "  acc_noreset: flushes = {} (unknown: {:?}) — an SLM would happily \
         print numbers here\n",
        report.flushes(),
        report.unknown_regs
    );

    // ---- 2. Bounded model checking of a safety property. ----------------
    // The conv engine's out_valid must never assert during the load phase:
    // encode `ok = !(out_valid && cnt < 16)`; here out_valid *is* the phase
    // bit, so prove out_valid implies cnt >= 16 for 64 cycles.
    let mut b = ModuleBuilder::new("conv_prop");
    let in_valid = b.input("in_valid", 1);
    let pix = b.input("pix_in", 8);
    let m = conv::rtl();
    let outs = b.instantiate("u", &m, &[in_valid, pix]);
    // ok = !out_valid || in the streaming phase (out_valid is the phase
    // bit, so this is a consistency self-check of the interface contract:
    // out_valid and accepting-input are mutually exclusive).
    let accepting = in_valid;
    let both = b.and(outs[1], accepting);
    // The engine may see in_valid high while streaming (it must ignore
    // it) — the property we *can* demand: pix_out is a function of state
    // only, i.e. out_valid never glitches to X; as a checkable safety
    // property use: valid-out implies the counter phase bit (always true
    // by construction — BMC proves it instead of asserting it).
    let ok = b.not(both);
    b.output("never_overlap", ok);
    let _ = outs;
    let prop_module = {
        let mut d = dfv::rtl::Design::new();
        d.add_module(m);
        d.add_module(b.finish()?);
        dfv::rtl::flatten(&d, "conv_prop")?
    };
    let report = check_property(&prop_module, "never_overlap", 40)?;
    match report.outcome {
        BmcOutcome::HoldsUpTo(k) => {
            println!("BMC: load/stream phases CAN overlap? no violation found up to {k} cycles —")
        }
        BmcOutcome::Violated(trace) => println!(
            "BMC: interface contract violated at cycle {} — the environment \
             may not hold in_valid high during streaming; the transactors in \
             dfv-cosim never do.",
            trace.violation_cycle
        ),
        BmcOutcome::Inconclusive {
            holds_up_to,
            reason,
        } => println!("BMC: {reason} — property proven only up to cycle {holds_up_to}"),
    }

    // ---- 3. VCD export of a short FIR run. ------------------------------
    let mut sim = Simulator::new(fir::rtl())?;
    sim.watch_output("y");
    sim.watch_output("out_valid");
    sim.watch_reg("h0");
    for i in 0..12i64 {
        sim.poke("in_valid", Bv::from_bool(true));
        sim.poke("stall", Bv::from_bool(i % 4 == 2));
        sim.poke("x", Bv::from_i64(8, (i * 17) % 100 - 50));
        sim.step();
    }
    let vcd = trace_to_vcd(&sim, "fir");
    let path = std::env::temp_dir().join("dfv_fir.vcd");
    std::fs::write(&path, &vcd)?;
    println!(
        "\nwrote {} bytes of VCD to {} (open with any waveform viewer)",
        vcd.len(),
        path.display()
    );
    Ok(())
}
