#!/usr/bin/env bash
# Full offline verification gate: build, tests, lints, formatting.
#
# Everything runs with the network disabled (CARGO_NET_OFFLINE) so the
# gate gives the same answer on an air-gapped machine as on a developer
# laptop. The workspace has no external dependencies, so an up-to-date
# Cargo.lock is all cargo needs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q --workspace
# Offline smoke test: fault-injection sweep + kernel watchdog demos. The
# example asserts zero masked faults and byte-for-byte report
# reproducibility, so a plain exit 0 is a real check.
run cargo run --release --example fault_campaign
# Offline smoke test: observability layer. The example localizes a seeded
# fault and asserts its combined VCD round-trips; here we additionally
# pin down the canonical JSON report — it must parse and be
# byte-reproducible across two separate processes.
obs_dir=$(mktemp -d)
trap 'kill $(jobs -p) 2> /dev/null || true; rm -rf "$obs_dir"' EXIT
run cargo run --release --example observability -- "$obs_dir/run1.json"
run cargo run --release --example observability -- "$obs_dir/run2.json"
run cmp "$obs_dir/run1.json" "$obs_dir/run2.json"
run cargo run --release -q -p dfv-bench --bin experiments -- e10 > /dev/null
# Offline smoke test: deterministic parallel scheduling. The same campaign
# runs serial and with a 4-worker pool; the canonical JSON a CI gate would
# diff must be byte-identical — the worker count is invisible in it.
run env DFV_WORKERS=1 cargo run --release --example parallel_campaign -- "$obs_dir/camp_w1.json"
run env DFV_WORKERS=4 cargo run --release --example parallel_campaign -- "$obs_dir/camp_w4.json"
run cmp "$obs_dir/camp_w1.json" "$obs_dir/camp_w4.json"
run cargo run --release -q -p dfv-bench --bin experiments -- e11 > /dev/null
# Offline smoke test: the compiled simulation engine. The workload sweep
# runs both evaluation engines and panics on any output divergence; the
# canonical JSON (deterministic counters, no wall-clock) must be
# byte-identical across two separate processes.
run cargo run --release -q -p dfv-bench --bin bench -- sim --smoke \
    --out "$obs_dir/bench_sim1_full.json" --canonical "$obs_dir/bench_sim1.json" > /dev/null
run cargo run --release -q -p dfv-bench --bin bench -- sim --smoke \
    --out "$obs_dir/bench_sim2_full.json" --canonical "$obs_dir/bench_sim2.json" > /dev/null
run cmp "$obs_dir/bench_sim1.json" "$obs_dir/bench_sim2.json"
run cargo run --release -q -p dfv-bench --bin experiments -- e12 > /dev/null
# Offline smoke test: crash-tolerant campaigns. A clean journaled run
# produces the reference report; a second run is hard-killed (abort())
# by a chaos fail point the instant its 3rd journal record lands; the
# resumed run must replay the journaled verdicts and write a canonical
# report byte-identical to the clean one.
run cargo build --release --example crash_resume
run ./target/release/examples/crash_resume "$obs_dir/clean.journal" "$obs_dir/camp_clean.json"
echo "==> crash_resume --kill-after 3 (must die)"
if ./target/release/examples/crash_resume "$obs_dir/kill.journal" "$obs_dir/camp_never.json" --kill-after 3 2> /dev/null; then
    echo "error: killed run exited 0" >&2
    exit 1
fi
test ! -e "$obs_dir/camp_never.json"
run ./target/release/examples/crash_resume "$obs_dir/kill.journal" "$obs_dir/camp_resumed.json"
run cmp "$obs_dir/camp_clean.json" "$obs_dir/camp_resumed.json"
run cargo run --release -q -p dfv-bench --bin experiments -- e13 > /dev/null
# Offline smoke test: the dfv-serve daemon over a real loopback socket.
# An uninterrupted daemon produces the baseline report; a second daemon
# is hard-killed (abort()) by a chaos fail point the instant its 3rd
# journal record lands, mid-campaign, taking the client's connection
# with it; a restarted daemon over the same state dir must replay the
# journal and hand the resubmitting client a canonical report that is
# byte-identical to the baseline. Graceful drain must exit 0.
run cargo build --release --example serve_demo
serve_demo=./target/release/examples/serve_demo
wait_addr() {
    for _ in $(seq 100); do
        [ -f "$1/serve.addr" ] && return 0
        sleep 0.1
    done
    echo "error: daemon never wrote $1/serve.addr" >&2
    exit 1
}
echo "==> serve_demo serve (baseline daemon)"
"$serve_demo" serve "$obs_dir/serve_base" 2> /dev/null &
base_pid=$!
wait_addr "$obs_dir/serve_base"
run "$serve_demo" submit "$obs_dir/serve_base" --journal job.journal --out "$obs_dir/serve_base.json" > /dev/null 2>&1
run "$serve_demo" drain "$obs_dir/serve_base" > /dev/null
run wait "$base_pid"
echo "==> serve_demo serve --kill-after 3 (daemon must die mid-campaign)"
"$serve_demo" serve "$obs_dir/serve_crash" --kill-after 3 2> /dev/null &
crash_pid=$!
wait_addr "$obs_dir/serve_crash"
if "$serve_demo" submit "$obs_dir/serve_crash" --journal job.journal --out "$obs_dir/serve_never.json" > /dev/null 2>&1; then
    echo "error: submission against the killed daemon succeeded" >&2
    exit 1
fi
if wait "$crash_pid"; then
    echo "error: killed daemon exited 0" >&2
    exit 1
fi
test ! -e "$obs_dir/serve_never.json"
echo "==> serve_demo serve (restarted over the crashed state dir)"
rm -f "$obs_dir/serve_crash/serve.addr"
"$serve_demo" serve "$obs_dir/serve_crash" 2> /dev/null &
resume_pid=$!
wait_addr "$obs_dir/serve_crash"
run "$serve_demo" submit "$obs_dir/serve_crash" --journal job.journal --out "$obs_dir/serve_resumed.json" > /dev/null 2>&1
run "$serve_demo" drain "$obs_dir/serve_crash" > /dev/null
run wait "$resume_pid"
run cmp "$obs_dir/serve_base.json" "$obs_dir/serve_resumed.json"
run cargo run --release -q -p dfv-bench --bin experiments -- e14 > /dev/null
# Offline smoke test: the 64-lane batched engine. The batched sweep runs
# 64 scalar simulators against one LaneSim per workload, asserts the
# per-lane output hashes identical, and its canonical JSON (kernel
# dispatches + fallback counts, no wall-clock) must be byte-identical
# across two separate processes. The lane-parity property suite then
# pins scalar vs LaneSim vs full-oracle 3-way equivalence.
run cargo run --release -q -p dfv-bench --bin bench -- sim --smoke --batch \
    --out "$obs_dir/bench_batch1_full.json" --canonical "$obs_dir/bench_batch1.json" > /dev/null
run cargo run --release -q -p dfv-bench --bin bench -- sim --smoke --batch \
    --out "$obs_dir/bench_batch2_full.json" --canonical "$obs_dir/bench_batch2.json" > /dev/null
run cmp "$obs_dir/bench_batch1.json" "$obs_dir/bench_batch2.json"
run cargo test -q --release -p dfv-designs --test prop_sim_diff
run cargo run --release -q -p dfv-bench --bin experiments -- e15 > /dev/null
# Offline smoke test: the register-bytecode VM. The sweep restricted to
# the VM engine (the reference oracle always rides along; every engine's
# output hash is asserted against it before the report exists) must
# produce byte-identical canonical JSON across two separate processes.
# The VM instruction suite and the 3-way scalar/VM/oracle parity
# properties then run in release — the same optimization level the
# benchmarks use.
run cargo run --release -q -p dfv-bench --bin bench -- sim --smoke --engine vm \
    --out "$obs_dir/bench_vm1_full.json" --canonical "$obs_dir/bench_vm1.json" > /dev/null
run cargo run --release -q -p dfv-bench --bin bench -- sim --smoke --engine vm \
    --out "$obs_dir/bench_vm2_full.json" --canonical "$obs_dir/bench_vm2.json" > /dev/null
run cmp "$obs_dir/bench_vm1.json" "$obs_dir/bench_vm2.json"
run cargo test -q --release -p dfv-vm
run cargo run --release -q -p dfv-bench --bin experiments -- e16 > /dev/null
# Stress the determinism property tests with the test harness itself
# running them concurrently (worker pools inside worker pools), and the
# crash-tolerance properties: kill-at-random-journal-point + resume.
run cargo test -q --release -p dfv-core --test prop_parallel -- --test-threads 8
run cargo test -q --release -p dfv-core --test prop_crash
# Offline smoke test: the SAT-sweeping miter front-end. Every workload is
# checked sweep-off and sweep-on with verdict and counterexample-location
# parity asserted inside the harness (the run panics on any divergence),
# and the canonical JSON (SAT conflicts, CNF sizes, sweep counters — no
# wall-clock) must be byte-identical across two separate processes. The
# seeded verdict-parity property suite then runs in release, and E17
# gates the "sweeping never changes a verdict" claim at full width.
run cargo run --release -q -p dfv-bench --bin bench -- sec --smoke \
    --out "$obs_dir/bench_sec1_full.json" --canonical "$obs_dir/bench_sec1.json" > /dev/null
run cargo run --release -q -p dfv-bench --bin bench -- sec --smoke \
    --out "$obs_dir/bench_sec2_full.json" --canonical "$obs_dir/bench_sec2.json" > /dev/null
run cmp "$obs_dir/bench_sec1.json" "$obs_dir/bench_sec2.json"
run cargo test -q --release -p dfv-sec --test prop_sweep
run cargo run --release -q -p dfv-bench --bin experiments -- e17 > /dev/null
run cargo clippy --all-targets --workspace -- -D warnings
run cargo fmt --all --check

echo "==> all checks passed"
