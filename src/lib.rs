//! `dfv` — design for verification in system-level models and RTL.
//!
//! The umbrella crate of the workspace: re-exports every subsystem under
//! one roof so examples, integration tests, and downstream users can
//! `use dfv::...` without tracking individual crates.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the per-experiment index. Start with:
//!
//! * [`slmir`] — write and execute system-level models in SLM-C, lint them
//!   against the design-for-verification rules, elaborate to hardware;
//! * [`rtl`] — build and simulate RTL;
//! * [`sec`] — prove SLM/RTL transaction equivalence;
//! * [`cosim`] — simulate them together through transactors;
//! * [`core`] — run whole verification campaigns incrementally;
//! * [`serve`] — run campaigns as a fault-tolerant shared service;
//! * [`obs`] — observe all of the above: recorders, run reports,
//!   divergence localization, and VCD rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dfv_bits as bits;
pub use dfv_core as core;
pub use dfv_cosim as cosim;
pub use dfv_designs as designs;
pub use dfv_float as float;
pub use dfv_obs as obs;
pub use dfv_rtl as rtl;
pub use dfv_sat as sat;
pub use dfv_sec as sec;
pub use dfv_serve as serve;
pub use dfv_slm as slm;
pub use dfv_slmir as slmir;
pub use dfv_vm as vm;
