//! An in-process duplex byte stream — the test transport for `dfv-serve`.
//!
//! [`duplex`] returns two connection ends, each a `(reader, writer)` pair,
//! wired so bytes written at one end are read at the other. The halves
//! are plain [`Read`]/[`Write`] values that can be moved to separate
//! threads, which is exactly the shape the server's per-connection
//! reader/writer threads need — and the same shape a split
//! `TcpStream`/`UnixStream` has, so everything proven against pipes holds
//! for real sockets.
//!
//! Close semantics mirror a socket:
//!
//! - dropping a writer half closes its direction: the peer's reader
//!   drains buffered bytes, then sees EOF (`Ok(0)`);
//! - dropping a reader half makes the peer's writes fail with
//!   `BrokenPipe` — a client that went away is an error the writer sees,
//!   not silently swallowed bytes.
//!
//! Chaos composes at the byte layer: wrap either half in a
//! [`dfv_core::ChaosWire`] to tear frames, flip bits, disconnect, or
//! stall — the server cannot tell pipes, sockets, and chaos wrappers
//! apart.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Shared state of one pipe direction.
#[derive(Debug, Default)]
struct Shared {
    buf: VecDeque<u8>,
    /// Writer dropped: reader drains, then EOF.
    write_closed: bool,
    /// Reader dropped: writes fail with `BrokenPipe`.
    read_closed: bool,
}

#[derive(Debug, Default)]
struct Channel {
    state: Mutex<Shared>,
    ready: Condvar,
}

/// The reading half of one pipe direction.
#[derive(Debug)]
pub struct PipeReader(Arc<Channel>);

/// The writing half of one pipe direction.
#[derive(Debug)]
pub struct PipeWriter(Arc<Channel>);

/// Creates one unidirectional byte pipe.
pub fn pipe() -> (PipeReader, PipeWriter) {
    let ch = Arc::new(Channel::default());
    (PipeReader(ch.clone()), PipeWriter(ch))
}

/// Creates a duplex connection: two `(reader, writer)` ends. Bytes
/// written on one end's writer arrive at the other end's reader.
pub fn duplex() -> ((PipeReader, PipeWriter), (PipeReader, PipeWriter)) {
    let (a_read, b_write) = pipe();
    let (b_read, a_write) = pipe();
    ((a_read, a_write), (b_read, b_write))
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.0.state.lock().expect("pipe lock");
        loop {
            if !st.buf.is_empty() {
                let n = buf.len().min(st.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = st.buf.pop_front().expect("checked non-empty");
                }
                return Ok(n);
            }
            if st.write_closed {
                return Ok(0); // clean EOF: the peer hung up
            }
            st = self.0.ready.wait(st).expect("pipe lock");
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("pipe lock");
        st.read_closed = true;
        self.0.ready.notify_all();
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.0.state.lock().expect("pipe lock");
        if st.read_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe: peer reader is gone",
            ));
        }
        st.buf.extend(buf);
        self.0.ready.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().expect("pipe lock");
        st.write_closed = true;
        self.0.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_the_duplex_in_both_directions() {
        let ((mut ar, mut aw), (mut br, mut bw)) = duplex();
        aw.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        br.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        bw.write_all(b"world").unwrap();
        ar.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn dropping_the_writer_is_a_clean_eof_after_the_buffer_drains() {
        let (mut r, mut w) = pipe();
        w.write_all(b"tail").unwrap();
        drop(w);
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 4);
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn dropping_the_reader_breaks_the_writer() {
        let (r, mut w) = pipe();
        drop(r);
        let err = w.write_all(b"into the void").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn a_blocked_reader_wakes_when_the_writer_closes() {
        let (mut r, w) = pipe();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            r.read(&mut buf).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(w); // wake the blocked reader with EOF
        assert_eq!(t.join().unwrap(), 0);
    }
}
