//! Admission control: a bounded job queue with per-class limits.
//!
//! The daemon's first line of defense against overload is refusing work
//! *at the door*, with a typed answer, instead of buffering unboundedly
//! and falling over later. The queue enforces three independent caps — a
//! total, plus one per job class (campaigns are expensive, fault sweeps
//! cheap; one class saturating must not starve the other's budget) — and
//! every refusal says which limit was hit and that retrying is
//! [`Transient`](crate::proto::RetryClass::Transient).
//!
//! Memory stays constant under overload by construction: a rejected job
//! is dropped on the spot; nothing about it is retained.
//!
//! Lifecycle: [`AdmissionQueue::drain`] stops admission (late submitters
//! get a typed transient rejection naming the drain) while
//! [`AdmissionQueue::pop`] keeps handing out already-admitted jobs until
//! the queue is empty — the graceful half. [`AdmissionQueue::shutdown`]
//! is the forceful half: `pop` returns `None` immediately, queued jobs
//! are abandoned (their cancel latches are the executor-side story).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use dfv_core::CancelToken;

use crate::proto::{JobSpec, RetryClass};

/// Queue capacity limits. Every limit is inclusive ("at most N queued").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Max queued jobs of any kind.
    pub total: usize,
    /// Max queued campaigns.
    pub campaigns: usize,
    /// Max queued fault sweeps.
    pub fault_sweeps: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            total: 32,
            campaigns: 16,
            fault_sweeps: 16,
        }
    }
}

/// One admitted job, queued for an executor.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-assigned id.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// The job's cancel latch (shared with the connection that owns it).
    pub cancel: CancelToken,
    /// Where results go: the owning connection's outbound channel.
    pub outbound: crate::server::Outbound,
}

/// A typed admission refusal.
#[derive(Debug)]
pub struct Busy {
    /// Which limit was hit, in words.
    pub reason: String,
    /// Always [`RetryClass::Transient`]: capacity frees as jobs finish.
    pub class: RetryClass,
}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    /// Queued plus reserved-but-not-yet-committed jobs; the limits are
    /// enforced against these so a reservation really holds its slot.
    total: usize,
    queued_campaigns: usize,
    queued_sweeps: usize,
    draining: bool,
    shutdown: bool,
}

/// A capacity slot held between the admission check and the moment the
/// job becomes visible to executors. Sending the `Accepted` reply in
/// between guarantees a client can never see a job's progress frames
/// before its admission answer. Dropping an uncommitted reservation
/// releases the slot.
#[derive(Debug)]
#[must_use = "an unused reservation gives its slot straight back"]
pub struct Reservation<'a> {
    queue: &'a AdmissionQueue,
    is_campaign: bool,
    committed: bool,
}

impl Reservation<'_> {
    /// Publishes the job to the executor pool, consuming the slot. A
    /// commit that races a shutdown drops the job instead of parking it
    /// in a queue nobody will ever drain.
    pub fn commit(mut self, job: QueuedJob) {
        let mut st = self.queue.state.lock().expect("queue lock");
        self.committed = true;
        if st.shutdown {
            return;
        }
        st.jobs.push_back(job);
        self.queue.ready.notify_one();
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if !self.committed {
            let mut st = self.queue.state.lock().expect("queue lock");
            st.total = st.total.saturating_sub(1);
            if self.is_campaign {
                st.queued_campaigns = st.queued_campaigns.saturating_sub(1);
            } else {
                st.queued_sweeps = st.queued_sweeps.saturating_sub(1);
            }
        }
    }
}

/// The bounded admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    limits: Limits,
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl AdmissionQueue {
    /// An empty queue with the given limits.
    pub fn new(limits: Limits) -> Self {
        AdmissionQueue {
            limits,
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        }
    }

    /// Reserves an admission slot for a job of `spec`'s class, or
    /// refuses with a typed, transient `Busy`. The caller answers the
    /// client and then [`commit`](Reservation::commit)s the job (or
    /// drops the reservation, releasing the slot).
    pub fn reserve(&self, spec: &JobSpec) -> Result<Reservation<'_>, Busy> {
        let mut st = self.state.lock().expect("queue lock");
        if st.draining || st.shutdown {
            return Err(Busy {
                reason: "service draining: no new work is admitted".into(),
                class: RetryClass::Transient,
            });
        }
        if st.total >= self.limits.total {
            return Err(Busy {
                reason: format!("service busy: queue full ({} jobs)", self.limits.total),
                class: RetryClass::Transient,
            });
        }
        let is_campaign = matches!(spec, JobSpec::Campaign { .. });
        let (count, limit, what) = if is_campaign {
            (&mut st.queued_campaigns, self.limits.campaigns, "campaign")
        } else {
            (
                &mut st.queued_sweeps,
                self.limits.fault_sweeps,
                "fault sweep",
            )
        };
        if *count >= limit {
            return Err(Busy {
                reason: format!("service busy: {what} queue full ({limit} jobs)"),
                class: RetryClass::Transient,
            });
        }
        *count += 1;
        st.total += 1;
        Ok(Reservation {
            queue: self,
            is_campaign,
            committed: false,
        })
    }

    /// Blocks until a job is available, or returns `None` when the queue
    /// will never yield again (shutdown, or drained dry).
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(job) = st.jobs.pop_front() {
                st.total -= 1;
                match job.spec {
                    JobSpec::Campaign { .. } => st.queued_campaigns -= 1,
                    JobSpec::FaultSweep { .. } => st.queued_sweeps -= 1,
                }
                return Some(job);
            }
            if st.draining {
                return None; // drained dry: executors may exit
            }
            st = self.ready.wait(st).expect("queue lock");
        }
    }

    /// Graceful: stop admitting, keep handing out what was admitted.
    pub fn drain(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.draining = true;
        self.ready.notify_all();
    }

    /// Forceful: `pop` returns `None` immediately; queued jobs are
    /// dropped (and returned, so the caller can fail them out loud).
    pub fn shutdown(&self) -> Vec<QueuedJob> {
        let mut st = self.state.lock().expect("queue lock");
        st.shutdown = true;
        st.total = 0;
        st.queued_campaigns = 0;
        st.queued_sweeps = 0;
        let orphans = st.jobs.drain(..).collect();
        self.ready.notify_all();
        orphans
    }

    /// Removes still-queued jobs whose ids appear in `ids`, returning
    /// them. Jobs already handed to an executor are untouched; calling
    /// again with the same ids is a no-op.
    pub fn remove_many(&self, ids: &[u64]) -> Vec<QueuedJob> {
        let mut st = self.state.lock().expect("queue lock");
        let mut removed = Vec::new();
        let mut kept = VecDeque::with_capacity(st.jobs.len());
        while let Some(job) = st.jobs.pop_front() {
            if ids.contains(&job.id) {
                st.total -= 1;
                match job.spec {
                    JobSpec::Campaign { .. } => st.queued_campaigns -= 1,
                    JobSpec::FaultSweep { .. } => st.queued_sweeps -= 1,
                }
                removed.push(job);
            } else {
                kept.push_back(job);
            }
        }
        st.jobs = kept;
        removed
    }

    /// Queued job count (for tests and status).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").jobs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
