//! The daemon: executor pool, connection threads, and failure containment.
//!
//! # Architecture
//!
//! ```text
//!  client A ──frames──► reader thread ──► AdmissionQueue ──► executor pool
//!           ◄─frames─── writer thread ◄── bounded outbound ◄─┘  (Campaign /
//!  client B ── ...                        channel               FaultCampaign)
//! ```
//!
//! The server is transport-agnostic: [`Server::attach`] accepts any
//! `(Read, Write)` pair — the in-process [`crate::pipe`] duplex in tests,
//! split TCP or Unix-domain streams in the example binary, or either
//! wrapped in a [`dfv_core::ChaosWire`]. Each connection gets two
//! threads: a *reader* that parses frames and performs admission, and a
//! *writer* that owns the write half and drains a **bounded** outbound
//! channel, so one slow client can back-pressure only its own channel,
//! never an executor or another client.
//!
//! # Failure containment, by path
//!
//! - **Overload**: admission is bounded ([`crate::admission`]); excess
//!   submissions get a typed transient `Rejected` and are dropped —
//!   server memory is constant under any submission rate.
//! - **Slow client**: progress frames are sent with `try_send` and
//!   *dropped* (counted) when the outbound channel is full; final
//!   reports retry with a bounded backoff, then give up and count
//!   `serve.client_lost`. No send blocks an executor forever.
//! - **Disconnected / stalled client**: the reader thread sees EOF (or a
//!   read timeout) and fires the cancel latch of every job the
//!   connection owns; a running campaign stops starting new blocks,
//!   journals what finished, and the freed executor moves on.
//! - **Crashing work**: a panicking block is quarantined by
//!   `dfv-core::sched` inside the campaign; the job still completes with
//!   a `Crashed` verdict for that block. A panic can never take down an
//!   executor thread, let alone the daemon.
//! - **Kill -9**: accepted campaigns that name a journal checkpoint
//!   every verdict through `dfv-core`'s crash-safe journal (advisory
//!   file locks, torn-tail recovery). Resubmitting the same plan with
//!   the same journal name after a restart replays finished blocks and
//!   recomputes the rest — the canonical report is byte-identical to an
//!   uninterrupted run.
//! - **Drain**: a `Drain` request stops admission (late submitters get a
//!   typed rejection), lets in-flight and queued jobs finish, and then
//!   the executor pool exits; [`Server::wait`] returns.
//!
//! Identical submissions from different clients share verdicts through a
//! process-wide [`SharedStore`] keyed by content hash, so a fleet of
//! clients verifying overlapping block sets pays for each proof once.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dfv_core::{
    Campaign, CampaignOptions, CancelToken, FaultCampaign, IoHandle, ProgressHook, SharedStore,
    VerificationPlan,
};
use dfv_obs::{kinds, parse_json, ObsHook};

use crate::admission::{AdmissionQueue, Limits, QueuedJob};
use crate::frame::{read_frame, write_frame};
use crate::proto::{decode_request, encode_response, JobSpec, Request, Response, RetryClass};

/// Outbound frames buffered per connection before progress is shed.
const OUTBOUND_QUEUE: usize = 64;
/// Bounded retry schedule for final (non-sheddable) sends: attempts ×
/// sleep ≈ 2 s of patience for a slow client, then it is written off.
const FINAL_SEND_ATTEMPTS: u32 = 400;
const FINAL_SEND_PAUSE: Duration = Duration::from_millis(5);

/// Monotonic named counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct Counters(Mutex<BTreeMap<String, u64>>);

impl Counters {
    /// Adds 1 to `name`.
    pub fn bump(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut m = self.0.lock().expect("counter lock");
        *m.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.0
            .lock()
            .expect("counter lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.0
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// A connection's outbound channel, safe to hand to executors.
///
/// Progress is best-effort (shed under back-pressure, counted); final
/// answers are bounded-patience: retried briefly, then abandoned with
/// `serve.client_lost` — an executor is never parked on a dead client.
#[derive(Debug, Clone)]
pub struct Outbound {
    tx: SyncSender<Response>,
    counters: Arc<Counters>,
}

impl Outbound {
    /// Sheddable send: drops (and counts) when the client is slow.
    pub fn send_progress(&self, resp: Response) {
        match self.tx.try_send(resp) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.counters.bump(kinds::SERVE_PROGRESS_DROPPED),
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Non-sheddable send with bounded patience. Returns `false` when
    /// the client is gone or would not drain its channel in time.
    pub fn send_final(&self, resp: Response) -> bool {
        let mut resp = resp;
        for _ in 0..FINAL_SEND_ATTEMPTS {
            match self.tx.try_send(resp) {
                Ok(()) => return true,
                Err(TrySendError::Full(r)) => {
                    resp = r;
                    std::thread::sleep(FINAL_SEND_PAUSE);
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
        false
    }
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor threads (0 = accept-only; useful for admission tests).
    pub executors: usize,
    /// Admission queue limits.
    pub limits: Limits,
    /// Default per-campaign worker count when a submission names none.
    pub default_workers: Option<usize>,
    /// Cap applied to every submission's deadline (`None` = uncapped).
    pub max_deadline_ms: Option<u64>,
    /// Directory for journals (created at start).
    pub state_dir: PathBuf,
    /// Filesystem shim used for journals — a [`dfv_core::ChaosIo`] here
    /// puts the whole persistence path under fault injection.
    pub io: IoHandle,
    /// Share verdicts across jobs and clients by content hash.
    pub dedup: bool,
    /// Observability hook passed to every campaign.
    pub obs: ObsHook,
}

impl ServeConfig {
    /// Sensible defaults over the given state directory.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            executors: 2,
            limits: Limits::default(),
            default_workers: None,
            max_deadline_ms: None,
            state_dir: state_dir.into(),
            io: IoHandle::real(),
            dedup: true,
            obs: ObsHook::none(),
        }
    }
}

struct ServerInner {
    cfg: ServeConfig,
    counters: Arc<Counters>,
    queue: AdmissionQueue,
    store: Option<SharedStore>,
    /// Cancel latches of every accepted-but-unfinished job.
    jobs: Mutex<HashMap<u64, CancelToken>>,
    next_job: AtomicU64,
}

/// A running daemon.
pub struct Server {
    inner: Arc<ServerInner>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

/// Join handles for one attached connection's two threads.
pub struct ConnHandle {
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

impl ConnHandle {
    /// Waits for both connection threads to exit (they do when the
    /// client closes its end and all of its jobs have reported).
    pub fn join(self) {
        let _ = self.reader.join();
        let _ = self.writer.join();
    }
}

impl Server {
    /// Starts the executor pool. Connections are added with [`attach`].
    ///
    /// [`attach`]: Server::attach
    pub fn start(cfg: ServeConfig) -> Server {
        let _ = std::fs::create_dir_all(&cfg.state_dir);
        let store = cfg.dedup.then(SharedStore::new);
        let inner = Arc::new(ServerInner {
            queue: AdmissionQueue::new(cfg.limits),
            counters: Arc::new(Counters::default()),
            store,
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            cfg,
        });
        let executors = (0..inner.cfg.executors)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || {
                    while let Some(job) = inner.queue.pop() {
                        run_job(&inner, job);
                    }
                })
            })
            .collect();
        Server {
            inner,
            executors: Mutex::new(executors),
        }
    }

    /// Serves one connection over any byte-stream pair. Returns the
    /// connection's thread handles; the server does not track them.
    pub fn attach<R, W>(&self, reader: R, writer: W) -> ConnHandle
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let (tx, rx) = sync_channel::<Response>(OUTBOUND_QUEUE);
        let outbound = Outbound {
            tx,
            counters: self.inner.counters.clone(),
        };
        // Job ids this connection owns; both threads cancel them when
        // the client is found dead (whichever notices first wins).
        let conn_jobs: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        let writer_inner = self.inner.clone();
        let writer_jobs = conn_jobs.clone();
        let writer_handle = std::thread::spawn(move || {
            let mut w = writer;
            while let Ok(resp) = rx.recv() {
                if write_frame(&mut w, &encode_response(&resp)).is_err() {
                    // Client gone with a frame still owed to it. Dropping
                    // rx makes every later send fail fast at the sender.
                    writer_inner.counters.bump(kinds::SERVE_CLIENT_LOST);
                    break;
                }
            }
            cancel_owned_jobs(&writer_inner, &writer_jobs);
        });

        let reader_inner = self.inner.clone();
        let reader_jobs = conn_jobs;
        let reader_handle = std::thread::spawn(move || {
            let mut r = reader;
            serve_requests(&reader_inner, &mut r, &outbound, &reader_jobs);
            cancel_owned_jobs(&reader_inner, &reader_jobs);
        });

        ConnHandle {
            reader: reader_handle,
            writer: writer_handle,
        }
    }

    /// Current counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner.counters.snapshot()
    }

    /// One counter's value.
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.counters.get(name)
    }

    /// Jobs currently queued (admitted, not yet picked up).
    pub fn queued(&self) -> usize {
        self.inner.queue.len()
    }

    /// Graceful drain: stop admitting, let queued and in-flight jobs
    /// finish. Combine with [`wait`](Server::wait) to block until done.
    pub fn drain(&self) {
        self.inner.queue.drain();
    }

    /// Blocks until the executor pool exits (after a drain, or a stop).
    pub fn wait(&self) {
        let handles = std::mem::take(&mut *self.executors.lock().expect("executor list lock"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Forceful stop: abandon queued jobs (each gets a typed transient
    /// error and a `serve.cancelled` count), cancel in-flight ones, and
    /// join the pool.
    pub fn stop(&self) {
        let orphans = self.inner.queue.shutdown();
        for job in orphans {
            self.inner
                .jobs
                .lock()
                .expect("job registry lock")
                .remove(&job.id);
            job.cancel.cancel();
            self.inner.counters.bump(kinds::SERVE_CANCELLED);
            let _ = job.outbound.send_final(Response::Error {
                message: format!("job {} abandoned: server shutting down", job.id),
                class: RetryClass::Transient,
            });
        }
        for tok in self.inner.jobs.lock().expect("job registry lock").values() {
            tok.cancel();
        }
        self.wait();
    }
}

/// Fires the cancel latch of every still-registered job the connection
/// owns, then purges its still-queued jobs outright — nobody is left to
/// read their answers, the freed slots take new admissions, and dropping
/// them releases their outbound senders so the writer thread can exit.
/// Idempotent: a latch is counted the first time it trips.
fn cancel_owned_jobs(inner: &Arc<ServerInner>, owned: &Mutex<Vec<u64>>) {
    let ids: Vec<u64> = owned.lock().expect("conn job lock").clone();
    {
        let registry = inner.jobs.lock().expect("job registry lock");
        for id in &ids {
            if let Some(tok) = registry.get(id) {
                if !tok.is_cancelled() {
                    tok.cancel();
                    inner.counters.bump(kinds::SERVE_CANCELLED);
                }
            }
        }
    }
    let purged = inner.queue.remove_many(&ids);
    let mut registry = inner.jobs.lock().expect("job registry lock");
    for job in purged {
        registry.remove(&job.id);
    }
}

/// The reader-thread request loop. Returns when the connection dies or
/// framing breaks (after a framing error the stream offset is unknowable,
/// so the only safe move is to answer and close).
fn serve_requests(
    inner: &Arc<ServerInner>,
    r: &mut impl Read,
    outbound: &Outbound,
    conn_jobs: &Mutex<Vec<u64>>,
) {
    loop {
        let msg = match read_frame(r) {
            Ok(v) => v,
            Err(e) => {
                if !(e.is_disconnect() || e.is_stall()) {
                    inner.counters.bump(kinds::SERVE_BAD_FRAME);
                    let _ = outbound.send_final(Response::Error {
                        message: format!("bad frame: {e}"),
                        class: RetryClass::Permanent,
                    });
                }
                return;
            }
        };
        let req = match decode_request(&msg) {
            Ok(req) => req,
            Err(e) => {
                // The frame itself was sound, so the stream is still in
                // sync: refuse the request and keep serving.
                inner.counters.bump(kinds::SERVE_BAD_FRAME);
                if !outbound.send_final(Response::Error {
                    message: e.message,
                    class: e.class,
                }) {
                    return;
                }
                continue;
            }
        };
        let reply = match req {
            Request::Ping => Response::Pong,
            Request::Status => Response::Status {
                counters: inner.counters.snapshot(),
            },
            Request::Submit(spec) => {
                if !admit(inner, spec, outbound, conn_jobs) {
                    return;
                }
                continue;
            }
            Request::Cancel { job } => {
                let tok = inner
                    .jobs
                    .lock()
                    .expect("job registry lock")
                    .get(&job)
                    .cloned();
                match tok {
                    Some(tok) => {
                        if !tok.is_cancelled() {
                            tok.cancel();
                            inner.counters.bump(kinds::SERVE_CANCELLED);
                        }
                        Response::Cancelled { job }
                    }
                    None => Response::Error {
                        message: format!("unknown or already finished job {job}"),
                        class: RetryClass::Permanent,
                    },
                }
            }
            Request::Drain => {
                inner.queue.drain();
                Response::DrainAck
            }
        };
        if !outbound.send_final(reply) {
            return;
        }
    }
}

/// Admission: reserve a slot, register, *answer*, then publish — in that
/// order, so the `Accepted` frame is in the outbound channel before any
/// executor can see the job, and a client can never watch progress
/// frames outrun its admission answer. Returns `false` when the client
/// vanished mid-admission (the connection should close).
fn admit(
    inner: &Arc<ServerInner>,
    spec: JobSpec,
    outbound: &Outbound,
    conn_jobs: &Mutex<Vec<u64>>,
) -> bool {
    let reservation = match inner.queue.reserve(&spec) {
        Ok(r) => r,
        Err(busy) => {
            inner.counters.bump(kinds::SERVE_REJECTED);
            return outbound.send_final(Response::Rejected {
                reason: busy.reason,
                class: busy.class,
            });
        }
    };
    let id = inner.next_job.fetch_add(1, Ordering::Relaxed) + 1;
    let token = CancelToken::new();
    // Registered before publishing so an executor finishing the job
    // instantly still finds (and removes) the registry entry.
    inner
        .jobs
        .lock()
        .expect("job registry lock")
        .insert(id, token.clone());
    conn_jobs.lock().expect("conn job lock").push(id);
    if !outbound.send_final(Response::Accepted { job: id }) {
        // Client gone before it could hear the answer: release the slot
        // (reservation drops uncommitted) and never run the job.
        inner.jobs.lock().expect("job registry lock").remove(&id);
        return false;
    }
    reservation.commit(QueuedJob {
        id,
        spec,
        cancel: token,
        outbound: outbound.clone(),
    });
    inner.counters.bump(kinds::SERVE_ACCEPTED);
    true
}

/// Runs one admitted job on the calling executor thread and delivers its
/// final answer with bounded patience.
fn run_job(inner: &Arc<ServerInner>, job: QueuedJob) {
    let QueuedJob {
        id,
        spec,
        cancel,
        outbound,
    } = job;
    let final_resp = match spec {
        JobSpec::Campaign { blocks, options } => {
            let plan = VerificationPlan { blocks };
            let deadline_ms = match (options.deadline_ms, inner.cfg.max_deadline_ms) {
                (Some(d), Some(cap)) => Some(d.min(cap)),
                (Some(d), None) => Some(d),
                (None, cap) => cap,
            };
            let progress_out = outbound.clone();
            let opts = CampaignOptions {
                deadline: deadline_ms.map(Duration::from_millis),
                workers: options.workers.or(inner.cfg.default_workers),
                journal_path: options
                    .journal
                    .as_deref()
                    .map(|n| inner.cfg.state_dir.join(n)),
                obs: inner.cfg.obs.clone(),
                io: inner.cfg.io.clone(),
                cancel: cancel.clone(),
                shared_store: inner.store.clone(),
                progress: ProgressHook::new(move |res| {
                    progress_out.send_progress(Response::Progress {
                        job: id,
                        block: res.name.clone(),
                        status: res.status.to_string(),
                    });
                }),
                ..CampaignOptions::default()
            };
            let report = Campaign::with_options(opts).run(&plan);
            canonical_response(id, &report.to_run_report().canonical_json())
        }
        JobSpec::FaultSweep {
            seed,
            blocks,
            options,
        } => {
            if cancel.is_cancelled() {
                Response::Error {
                    message: format!("job {id} cancelled before it started"),
                    class: RetryClass::Transient,
                }
            } else {
                let mut camp = FaultCampaign::new(seed);
                if let Some(w) = options.workers.or(inner.cfg.default_workers) {
                    camp = camp.with_workers(w);
                }
                let report = camp.run(&blocks);
                canonical_response(id, &report.to_run_report().canonical_json())
            }
        }
    };
    inner.jobs.lock().expect("job registry lock").remove(&id);
    inner.counters.bump(kinds::SERVE_COMPLETED);
    if !outbound.send_final(final_resp) {
        inner.counters.bump(kinds::SERVE_CLIENT_LOST);
    }
}

fn canonical_response(id: u64, canonical: &str) -> Response {
    match parse_json(canonical) {
        Ok(v) => Response::Report { job: id, report: v },
        Err(e) => Response::Error {
            message: format!("internal: canonical report did not parse: {e}"),
            class: RetryClass::Permanent,
        },
    }
}
