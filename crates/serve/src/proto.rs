//! The `dfv-serve` request/response vocabulary and its JSON codec.
//!
//! Everything a client can ask and everything the daemon can answer is an
//! enum variant here, encoded to the dependency-free [`Json`] value type
//! and carried inside a checksummed [`crate::frame`]. The codec is the
//! trust boundary: `decode_request` validates *everything* — unknown
//! types, missing fields, out-of-range widths, journal names that try to
//! escape the state directory — and classifies each failure as
//! [`RetryClass::Permanent`], so a malformed submission is refused with a
//! typed error instead of poisoning an executor.
//!
//! Error classification is part of the protocol, not an afterthought: a
//! [`Rejected`](Response::Rejected) or [`Error`](Response::Error) frame
//! carries a [`RetryClass`] telling the client whether backing off and
//! retrying can ever help (`Transient`: admission queue full, draining
//! finished) or never will (`Permanent`: malformed plan, oversized
//! constant, unknown job).

use dfv_bits::Bv;
use dfv_core::{BlockPair, FaultBlock};
use dfv_cosim::{ComparatorPolicy, StreamItem};
use dfv_obs::Json;
use dfv_rtl::{parse_module, write_module};
use dfv_sec::{Binding, ComparePoint, EquivSpec, InitState};

/// Whether retrying a failed request can ever succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// The condition is load- or timing-dependent (queue full, draining
    /// peer, stalled wire): backing off and retrying is sensible.
    Transient,
    /// The request itself is unacceptable (malformed, oversized, unknown
    /// job): retrying the same bytes will fail the same way.
    Permanent,
}

impl RetryClass {
    /// Wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            RetryClass::Transient => "transient",
            RetryClass::Permanent => "permanent",
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: &str) -> Option<RetryClass> {
        match tag {
            "transient" => Some(RetryClass::Transient),
            "permanent" => Some(RetryClass::Permanent),
            _ => None,
        }
    }
}

/// A typed protocol failure: what went wrong and whether retrying helps.
#[derive(Debug)]
pub struct ProtoError {
    /// Human-readable description.
    pub message: String,
    /// Retry classification.
    pub class: RetryClass,
}

impl ProtoError {
    /// A permanent (malformed-input) error.
    pub fn permanent(message: impl Into<String>) -> ProtoError {
        ProtoError {
            message: message.into(),
            class: RetryClass::Permanent,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.class.tag())
    }
}

impl std::error::Error for ProtoError {}

/// Per-submission knobs a client may set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Worker threads for this job (bounded by the server's executor
    /// policy; `None` = server default).
    pub workers: Option<usize>,
    /// Wall-clock deadline for the whole job in milliseconds. Blocks not
    /// started when it expires are skipped with a typed verdict. `None` =
    /// the server's cap.
    pub deadline_ms: Option<u64>,
    /// Journal name inside the server's state directory. A resubmission
    /// naming the same journal resumes from whatever the journal holds —
    /// the restart-recovery path. Must be a bare file name (validated).
    pub journal: Option<String>,
}

/// What a submission asks the daemon to run.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// A lint + sequential-equivalence campaign over SLM/RTL block pairs.
    Campaign {
        /// The block pairs.
        blocks: Vec<BlockPair>,
        /// Submission knobs.
        options: SubmitOptions,
    },
    /// A seeded fault-injection sweep over recorded stream pairs.
    FaultSweep {
        /// Campaign seed (the whole sweep is a pure function of it).
        seed: u64,
        /// The stream blocks.
        blocks: Vec<FaultBlock>,
        /// Submission knobs (`journal` is ignored: fault sweeps are cheap
        /// pure functions of the seed and are simply re-run on restart).
        options: SubmitOptions,
    },
}

/// A client-to-server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Ask for the daemon's observability counters.
    Status,
    /// Submit a job.
    Submit(JobSpec),
    /// Cancel a previously accepted job.
    Cancel {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Begin a graceful drain: stop admitting, finish in-flight work,
    /// then shut down.
    Drain,
}

/// A server-to-client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Observability counters, sorted by name.
    Status {
        /// `(counter name, value)` pairs.
        counters: Vec<(String, u64)>,
    },
    /// The job was admitted and will run.
    Accepted {
        /// Server-assigned job id (unique per server incarnation).
        job: u64,
    },
    /// The job was refused at admission.
    Rejected {
        /// Why (e.g. `"service busy: campaign queue full"`).
        reason: String,
        /// Whether retrying can help.
        class: RetryClass,
    },
    /// A block of an accepted job finished (streamed eagerly; best-effort
    /// — a slow client loses progress frames before it loses its report).
    Progress {
        /// The job id.
        job: u64,
        /// Block name.
        block: String,
        /// Short status tag (`PASS`, `FAIL`, ...).
        status: String,
    },
    /// The final canonical report of an accepted job.
    Report {
        /// The job id.
        job: u64,
        /// The canonical run report (`RunReport::canonical_json` parsed
        /// back to a value — rendering it reproduces the bytes).
        report: Json,
    },
    /// A [`Request::Cancel`] was applied: the job's cancel latch is set
    /// (already-finished blocks keep their verdicts; unstarted ones are
    /// skipped).
    Cancelled {
        /// The job id.
        job: u64,
    },
    /// The drain was acknowledged; the server finishes in-flight jobs and
    /// exits.
    DrainAck,
    /// A request-level failure (malformed frame payload, unknown job id).
    Error {
        /// Description.
        message: String,
        /// Whether retrying can help.
        class: RetryClass,
    },
}

// ---------------------------------------------------------------------------
// Field accessors: every decode failure is a typed permanent error.
// ---------------------------------------------------------------------------

fn need<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, ProtoError> {
    v.get(key)
        .ok_or_else(|| ProtoError::permanent(format!("{ctx}: missing field '{key}'")))
}

fn need_str<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a str, ProtoError> {
    need(v, key, ctx)?
        .as_str()
        .ok_or_else(|| ProtoError::permanent(format!("{ctx}: field '{key}' must be a string")))
}

fn need_u64(v: &Json, key: &str, ctx: &str) -> Result<u64, ProtoError> {
    need(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| ProtoError::permanent(format!("{ctx}: field '{key}' must be an integer")))
}

fn need_arr<'a>(v: &'a Json, key: &str, ctx: &str) -> Result<&'a [Json], ProtoError> {
    need(v, key, ctx)?
        .as_arr()
        .ok_or_else(|| ProtoError::permanent(format!("{ctx}: field '{key}' must be an array")))
}

fn opt_u64(v: &Json, key: &str, ctx: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            ProtoError::permanent(format!("{ctx}: field '{key}' must be an integer or null"))
        }),
    }
}

/// A journal name must stay inside the server's state directory: a bare,
/// non-empty file name with no separators and no `..`.
pub fn validate_journal_name(name: &str) -> Result<(), ProtoError> {
    if name.is_empty()
        || name == "."
        || name == ".."
        || name.contains('/')
        || name.contains('\\')
        || name.contains('\0')
    {
        return Err(ProtoError::permanent(format!(
            "journal name {name:?} must be a bare file name"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Spec / binding / policy codecs
// ---------------------------------------------------------------------------

fn binding_to_json(b: &Binding) -> Result<Json, ProtoError> {
    Ok(match b {
        Binding::Slm(name) => {
            Json::obj(vec![("kind", Json::str("slm")), ("name", Json::str(name))])
        }
        Binding::SlmSlice { name, hi, lo } => Json::obj(vec![
            ("kind", Json::str("slice")),
            ("name", Json::str(name)),
            ("hi", Json::UInt(u64::from(*hi))),
            ("lo", Json::UInt(u64::from(*lo))),
        ]),
        Binding::Const(bv) => {
            if bv.width() > 64 {
                return Err(ProtoError::permanent(format!(
                    "constant binding of width {} exceeds the wire limit of 64 bits",
                    bv.width()
                )));
            }
            Json::obj(vec![
                ("kind", Json::str("const")),
                ("width", Json::UInt(u64::from(bv.width()))),
                ("value", Json::UInt(bv.to_u64())),
            ])
        }
        Binding::Free => Json::obj(vec![("kind", Json::str("free"))]),
    })
}

fn binding_from_json(v: &Json) -> Result<Binding, ProtoError> {
    let ctx = "binding";
    match need_str(v, "kind", ctx)? {
        "slm" => Ok(Binding::Slm(need_str(v, "name", ctx)?.to_string())),
        "slice" => Ok(Binding::SlmSlice {
            name: need_str(v, "name", ctx)?.to_string(),
            hi: u32::try_from(need_u64(v, "hi", ctx)?)
                .map_err(|_| ProtoError::permanent("binding: 'hi' out of range"))?,
            lo: u32::try_from(need_u64(v, "lo", ctx)?)
                .map_err(|_| ProtoError::permanent("binding: 'lo' out of range"))?,
        }),
        "const" => {
            let width = need_u64(v, "width", ctx)?;
            if width == 0 || width > 64 {
                return Err(ProtoError::permanent(format!(
                    "binding: constant width {width} outside 1..=64"
                )));
            }
            let value = need_u64(v, "value", ctx)?;
            Ok(Binding::Const(Bv::from_u64(width as u32, value)))
        }
        "free" => Ok(Binding::Free),
        other => Err(ProtoError::permanent(format!(
            "binding: unknown kind {other:?}"
        ))),
    }
}

fn spec_to_json(spec: &EquivSpec) -> Result<Json, ProtoError> {
    let mut bindings = Vec::with_capacity(spec.bindings.len());
    for (port, cycle, b) in &spec.bindings {
        bindings.push(Json::Arr(vec![
            Json::str(port),
            Json::UInt(u64::from(*cycle)),
            binding_to_json(b)?,
        ]));
    }
    let compares = spec
        .compares
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("slm_output", Json::str(&c.slm_output)),
                (
                    "slm_slice",
                    match c.slm_slice {
                        Some((hi, lo)) => {
                            Json::Arr(vec![Json::UInt(u64::from(hi)), Json::UInt(u64::from(lo))])
                        }
                        None => Json::Null,
                    },
                ),
                ("rtl_output", Json::str(&c.rtl_output)),
                ("rtl_cycle", Json::UInt(u64::from(c.rtl_cycle))),
            ])
        })
        .collect();
    let constraints = spec
        .constraints
        .iter()
        .map(|m| Json::str(write_module(m)))
        .collect();
    Ok(Json::obj(vec![
        ("rtl_cycles", Json::UInt(u64::from(spec.rtl_cycles))),
        (
            "init",
            Json::str(match spec.init {
                InitState::Reset => "reset",
                InitState::Free => "free",
            }),
        ),
        ("bindings", Json::Arr(bindings)),
        ("compares", Json::Arr(compares)),
        ("constraints", Json::Arr(constraints)),
    ]))
}

fn spec_from_json(v: &Json) -> Result<EquivSpec, ProtoError> {
    let ctx = "spec";
    let rtl_cycles = u32::try_from(need_u64(v, "rtl_cycles", ctx)?)
        .map_err(|_| ProtoError::permanent("spec: 'rtl_cycles' out of range"))?;
    let init = match need_str(v, "init", ctx)? {
        "reset" => InitState::Reset,
        "free" => InitState::Free,
        other => {
            return Err(ProtoError::permanent(format!(
                "spec: unknown init state {other:?}"
            )))
        }
    };
    let mut bindings = Vec::new();
    for entry in need_arr(v, "bindings", ctx)? {
        let triple = entry
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| ProtoError::permanent("spec: each binding must be [port, cycle, b]"))?;
        let port = triple[0]
            .as_str()
            .ok_or_else(|| ProtoError::permanent("spec: binding port must be a string"))?;
        let cycle = triple[1]
            .as_u64()
            .and_then(|c| u32::try_from(c).ok())
            .ok_or_else(|| ProtoError::permanent("spec: binding cycle out of range"))?;
        bindings.push((port.to_string(), cycle, binding_from_json(&triple[2])?));
    }
    let mut compares = Vec::new();
    for entry in need_arr(v, "compares", ctx)? {
        let slm_slice = match entry.get("slm_slice") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(pair)) if pair.len() == 2 => {
                let hi = pair[0].as_u64().and_then(|x| u32::try_from(x).ok());
                let lo = pair[1].as_u64().and_then(|x| u32::try_from(x).ok());
                match (hi, lo) {
                    (Some(hi), Some(lo)) => Some((hi, lo)),
                    _ => return Err(ProtoError::permanent("spec: bad slm_slice bounds")),
                }
            }
            Some(_) => return Err(ProtoError::permanent("spec: 'slm_slice' must be [hi, lo]")),
        };
        compares.push(ComparePoint {
            slm_output: need_str(entry, "slm_output", "compare")?.to_string(),
            slm_slice,
            rtl_output: need_str(entry, "rtl_output", "compare")?.to_string(),
            rtl_cycle: u32::try_from(need_u64(entry, "rtl_cycle", "compare")?)
                .map_err(|_| ProtoError::permanent("compare: 'rtl_cycle' out of range"))?,
        });
    }
    let mut constraints = Vec::new();
    for entry in need_arr(v, "constraints", ctx)? {
        let text = entry
            .as_str()
            .ok_or_else(|| ProtoError::permanent("spec: constraints must be netlist strings"))?;
        constraints
            .push(parse_module(text).map_err(|e| {
                ProtoError::permanent(format!("spec: bad constraint netlist: {e}"))
            })?);
    }
    Ok(EquivSpec {
        rtl_cycles,
        bindings,
        compares,
        constraints,
        init,
    })
}

fn block_pair_to_json(b: &BlockPair) -> Result<Json, ProtoError> {
    Ok(Json::obj(vec![
        ("name", Json::str(&b.name)),
        ("slm_source", Json::str(&b.slm_source)),
        ("slm_entry", Json::str(&b.slm_entry)),
        ("rtl", Json::str(write_module(&b.rtl))),
        ("spec", spec_to_json(&b.spec)?),
    ]))
}

fn block_pair_from_json(v: &Json) -> Result<BlockPair, ProtoError> {
    let ctx = "block";
    let rtl_text = need_str(v, "rtl", ctx)?;
    Ok(BlockPair {
        name: need_str(v, "name", ctx)?.to_string(),
        slm_source: need_str(v, "slm_source", ctx)?.to_string(),
        slm_entry: need_str(v, "slm_entry", ctx)?.to_string(),
        rtl: parse_module(rtl_text)
            .map_err(|e| ProtoError::permanent(format!("block: bad RTL netlist: {e}")))?,
        spec: spec_from_json(need(v, "spec", ctx)?)?,
    })
}

fn policy_to_json(p: &ComparatorPolicy) -> Json {
    match *p {
        ComparatorPolicy::Exact => Json::obj(vec![("kind", Json::str("exact"))]),
        ComparatorPolicy::InOrder {
            tolerance,
            max_skew,
        } => Json::obj(vec![
            ("kind", Json::str("in_order")),
            ("tolerance", Json::UInt(tolerance)),
            (
                "max_skew",
                max_skew.map_or(Json::Null, |s| Json::UInt(s as u64)),
            ),
        ]),
        ComparatorPolicy::OutOfOrder {
            tag_hi,
            tag_lo,
            window,
            max_skew,
        } => Json::obj(vec![
            ("kind", Json::str("out_of_order")),
            ("tag_hi", Json::UInt(u64::from(tag_hi))),
            ("tag_lo", Json::UInt(u64::from(tag_lo))),
            ("window", Json::UInt(window as u64)),
            (
                "max_skew",
                max_skew.map_or(Json::Null, |s| Json::UInt(s as u64)),
            ),
        ]),
    }
}

fn policy_from_json(v: &Json) -> Result<ComparatorPolicy, ProtoError> {
    let ctx = "policy";
    let usize_of = |x: u64, what: &str| {
        usize::try_from(x)
            .map_err(|_| ProtoError::permanent(format!("policy: {what} out of range")))
    };
    match need_str(v, "kind", ctx)? {
        "exact" => Ok(ComparatorPolicy::Exact),
        "in_order" => Ok(ComparatorPolicy::InOrder {
            tolerance: need_u64(v, "tolerance", ctx)?,
            max_skew: match opt_u64(v, "max_skew", ctx)? {
                Some(s) => Some(usize_of(s, "max_skew")?),
                None => None,
            },
        }),
        "out_of_order" => Ok(ComparatorPolicy::OutOfOrder {
            tag_hi: u32::try_from(need_u64(v, "tag_hi", ctx)?)
                .map_err(|_| ProtoError::permanent("policy: 'tag_hi' out of range"))?,
            tag_lo: u32::try_from(need_u64(v, "tag_lo", ctx)?)
                .map_err(|_| ProtoError::permanent("policy: 'tag_lo' out of range"))?,
            window: usize_of(need_u64(v, "window", ctx)?, "window")?,
            max_skew: match opt_u64(v, "max_skew", ctx)? {
                Some(s) => Some(usize_of(s, "max_skew")?),
                None => None,
            },
        }),
        other => Err(ProtoError::permanent(format!(
            "policy: unknown kind {other:?}"
        ))),
    }
}

fn items_to_json(items: &[StreamItem]) -> Result<Json, ProtoError> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        if item.value.width() > 64 {
            return Err(ProtoError::permanent(format!(
                "stream value of width {} exceeds the wire limit of 64 bits",
                item.value.width()
            )));
        }
        out.push(Json::Arr(vec![
            Json::UInt(u64::from(item.value.width())),
            Json::UInt(item.value.to_u64()),
            Json::UInt(item.time),
        ]));
    }
    Ok(Json::Arr(out))
}

fn items_from_json(v: &Json, what: &str) -> Result<Vec<StreamItem>, ProtoError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| ProtoError::permanent(format!("{what}: must be an array")))?;
    let mut out = Vec::with_capacity(arr.len());
    for entry in arr {
        let triple = entry.as_arr().filter(|a| a.len() == 3).ok_or_else(|| {
            ProtoError::permanent(format!("{what}: each item must be [width, value, time]"))
        })?;
        let width = triple[0]
            .as_u64()
            .filter(|w| (1..=64).contains(w))
            .ok_or_else(|| ProtoError::permanent(format!("{what}: item width outside 1..=64")))?;
        let value = triple[1].as_u64().ok_or_else(|| {
            ProtoError::permanent(format!("{what}: item value must be an integer"))
        })?;
        let time = triple[2].as_u64().ok_or_else(|| {
            ProtoError::permanent(format!("{what}: item time must be an integer"))
        })?;
        out.push(StreamItem {
            value: Bv::from_u64(width as u32, value),
            time,
        });
    }
    Ok(out)
}

fn fault_block_to_json(b: &FaultBlock) -> Result<Json, ProtoError> {
    Ok(Json::obj(vec![
        ("name", Json::str(&b.name)),
        ("policy", policy_to_json(&b.policy)),
        ("expected", items_to_json(&b.expected)?),
        ("actual", items_to_json(&b.actual)?),
    ]))
}

fn fault_block_from_json(v: &Json) -> Result<FaultBlock, ProtoError> {
    let ctx = "fault block";
    Ok(FaultBlock {
        name: need_str(v, "name", ctx)?.to_string(),
        policy: policy_from_json(need(v, "policy", ctx)?)?,
        expected: items_from_json(need(v, "expected", ctx)?, "expected")?,
        actual: items_from_json(need(v, "actual", ctx)?, "actual")?,
    })
}

fn options_to_json(o: &SubmitOptions) -> Json {
    Json::obj(vec![
        (
            "workers",
            o.workers.map_or(Json::Null, |w| Json::UInt(w as u64)),
        ),
        ("deadline_ms", o.deadline_ms.map_or(Json::Null, Json::UInt)),
        (
            "journal",
            o.journal.as_deref().map_or(Json::Null, Json::str),
        ),
    ])
}

fn options_from_json(v: &Json) -> Result<SubmitOptions, ProtoError> {
    let ctx = "options";
    let workers = match opt_u64(v, "workers", ctx)? {
        Some(w) => Some(
            usize::try_from(w)
                .map_err(|_| ProtoError::permanent("options: 'workers' out of range"))?,
        ),
        None => None,
    };
    let journal = match v.get("journal") {
        None | Some(Json::Null) => None,
        Some(j) => {
            let name = j
                .as_str()
                .ok_or_else(|| ProtoError::permanent("options: 'journal' must be a string"))?;
            validate_journal_name(name)?;
            Some(name.to_string())
        }
    };
    Ok(SubmitOptions {
        workers,
        deadline_ms: opt_u64(v, "deadline_ms", ctx)?,
        journal,
    })
}

// ---------------------------------------------------------------------------
// Top-level request / response codecs
// ---------------------------------------------------------------------------

/// Encodes a request for the wire.
///
/// Fallible because some in-memory values have no wire form (constants and
/// stream values wider than 64 bits).
pub fn encode_request(req: &Request) -> Result<Json, ProtoError> {
    Ok(match req {
        Request::Ping => Json::obj(vec![("type", Json::str("ping"))]),
        Request::Status => Json::obj(vec![("type", Json::str("status"))]),
        Request::Cancel { job } => Json::obj(vec![
            ("type", Json::str("cancel")),
            ("job", Json::UInt(*job)),
        ]),
        Request::Drain => Json::obj(vec![("type", Json::str("drain"))]),
        Request::Submit(JobSpec::Campaign { blocks, options }) => {
            let mut encoded = Vec::with_capacity(blocks.len());
            for b in blocks {
                encoded.push(block_pair_to_json(b)?);
            }
            Json::obj(vec![
                ("type", Json::str("submit")),
                ("job_kind", Json::str("campaign")),
                ("blocks", Json::Arr(encoded)),
                ("options", options_to_json(options)),
            ])
        }
        Request::Submit(JobSpec::FaultSweep {
            seed,
            blocks,
            options,
        }) => {
            let mut encoded = Vec::with_capacity(blocks.len());
            for b in blocks {
                encoded.push(fault_block_to_json(b)?);
            }
            Json::obj(vec![
                ("type", Json::str("submit")),
                ("job_kind", Json::str("fault_sweep")),
                ("seed", Json::UInt(*seed)),
                ("blocks", Json::Arr(encoded)),
                ("options", options_to_json(options)),
            ])
        }
    })
}

/// Decodes and validates a request from the wire.
pub fn decode_request(v: &Json) -> Result<Request, ProtoError> {
    let ctx = "request";
    match need_str(v, "type", ctx)? {
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "cancel" => Ok(Request::Cancel {
            job: need_u64(v, "job", ctx)?,
        }),
        "drain" => Ok(Request::Drain),
        "submit" => {
            let options = options_from_json(need(v, "options", ctx)?)?;
            match need_str(v, "job_kind", ctx)? {
                "campaign" => {
                    let mut blocks = Vec::new();
                    for entry in need_arr(v, "blocks", ctx)? {
                        blocks.push(block_pair_from_json(entry)?);
                    }
                    Ok(Request::Submit(JobSpec::Campaign { blocks, options }))
                }
                "fault_sweep" => {
                    let mut blocks = Vec::new();
                    for entry in need_arr(v, "blocks", ctx)? {
                        blocks.push(fault_block_from_json(entry)?);
                    }
                    Ok(Request::Submit(JobSpec::FaultSweep {
                        seed: need_u64(v, "seed", ctx)?,
                        blocks,
                        options,
                    }))
                }
                other => Err(ProtoError::permanent(format!(
                    "request: unknown job kind {other:?}"
                ))),
            }
        }
        other => Err(ProtoError::permanent(format!(
            "request: unknown type {other:?}"
        ))),
    }
}

/// Encodes a response for the wire.
pub fn encode_response(resp: &Response) -> Json {
    match resp {
        Response::Pong => Json::obj(vec![("type", Json::str("pong"))]),
        Response::Status { counters } => Json::obj(vec![
            ("type", Json::str("status")),
            (
                "counters",
                Json::Obj(
                    counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ]),
        Response::Accepted { job } => Json::obj(vec![
            ("type", Json::str("accepted")),
            ("job", Json::UInt(*job)),
        ]),
        Response::Rejected { reason, class } => Json::obj(vec![
            ("type", Json::str("rejected")),
            ("reason", Json::str(reason)),
            ("class", Json::str(class.tag())),
        ]),
        Response::Progress { job, block, status } => Json::obj(vec![
            ("type", Json::str("progress")),
            ("job", Json::UInt(*job)),
            ("block", Json::str(block)),
            ("status", Json::str(status)),
        ]),
        Response::Report { job, report } => Json::obj(vec![
            ("type", Json::str("report")),
            ("job", Json::UInt(*job)),
            ("report", report.clone()),
        ]),
        Response::Cancelled { job } => Json::obj(vec![
            ("type", Json::str("cancelled")),
            ("job", Json::UInt(*job)),
        ]),
        Response::DrainAck => Json::obj(vec![("type", Json::str("drain_ack"))]),
        Response::Error { message, class } => Json::obj(vec![
            ("type", Json::str("error")),
            ("message", Json::str(message)),
            ("class", Json::str(class.tag())),
        ]),
    }
}

/// Decodes a response from the wire.
pub fn decode_response(v: &Json) -> Result<Response, ProtoError> {
    let ctx = "response";
    let class_of = |v: &Json| -> Result<RetryClass, ProtoError> {
        RetryClass::from_tag(need_str(v, "class", ctx)?)
            .ok_or_else(|| ProtoError::permanent("response: unknown retry class"))
    };
    match need_str(v, "type", ctx)? {
        "pong" => Ok(Response::Pong),
        "status" => {
            let counters = match need(v, "counters", ctx)? {
                Json::Obj(pairs) => {
                    let mut out = Vec::with_capacity(pairs.len());
                    for (k, val) in pairs {
                        let n = val.as_u64().ok_or_else(|| {
                            ProtoError::permanent("response: counter values must be integers")
                        })?;
                        out.push((k.clone(), n));
                    }
                    out
                }
                _ => {
                    return Err(ProtoError::permanent(
                        "response: 'counters' must be an object",
                    ))
                }
            };
            Ok(Response::Status { counters })
        }
        "accepted" => Ok(Response::Accepted {
            job: need_u64(v, "job", ctx)?,
        }),
        "rejected" => Ok(Response::Rejected {
            reason: need_str(v, "reason", ctx)?.to_string(),
            class: class_of(v)?,
        }),
        "progress" => Ok(Response::Progress {
            job: need_u64(v, "job", ctx)?,
            block: need_str(v, "block", ctx)?.to_string(),
            status: need_str(v, "status", ctx)?.to_string(),
        }),
        "report" => Ok(Response::Report {
            job: need_u64(v, "job", ctx)?,
            report: need(v, "report", ctx)?.clone(),
        }),
        "cancelled" => Ok(Response::Cancelled {
            job: need_u64(v, "job", ctx)?,
        }),
        "drain_ack" => Ok(Response::DrainAck),
        "error" => Ok(Response::Error {
            message: need_str(v, "message", ctx)?.to_string(),
            class: class_of(v)?,
        }),
        other => Err(ProtoError::permanent(format!(
            "response: unknown type {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block(name: &str) -> BlockPair {
        let rtl = parse_module(
            "module passthru\n  input a 4\n  output y 4\n  n0 = input 0 : 4\n  drive 0 n0\nend\n",
        )
        .expect("tiny netlist parses");
        BlockPair {
            name: name.to_string(),
            slm_source: "int f(int a) { return a; }".to_string(),
            slm_entry: "f".to_string(),
            rtl,
            spec: EquivSpec::new(1)
                .bind("a", 0, Binding::Slm("a".into()))
                .bind("b", 0, Binding::Const(Bv::from_u64(4, 9)))
                .compare("f", "y", 0),
        }
    }

    #[test]
    fn campaign_submission_roundtrips_with_identical_content_hash() {
        let req = Request::Submit(JobSpec::Campaign {
            blocks: vec![tiny_block("b0"), tiny_block("b1")],
            options: SubmitOptions {
                workers: Some(2),
                deadline_ms: Some(5_000),
                journal: Some("job1.journal".into()),
            },
        });
        let wire = encode_request(&req).unwrap();
        // Through a render/parse cycle, as the frame layer would do it.
        let back = decode_request(&dfv_obs::parse_json(&wire.render()).unwrap()).unwrap();
        match (req, back) {
            (
                Request::Submit(JobSpec::Campaign {
                    blocks: a,
                    options: oa,
                }),
                Request::Submit(JobSpec::Campaign {
                    blocks: b,
                    options: ob,
                }),
            ) => {
                assert_eq!(oa, ob);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    // The content hash covers source, netlist, and spec —
                    // if it survives the wire, dedup keys are stable
                    // across client and server.
                    assert_eq!(x.content_hash(), y.content_hash(), "block {}", x.name);
                }
            }
            _ => panic!("variant changed in flight"),
        }
    }

    #[test]
    fn fault_sweep_submission_roundtrips() {
        let items = |n: u64| {
            (0..n)
                .map(|i| StreamItem {
                    value: Bv::from_u64(8, i),
                    time: i,
                })
                .collect::<Vec<_>>()
        };
        let req = Request::Submit(JobSpec::FaultSweep {
            seed: 0xDEAD,
            blocks: vec![FaultBlock {
                name: "s0".into(),
                expected: items(3),
                actual: items(3),
                policy: ComparatorPolicy::InOrder {
                    tolerance: 2,
                    max_skew: Some(4),
                },
            }],
            options: SubmitOptions::default(),
        });
        let wire = encode_request(&req).unwrap();
        match decode_request(&wire).unwrap() {
            Request::Submit(JobSpec::FaultSweep { seed, blocks, .. }) => {
                assert_eq!(seed, 0xDEAD);
                assert_eq!(blocks.len(), 1);
                assert_eq!(blocks[0].expected.len(), 3);
                assert_eq!(blocks[0].expected[2].value.to_u64(), 2);
                assert!(matches!(
                    blocks[0].policy,
                    ComparatorPolicy::InOrder {
                        tolerance: 2,
                        max_skew: Some(4)
                    }
                ));
            }
            _ => panic!("variant changed in flight"),
        }
    }

    #[test]
    fn every_simple_request_and_response_roundtrips() {
        for req in [
            Request::Ping,
            Request::Status,
            Request::Cancel { job: 7 },
            Request::Drain,
        ] {
            let wire = encode_request(&req).unwrap();
            let back = decode_request(&wire).unwrap();
            assert_eq!(std::mem::discriminant(&req), std::mem::discriminant(&back));
        }
        for resp in [
            Response::Pong,
            Response::Status {
                counters: vec![("serve.accepted".into(), 3)],
            },
            Response::Accepted { job: 1 },
            Response::Rejected {
                reason: "service busy: campaign queue full".into(),
                class: RetryClass::Transient,
            },
            Response::Progress {
                job: 1,
                block: "b0".into(),
                status: "PASS".into(),
            },
            Response::Report {
                job: 1,
                report: Json::obj(vec![("name", Json::str("campaign"))]),
            },
            Response::Cancelled { job: 1 },
            Response::DrainAck,
            Response::Error {
                message: "unknown job".into(),
                class: RetryClass::Permanent,
            },
        ] {
            let wire = encode_response(&resp);
            let back = decode_response(&wire).unwrap();
            assert_eq!(std::mem::discriminant(&resp), std::mem::discriminant(&back));
            assert_eq!(encode_response(&back).render(), wire.render());
        }
    }

    #[test]
    fn malformed_submissions_are_permanent_errors() {
        let cases = [
            r#"{"type":"warp"}"#,
            r#"{"type":"submit","job_kind":"campaign","options":{}}"#,
            r#"{"type":"submit","job_kind":"campaign","blocks":[{"name":"b"}],"options":{}}"#,
            r#"{"type":"submit","job_kind":"fault_sweep","seed":1,"blocks":[
                {"name":"s","policy":{"kind":"sorted"},"expected":[],"actual":[]}],"options":{}}"#,
            r#"{"type":"submit","job_kind":"campaign","blocks":[],"options":{"journal":"../etc/pwned"}}"#,
            r#"{"type":"submit","job_kind":"campaign","blocks":[],"options":{"journal":"a/b"}}"#,
        ];
        for text in cases {
            let v = dfv_obs::parse_json(text).unwrap();
            let err = decode_request(&v).unwrap_err();
            assert_eq!(err.class, RetryClass::Permanent, "case {text}");
        }
    }

    #[test]
    fn oversized_constants_are_refused_at_encode_time() {
        let mut b = tiny_block("wide");
        b.spec = EquivSpec::new(1).bind("a", 0, Binding::Const(Bv::zero(65)));
        let err = encode_request(&Request::Submit(JobSpec::Campaign {
            blocks: vec![b],
            options: SubmitOptions::default(),
        }))
        .unwrap_err();
        assert_eq!(err.class, RetryClass::Permanent);
        assert!(err.message.contains("64"), "{}", err.message);
    }
}
