//! `dfv-serve` — verification as a fault-tolerant service.
//!
//! The paper's methodology assumes verification runs where the designers
//! are: a shared daemon that accepts lint + sequential-equivalence
//! campaigns and fault-injection sweeps from many clients, shards them
//! across `dfv-core`'s deterministic scheduler, and deduplicates
//! identical blocks across clients through a content-hash verdict store
//! — a fleet verifying overlapping block sets pays for each proof once.
//!
//! The crate is organized as concentric trust layers:
//!
//! - [`frame`] — length-prefixed, checksummed JSON frames; corruption
//!   and truncation are typed errors, never accepted bytes;
//! - [`proto`] — the request/response vocabulary; every decode failure
//!   is classified transient vs. permanent, and that classification is
//!   part of the wire contract;
//! - [`admission`] — bounded queues with per-class limits; overload is
//!   refused at the door with a typed `ServiceBusy`, holding server
//!   memory constant;
//! - [`server`] — the executor pool and per-connection threads, with
//!   cancellation on disconnect, progress shedding for slow clients,
//!   panic quarantine (inherited from `dfv-core::sched`), journal-backed
//!   kill-9 recovery, and graceful drain;
//! - [`client`] — a blocking client whose retry loop honors the server's
//!   transient/permanent classification on a deterministic backoff;
//! - [`pipe`] — an in-process duplex byte stream, so every robustness
//!   property above is tested hermetically (and composes with
//!   [`dfv_core::ChaosWire`] for wire-fault injection).
//!
//! Nothing here depends on a real network: the example binary wires the
//! same [`Server`] to TCP or Unix-domain sockets, but every guarantee is
//! proven over pipes first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod pipe;
pub mod proto;
pub mod server;

pub use admission::Limits;
pub use client::{Admission, Backoff, Client, ClientError, SubmitOutcome};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME};
pub use pipe::{duplex, pipe, PipeReader, PipeWriter};
pub use proto::{JobSpec, ProtoError, Request, Response, RetryClass, SubmitOptions};
pub use server::{ConnHandle, Counters, Outbound, ServeConfig, Server};
