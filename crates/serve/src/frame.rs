//! Length-prefixed, checksummed JSON frames — the wire unit of `dfv-serve`.
//!
//! Every message between a client and the daemon travels as one frame:
//!
//! ```text
//! +---------+-----------------+---------------------+-----------------+
//! | "DFV1"  | payload length  | FNV-1a(payload) u64 | payload (JSON,  |
//! | 4 bytes | u32, big-endian | big-endian          | UTF-8 text)     |
//! +---------+-----------------+---------------------+-----------------+
//! ```
//!
//! The design is defensive by construction:
//!
//! - the **magic** rejects peers speaking a different protocol (or a
//!   desynchronized stream) before any allocation happens;
//! - the **length** is validated against [`MAX_FRAME`] *before* the
//!   payload buffer is allocated, so a hostile or corrupted length field
//!   cannot balloon server memory;
//! - the **checksum** catches in-flight corruption (a single flipped bit
//!   anywhere in the payload fails the frame with a typed error instead
//!   of feeding garbage to the JSON parser);
//! - a clean EOF *between* frames is a distinct, expected condition
//!   ([`FrameError::Closed`]) — a torn frame mid-read is not.
//!
//! Nothing here retries or recovers; the caller decides whether a bad
//! frame kills the connection (it should — after a framing error the
//! stream offset is unknowable).

use std::io::{self, Read, Write};

use dfv_obs::{parse_json, Json};

/// Frame magic: protocol name + wire-format version.
pub const MAGIC: [u8; 4] = *b"DFV1";

/// Hard cap on a frame's payload length, checked before allocation.
///
/// 8 MiB comfortably holds the largest plausible campaign submission
/// (hundreds of blocks with inline RTL netlists) while bounding what a
/// corrupted or hostile length field can make the daemon allocate.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (torn frame, broken pipe, timeout).
    Io(io::Error),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The first four bytes were not [`MAGIC`] — wrong protocol or a
    /// desynchronized stream.
    BadMagic([u8; 4]),
    /// The declared payload length exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload failed its FNV-1a checksum (in-flight corruption).
    Checksum {
        /// Checksum declared in the frame header.
        declared: u64,
        /// Checksum actually computed over the received payload.
        computed: u64,
    },
    /// The payload passed its checksum but is not valid JSON.
    BadJson(String),
}

impl FrameError {
    /// True when the error means the peer is simply gone (clean close or
    /// a dead connection) rather than the frame content being bad.
    pub fn is_disconnect(&self) -> bool {
        match self {
            FrameError::Closed => true,
            FrameError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }

    /// True when the error is a read timeout — the peer is alive but not
    /// sending (a stalled or slow-loris client).
    pub fn is_stall(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if matches!(e.kind(), io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock))
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame payload of {n} bytes exceeds cap of {MAX_FRAME}")
            }
            FrameError::Checksum { declared, computed } => write!(
                f,
                "frame checksum mismatch (declared {declared:#018x}, computed {computed:#018x})"
            ),
            FrameError::BadJson(msg) => write!(f, "frame payload is not valid JSON: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// FNV-1a over a byte slice — the frame checksum.
///
/// Deliberately the same construction the campaign cache and journal use
/// for their record checksums: cheap, dependency-free, and plenty to
/// catch wire corruption (it is an integrity check, not an authenticator).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes `msg` and writes one complete frame, flushing the stream.
pub fn write_frame<W: Write>(w: &mut W, msg: &Json) -> Result<(), FrameError> {
    let payload = msg.render();
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(bytes.len()));
    }
    // One buffered write per frame: a frame either reaches the OS whole
    // or the error tells the caller the connection is unusable.
    let mut buf = Vec::with_capacity(4 + 4 + 8 + bytes.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(&fnv1a(bytes).to_be_bytes());
    buf.extend_from_slice(bytes);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame, validating magic, length, and checksum.
///
/// A clean EOF before the first magic byte returns [`FrameError::Closed`];
/// an EOF anywhere inside a frame is a torn frame and surfaces as an
/// [`FrameError::Io`] with `UnexpectedEof`.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Json, FrameError> {
    let mut magic = [0u8; 4];
    // Distinguish "no next frame" from "frame torn mid-header" by hand:
    // the first byte is allowed to be EOF, the remaining three are not.
    match r.read(&mut magic[..1]) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut magic[1..])?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_be_bytes(len4) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut sum8 = [0u8; 8];
    r.read_exact(&mut sum8)?;
    let declared = u64::from_be_bytes(sum8);
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let computed = fnv1a(&payload);
    if computed != declared {
        return Err(FrameError::Checksum { declared, computed });
    }
    let text = String::from_utf8(payload)
        .map_err(|e| FrameError::BadJson(format!("payload is not UTF-8: {e}")))?;
    parse_json(&text).map_err(FrameError::BadJson)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_core::{ChaosWire, WirePlan};

    fn sample() -> Json {
        Json::obj(vec![
            ("type", Json::str("submit")),
            ("blocks", Json::Arr(vec![Json::str("b0")])),
            ("workers", Json::UInt(4)),
        ])
    }

    #[test]
    fn roundtrip_preserves_the_message_byte_for_byte() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let ping = Json::obj(vec![("type", Json::str("ping"))]);
        write_frame(&mut buf, &ping).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().render(), sample().render());
        assert_eq!(read_frame(&mut r).unwrap().render(), ping.render());
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn clean_eof_at_a_boundary_is_closed_not_an_io_error() {
        let empty: &[u8] = &[];
        let err = read_frame(&mut { empty }).unwrap_err();
        assert!(matches!(err, FrameError::Closed));
        assert!(err.is_disconnect());
    }

    #[test]
    fn torn_frame_is_a_typed_io_error_not_a_hang_or_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        // Every strict prefix is a torn frame: either Closed (nothing
        // arrived) or a typed error — never a successful parse.
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            let err = read_frame(&mut r).unwrap_err();
            match (cut, err) {
                (0, FrameError::Closed) => {}
                (_, FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                (c, other) => panic!("cut at {c}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn oversized_length_field_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(&0u64.to_be_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge(n) if n == u32::MAX as usize));
    }

    #[test]
    fn bad_magic_rejects_a_desynchronized_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        buf[1] ^= 0xFF;
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)));
    }

    #[test]
    fn chaos_bitflip_anywhere_surfaces_as_a_typed_error_never_a_bad_accept() {
        use std::io::Read as _;
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        // The chaos wire flips one seeded bit in the first read; read the
        // whole frame in one call so the flip can land anywhere in it.
        for seed in 0..64u64 {
            let mut wire = ChaosWire::new(&buf[..], WirePlan::none(seed).bitflip_nth_recv(1));
            let mut corrupted = vec![0u8; buf.len()];
            wire.read_exact(&mut corrupted).unwrap();
            assert_ne!(corrupted, buf, "seed {seed} flipped nothing");
            match read_frame(&mut &corrupted[..]) {
                // A flip in the length field can shrink the frame; the
                // checksum over the truncated payload then catches it —
                // any typed error is acceptable, silence is not.
                Err(_) => {}
                Ok(msg) => assert_eq!(
                    msg.render(),
                    sample().render(),
                    "seed {seed}: corrupted frame parsed to a different message"
                ),
            }
        }
    }

    #[test]
    fn chaos_stall_and_disconnect_classify_correctly() {
        use std::io::Read as _;
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();

        let mut wire = ChaosWire::new(&buf[..], WirePlan::none(0).stall_nth_recv(1));
        let err = {
            let mut one = [0u8; 1];
            wire.read(&mut one).unwrap_err()
        };
        let fe = FrameError::Io(err);
        assert!(fe.is_stall());
        assert!(!fe.is_disconnect());

        let mut wire = ChaosWire::new(&buf[..], WirePlan::none(0).disconnect_after_nth_recv(0));
        let err = read_frame(&mut wire).unwrap_err();
        assert!(err.is_disconnect(), "got {err}");
    }

    #[test]
    fn checksum_error_reports_both_values() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01; // corrupt the payload's final byte
        match read_frame(&mut &buf[..]) {
            Err(FrameError::Checksum { declared, computed }) => assert_ne!(declared, computed),
            other => panic!("unexpected {other:?}"),
        }
    }
}
