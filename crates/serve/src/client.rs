//! A blocking client for the `dfv-serve` protocol.
//!
//! The client is deliberately thin: one request at a time over any
//! `(Read, Write)` byte-stream pair, with [`Client::submit`] blocking
//! until the final report while streaming progress to a callback. What
//! it adds is the *retry discipline*: [`Client::submit_with_retry`]
//! retries only failures the server classified as
//! [`Transient`](RetryClass::Transient), on a deterministic exponential
//! backoff schedule — a permanent rejection is surfaced immediately,
//! because resending a malformed plan can never help.

use std::io::{Read, Write};
use std::time::Duration;

use dfv_obs::Json;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{
    decode_response, encode_request, JobSpec, ProtoError, Request, Response, RetryClass,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The wire failed (disconnect, torn frame, checksum, timeout).
    Frame(FrameError),
    /// A message could not be encoded or decoded.
    Proto(ProtoError),
    /// The server answered with an `Error` frame.
    Server {
        /// Server-provided description.
        message: String,
        /// Whether retrying can help.
        class: RetryClass,
    },
    /// The server answered with a frame that makes no sense here.
    Unexpected(String),
}

impl ClientError {
    /// True when backing off and retrying the same call might succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Frame(e) => e.is_disconnect() || e.is_stall(),
            ClientError::Server { class, .. } => *class == RetryClass::Transient,
            ClientError::Proto(_) | ClientError::Unexpected(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server { message, class } => {
                write!(f, "server error: {message} ({})", class.tag())
            }
            ClientError::Unexpected(m) => write!(f, "unexpected server reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// How admission answered a submission (before the job runs).
#[derive(Debug)]
pub enum Admission {
    /// The job was admitted under this id; its report will follow.
    Accepted(u64),
    /// Admission refused the job.
    Rejected {
        /// Why.
        reason: String,
        /// Whether retrying can help.
        class: RetryClass,
    },
}

/// How a submission ended.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The job ran; here is its canonical report.
    Report {
        /// Server-assigned job id.
        job: u64,
        /// The canonical run report.
        report: Json,
    },
    /// Admission refused the job.
    Rejected {
        /// Why.
        reason: String,
        /// Whether retrying can help.
        class: RetryClass,
    },
}

/// Deterministic exponential backoff: `base × 2^attempt`, no jitter, so
/// chaos tests replay the exact same schedule every run.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// First delay.
    pub base: Duration,
    /// Retry attempts after the initial try.
    pub retries: u32,
}

impl Backoff {
    /// The delay before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        self.base.saturating_mul(1u32 << attempt.min(16))
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: Duration::from_millis(10),
            retries: 4,
        }
    }
}

/// A blocking protocol client over any byte-stream pair.
#[derive(Debug)]
pub struct Client<R, W> {
    r: R,
    w: W,
}

impl<R: Read, W: Write> Client<R, W> {
    /// Wraps a connection's two halves.
    pub fn new(r: R, w: W) -> Self {
        Client { r, w }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.w, &encode_request(req)?)?;
        Ok(decode_response(&read_frame(&mut self.r)?)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the daemon's counters, sorted by name.
    pub fn status(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.call(&Request::Status)? {
            Response::Status { counters } => Ok(counters),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to drain and shut down gracefully.
    pub fn drain(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Drain)? {
            Response::DrainAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels an accepted job.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { .. } => Ok(()),
            Response::Error { message, class } => Err(ClientError::Server { message, class }),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a job and returns as soon as admission answers, without
    /// waiting for the job to run. Pair with [`wait_report`] — or walk
    /// away, and the server's disconnect handling cancels the job.
    ///
    /// [`wait_report`]: Client::wait_report
    pub fn submit_nowait(&mut self, spec: &JobSpec) -> Result<Admission, ClientError> {
        write_frame(
            &mut self.w,
            &encode_request(&Request::Submit(spec.clone()))?,
        )?;
        match decode_response(&read_frame(&mut self.r)?)? {
            Response::Accepted { job } => Ok(Admission::Accepted(job)),
            Response::Rejected { reason, class } => Ok(Admission::Rejected { reason, class }),
            Response::Error { message, class } => Err(ClientError::Server { message, class }),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks until the final report of an accepted job, feeding streamed
    /// progress to `on_progress(block, status)`.
    pub fn wait_report(
        &mut self,
        job: u64,
        mut on_progress: impl FnMut(&str, &str),
    ) -> Result<Json, ClientError> {
        loop {
            match decode_response(&read_frame(&mut self.r)?)? {
                Response::Progress { block, status, .. } => on_progress(&block, &status),
                Response::Report { job: id, report } if id == job => return Ok(report),
                Response::Error { message, class } => {
                    return Err(ClientError::Server { message, class })
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Submits a job and blocks until its final report (or rejection),
    /// feeding streamed progress to `on_progress(block, status)`.
    pub fn submit(
        &mut self,
        spec: &JobSpec,
        mut on_progress: impl FnMut(&str, &str),
    ) -> Result<SubmitOutcome, ClientError> {
        let job = match self.submit_nowait(spec)? {
            Admission::Accepted(job) => job,
            Admission::Rejected { reason, class } => {
                return Ok(SubmitOutcome::Rejected { reason, class })
            }
        };
        let report = self.wait_report(job, &mut on_progress)?;
        Ok(SubmitOutcome::Report { job, report })
    }

    /// [`submit`](Client::submit), retrying **transient** failures on the
    /// backoff schedule. Permanent rejections and errors return
    /// immediately; the last transient rejection is returned when the
    /// schedule runs out.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        backoff: Backoff,
        mut on_progress: impl FnMut(&str, &str),
    ) -> Result<SubmitOutcome, ClientError> {
        let mut attempt = 0;
        loop {
            match self.submit(spec, &mut on_progress) {
                Ok(SubmitOutcome::Rejected { reason, class })
                    if class == RetryClass::Transient && attempt < backoff.retries =>
                {
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    let _ = reason;
                }
                done => return done,
            }
        }
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Unexpected(format!("{resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let b = Backoff {
            base: Duration::from_millis(3),
            retries: 5,
        };
        let delays: Vec<u64> = (0..5).map(|i| b.delay(i).as_millis() as u64).collect();
        assert_eq!(delays, vec![3, 6, 12, 24, 48]);
        // And again, identically: no hidden jitter.
        let again: Vec<u64> = (0..5).map(|i| b.delay(i).as_millis() as u64).collect();
        assert_eq!(delays, again);
    }

    #[test]
    fn retry_stops_on_transient_exhaustion_and_skips_permanent() {
        // A scripted server on the far end of a duplex pipe: rejects the
        // first submission transiently, the second permanently.
        use crate::pipe::duplex;
        use crate::proto::{encode_response, SubmitOptions};

        let ((cr, cw), (mut sr, mut sw)) = duplex();
        let script = std::thread::spawn(move || {
            for class in [RetryClass::Transient, RetryClass::Transient] {
                let _ = crate::frame::read_frame(&mut sr).unwrap();
                crate::frame::write_frame(
                    &mut sw,
                    &encode_response(&Response::Rejected {
                        reason: "busy".into(),
                        class,
                    }),
                )
                .unwrap();
            }
            // Third frame is the permanent case from the second call.
            let _ = crate::frame::read_frame(&mut sr).unwrap();
            crate::frame::write_frame(
                &mut sw,
                &encode_response(&Response::Rejected {
                    reason: "malformed".into(),
                    class: RetryClass::Permanent,
                }),
            )
            .unwrap();
        });

        let mut client = Client::new(cr, cw);
        let spec = JobSpec::FaultSweep {
            seed: 1,
            blocks: vec![],
            options: SubmitOptions::default(),
        };
        let backoff = Backoff {
            base: Duration::from_millis(1),
            retries: 1,
        };
        // One initial try + one retry, both transient: schedule exhausts
        // and the last transient rejection comes back.
        match client.submit_with_retry(&spec, backoff, |_, _| {}).unwrap() {
            SubmitOutcome::Rejected { class, .. } => assert_eq!(class, RetryClass::Transient),
            other => panic!("unexpected {other:?}"),
        }
        // A permanent rejection is not retried: one frame, one answer.
        match client.submit_with_retry(&spec, backoff, |_, _| {}).unwrap() {
            SubmitOutcome::Rejected { class, .. } => assert_eq!(class, RetryClass::Permanent),
            other => panic!("unexpected {other:?}"),
        }
        script.join().unwrap();
    }
}
