//! End-to-end robustness tests for the `dfv-serve` daemon, run entirely
//! over in-process duplex pipes (no network, no flakiness): overload,
//! disconnect cancellation, wire chaos, drain, panic quarantine,
//! cross-client dedup, and restart byte-identity.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfv_core::{BlockPair, ChaosIo, ChaosPlan, ChaosWire, IoHandle, WirePlan};
use dfv_obs::{kinds, Json};
use dfv_rtl::ModuleBuilder;
use dfv_sec::{Binding, EquivSpec};
use dfv_serve::{
    duplex, frame, Admission, Client, JobSpec, Limits, PipeReader, PipeWriter, RetryClass,
    ServeConfig, Server, SubmitOptions, SubmitOutcome,
};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("dfv-serve-test-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A one-cycle `y = x + delta` block; `bug` makes the RTL add one extra,
/// so the SLM/RTL pair is inequivalent.
fn add_block(name: &str, delta: u64, bug: bool) -> BlockPair {
    let mut b = ModuleBuilder::new("add_rtl");
    let x = b.input("x", 8);
    let k = b.lit(8, if bug { delta + 1 } else { delta });
    let y = b.add(x, k);
    b.output("y", y);
    BlockPair {
        name: name.into(),
        slm_source: format!("uint8 f(uint8 x) {{ return x + {delta}; }}"),
        slm_entry: "f".into(),
        rtl: b.finish().unwrap(),
        spec: EquivSpec::new(1)
            .bind("x", 0, Binding::Slm("x".into()))
            .compare("return", "y", 0),
    }
}

/// A genuinely-equivalent but SAT-expensive block: `width`×`width`
/// multiplier commutativity. Slow enough (hundreds of ms in debug) that
/// a test can reliably act *while* an executor is inside it.
fn slow_block(name: &str, width: u32) -> BlockPair {
    let out = 2 * width;
    let mut rb = ModuleBuilder::new("rtl_mul");
    let a = rb.input("a", width);
    let b = rb.input("b", width);
    let (aw, bw) = (rb.zext(a, out), rb.zext(b, out));
    let y = rb.mul(bw, aw);
    rb.output("y", y);
    BlockPair {
        name: name.into(),
        slm_source: format!(
            "uint<{out}> mul(uint<{width}> a, uint<{width}> b) {{ return (uint<{out}>)a * (uint<{out}>)b; }}"
        ),
        slm_entry: "mul".into(),
        rtl: rb.finish().unwrap(),
        spec: EquivSpec::new(1)
            .bind("a", 0, Binding::Slm("a".into()))
            .bind("b", 0, Binding::Slm("b".into()))
            .compare("return", "y", 0),
    }
}

fn campaign(blocks: Vec<BlockPair>, journal: Option<&str>) -> JobSpec {
    JobSpec::Campaign {
        blocks,
        options: SubmitOptions {
            workers: Some(2),
            deadline_ms: None,
            journal: journal.map(String::from),
        },
    }
}

fn sweep(seed: u64) -> JobSpec {
    JobSpec::FaultSweep {
        seed,
        blocks: vec![],
        options: SubmitOptions::default(),
    }
}

/// Connects a new client to the server over an in-process duplex pipe.
fn connect(server: &Server) -> (Client<PipeReader, PipeWriter>, dfv_serve::ConnHandle) {
    let ((cr, cw), (sr, sw)) = duplex();
    let handle = server.attach(sr, sw);
    (Client::new(cr, cw), handle)
}

/// Polls the server's counters directly until `pred` holds (bounded).
fn wait_for(server: &Server, what: &str, pred: impl Fn() -> bool) {
    wait_for_within(server, Duration::from_secs(10), what, pred);
}

/// [`wait_for`] with an explicit budget, for tests that must sit out a
/// deliberately slow SAT proof.
fn wait_for_within(server: &Server, budget: Duration, what: &str, pred: impl Fn() -> bool) {
    let deadline = Instant::now() + budget;
    while !pred() {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; counters: {:?}",
            server.counters()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Per-block `(name, status, from_cache)` rows from a canonical report.
fn block_rows(report: &Json) -> Vec<(String, String, bool)> {
    report
        .get("values")
        .and_then(|v| v.get("blocks"))
        .and_then(Json::as_arr)
        .expect("report carries blocks")
        .iter()
        .map(|b| {
            (
                b.get("name").and_then(Json::as_str).unwrap().to_string(),
                b.get("status").and_then(Json::as_str).unwrap().to_string(),
                b.get("from_cache") == Some(&Json::Bool(true)),
            )
        })
        .collect()
}

fn counter(report: &Json, name: &str) -> u64 {
    report
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Happy path
// ---------------------------------------------------------------------------

#[test]
fn end_to_end_submit_streams_progress_and_reports() {
    let server = Server::start(ServeConfig::new(temp_dir("e2e")));
    let (mut client, conn) = connect(&server);
    client.ping().unwrap();

    let mut seen = Vec::new();
    let outcome = client
        .submit(
            &campaign(
                vec![add_block("ok", 1, false), add_block("bad", 2, true)],
                None,
            ),
            |block, status| seen.push(format!("{block}:{status}")),
        )
        .unwrap();
    let report = match outcome {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(counter(&report, "campaign.blocks"), 2);
    assert_eq!(counter(&report, "campaign.passed"), 1);
    let rows = block_rows(&report);
    assert_eq!(rows[0].0, "ok");
    assert_eq!(rows[0].1, "PASS");
    assert_eq!(rows[1].1, "FAIL");
    // Progress streamed once per block (completion order may vary).
    let mut names: Vec<&str> = seen.iter().map(|s| s.split(':').next().unwrap()).collect();
    names.sort_unstable();
    assert_eq!(names, ["bad", "ok"]);

    drop(client);
    conn.join();
    server.stop();
}

// ---------------------------------------------------------------------------
// Overload / admission
// ---------------------------------------------------------------------------

#[test]
fn overload_is_refused_with_typed_transient_rejections() {
    let mut cfg = ServeConfig::new(temp_dir("overload"));
    cfg.executors = 0; // accept-only: admitted jobs stay queued
    cfg.limits = Limits {
        total: 2,
        campaigns: 1,
        fault_sweeps: 1,
    };
    let server = Server::start(cfg);
    let (mut client, _conn) = connect(&server);

    // One campaign fits, the second hits the per-class limit.
    assert!(matches!(
        client
            .submit_nowait(&campaign(vec![add_block("a", 1, false)], None))
            .unwrap(),
        Admission::Accepted(_)
    ));
    match client
        .submit_nowait(&campaign(vec![add_block("b", 2, false)], None))
        .unwrap()
    {
        Admission::Rejected { reason, class } => {
            assert_eq!(class, RetryClass::Transient);
            assert!(reason.contains("campaign"), "{reason}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The fault-sweep class has its own budget; then the total cap bites.
    assert!(matches!(
        client.submit_nowait(&sweep(1)).unwrap(),
        Admission::Accepted(_)
    ));
    for i in 0..5 {
        match client.submit_nowait(&sweep(i)).unwrap() {
            Admission::Rejected { class, .. } => assert_eq!(class, RetryClass::Transient),
            other => panic!("round {i}: unexpected {other:?}"),
        }
    }
    // Rejections are dropped on the spot: the queue never grew past its
    // cap, and the counters account for every answer.
    assert_eq!(server.queued(), 2);
    assert_eq!(server.counter(kinds::SERVE_ACCEPTED), 2);
    assert_eq!(server.counter(kinds::SERVE_REJECTED), 6);
    server.stop();
}

// ---------------------------------------------------------------------------
// Cancellation: explicit, by disconnect, by stall
// ---------------------------------------------------------------------------

#[test]
fn cancel_request_trips_a_queued_jobs_latch() {
    let mut cfg = ServeConfig::new(temp_dir("cancel"));
    cfg.executors = 0;
    let server = Server::start(cfg);
    let (mut client, _conn) = connect(&server);

    let job = match client
        .submit_nowait(&campaign(vec![add_block("a", 1, false)], None))
        .unwrap()
    {
        Admission::Accepted(job) => job,
        other => panic!("unexpected {other:?}"),
    };
    client.cancel(job).unwrap();
    assert_eq!(server.counter(kinds::SERVE_CANCELLED), 1);
    // Cancelling twice is idempotent (ack, no double count)...
    client.cancel(job).unwrap();
    assert_eq!(server.counter(kinds::SERVE_CANCELLED), 1);
    // ...and an unknown job is a typed permanent error.
    match client.cancel(9999) {
        Err(dfv_serve::ClientError::Server { class, .. }) => {
            assert_eq!(class, RetryClass::Permanent)
        }
        other => panic!("unexpected {other:?}"),
    }
    server.stop();
}

#[test]
fn client_disconnect_cancels_its_queued_jobs() {
    let mut cfg = ServeConfig::new(temp_dir("disc"));
    cfg.executors = 0;
    let server = Server::start(cfg);
    let (mut client, conn) = connect(&server);

    assert!(matches!(
        client
            .submit_nowait(&campaign(vec![add_block("a", 1, false)], None))
            .unwrap(),
        Admission::Accepted(_)
    ));
    drop(client); // both halves close: the server sees EOF
    conn.join();
    wait_for(&server, "disconnect cancellation", || {
        server.counter(kinds::SERVE_CANCELLED) == 1
    });
    server.stop();
}

#[test]
fn abandoned_job_still_completes_and_the_lost_client_is_counted() {
    let mut cfg = ServeConfig::new(temp_dir("lost"));
    cfg.executors = 1;
    let server = Server::start(cfg);
    let (mut client, conn) = connect(&server);

    // Submit, wait until an executor has the job in hand, then vanish.
    // An in-flight job always runs to completion (its cancel latch only
    // stops *future* blocks), and the report it still owes the vanished
    // client is counted lost by whichever thread notices first. The
    // block is deliberately SAT-slow so the drop lands mid-proof, not
    // after the report already reached the (still-open) pipe buffer.
    let spec = campaign(vec![slow_block("slow", 6)], None);
    let ((cr, cw), (sr, sw)) = duplex();
    let conn2 = server.attach(sr, sw);
    let mut doomed = Client::new(cr, cw);
    assert!(matches!(
        doomed.submit_nowait(&spec).unwrap(),
        Admission::Accepted(_)
    ));
    wait_for(&server, "executor pickup", || {
        server.counter(kinds::SERVE_ACCEPTED) == 1 && server.queued() == 0
    });
    drop(doomed); // the client is fully gone: nobody will ever read the report

    wait_for_within(
        &server,
        Duration::from_secs(90),
        "abandoned job completion",
        || {
            server.counter(kinds::SERVE_COMPLETED) == 1
                && server.counter(kinds::SERVE_CLIENT_LOST) >= 1
        },
    );
    conn2.join();
    drop(client.ping()); // first connection still works
    drop(conn);
    server.stop();
}

#[test]
fn stalled_connection_is_cut_loose_and_its_jobs_cancelled() {
    let mut cfg = ServeConfig::new(temp_dir("stall"));
    cfg.executors = 0;
    let server = Server::start(cfg);

    // Server-side reader wrapped in a chaos wire: one frame is 5 reads
    // (magic byte, magic rest, length, checksum, payload), so read #6 —
    // the wait for a second request — times out like a slow-loris peer.
    let ((cr, cw), (sr, sw)) = duplex();
    let wired = ChaosWire::new(sr, WirePlan::none(0).stall_nth_recv(6));
    let conn = server.attach(wired, sw);
    let mut client = Client::new(cr, cw);

    assert!(matches!(
        client
            .submit_nowait(&campaign(vec![add_block("a", 1, false)], None))
            .unwrap(),
        Admission::Accepted(_)
    ));
    wait_for(&server, "stall cancellation", || {
        server.counter(kinds::SERVE_CANCELLED) == 1
    });
    drop(client);
    conn.join();
    server.stop();
}

// ---------------------------------------------------------------------------
// Wire chaos: torn, garbage, bit-flipped frames
// ---------------------------------------------------------------------------

#[test]
fn torn_submission_is_never_admitted() {
    let server = Server::start(ServeConfig::new(temp_dir("torn")));
    let ((cr, cw), (sr, sw)) = duplex();
    let conn = server.attach(sr, sw);
    let mut wire = ChaosWire::new(cw, WirePlan::none(0xF00D).torn_nth_send(1));

    let msg = dfv_serve::proto::encode_request(&dfv_serve::Request::Submit(campaign(
        vec![add_block("a", 1, false)],
        None,
    )))
    .unwrap();
    let err = frame::write_frame(&mut wire, &msg).unwrap_err();
    assert!(err.is_disconnect(), "torn send reads as a dead peer: {err}");
    drop(wire);
    drop(cr);
    conn.join();
    // A strict prefix of a frame admits nothing and is not even a "bad
    // frame" — the peer simply died mid-send.
    assert_eq!(server.counter(kinds::SERVE_ACCEPTED), 0);
    assert_eq!(server.counter(kinds::SERVE_BAD_FRAME), 0);
    server.stop();
}

#[test]
fn garbage_and_bitflipped_frames_get_typed_refusals() {
    use std::io::Write as _;
    let server = Server::start(ServeConfig::new(temp_dir("badframe")));

    // Garbage bytes: refused with a permanent error, connection closed.
    let ((mut cr, mut cw), (sr, sw)) = duplex();
    let conn = server.attach(sr, sw);
    cw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let v = frame::read_frame(&mut cr).unwrap();
    match dfv_serve::proto::decode_response(&v).unwrap() {
        dfv_serve::Response::Error { class, .. } => {
            assert_eq!(class, RetryClass::Permanent)
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(cw);
    conn.join();
    assert_eq!(server.counter(kinds::SERVE_BAD_FRAME), 1);

    // A bit flipped inside a valid frame's payload: checksum refusal.
    let ((mut cr, mut cw), (sr, sw)) = duplex();
    let conn = server.attach(sr, sw);
    let mut bytes = Vec::new();
    frame::write_frame(
        &mut bytes,
        &dfv_serve::proto::encode_request(&dfv_serve::Request::Ping).unwrap(),
    )
    .unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    cw.write_all(&bytes).unwrap();
    match dfv_serve::proto::decode_response(&frame::read_frame(&mut cr).unwrap()).unwrap() {
        dfv_serve::Response::Error { message, class } => {
            assert_eq!(class, RetryClass::Permanent);
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    drop(cw);
    conn.join();
    assert_eq!(server.counter(kinds::SERVE_BAD_FRAME), 2);
    assert_eq!(server.counter(kinds::SERVE_ACCEPTED), 0);
    server.stop();
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

#[test]
fn drain_finishes_accepted_work_refuses_new_and_exits() {
    let mut cfg = ServeConfig::new(temp_dir("drain"));
    cfg.executors = 1;
    let server = Server::start(cfg);
    let (mut submitter, conn_a) = connect(&server);
    let (mut drainer, conn_b) = connect(&server);

    let job = match submitter
        .submit_nowait(&campaign(vec![add_block("a", 1, false)], None))
        .unwrap()
    {
        Admission::Accepted(job) => job,
        other => panic!("unexpected {other:?}"),
    };
    drainer.drain().unwrap();
    // Late submissions are refused, typed, while in-flight work finishes.
    match drainer
        .submit_nowait(&campaign(vec![add_block("late", 3, false)], None))
        .unwrap()
    {
        Admission::Rejected { reason, class } => {
            assert_eq!(class, RetryClass::Transient);
            assert!(reason.contains("drain"), "{reason}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The accepted job's report still arrives.
    let report = submitter.wait_report(job, |_, _| {}).unwrap();
    assert_eq!(counter(&report, "campaign.passed"), 1);
    // And the executor pool exits on its own: graceful shutdown.
    server.wait();
    assert_eq!(server.counter(kinds::SERVE_COMPLETED), 1);
    drop((submitter, drainer));
    conn_a.join();
    conn_b.join();
}

// ---------------------------------------------------------------------------
// Panic quarantine behind the service boundary
// ---------------------------------------------------------------------------

#[test]
fn a_panicking_block_is_quarantined_and_the_daemon_survives() {
    let mut cfg = ServeConfig::new(temp_dir("panic"));
    cfg.executors = 1;
    cfg.io = IoHandle::new(Arc::new(ChaosIo::new(
        ChaosPlan::none(0).panic_on_block("victim"),
    )));
    let server = Server::start(cfg);
    let (mut client, conn) = connect(&server);

    let plan = vec![
        add_block("ok", 1, false),
        add_block("victim", 2, false),
        add_block("also_ok", 3, false),
    ];
    let report = match client
        .submit(&campaign(plan.clone(), None), |_, _| {})
        .unwrap()
    {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(counter(&report, "campaign.crashed"), 1);
    assert_eq!(counter(&report, "campaign.passed"), 2);
    let rows = block_rows(&report);
    assert_eq!(rows[1], ("victim".into(), "CRASH".into(), false));

    // The daemon shrugged it off: same submission, same quarantine,
    // no executor was lost along the way.
    client.ping().unwrap();
    let again = match client.submit(&campaign(plan, None), |_, _| {}).unwrap() {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(counter(&again, "campaign.crashed"), 1);
    assert_eq!(server.counter(kinds::SERVE_COMPLETED), 2);
    drop(client);
    conn.join();
    server.stop();
}

// ---------------------------------------------------------------------------
// Deadlines through the service
// ---------------------------------------------------------------------------

#[test]
fn an_expired_deadline_skips_blocks_with_typed_verdicts() {
    let mut cfg = ServeConfig::new(temp_dir("deadline"));
    cfg.executors = 1;
    let server = Server::start(cfg);
    let (mut client, conn) = connect(&server);

    let spec = JobSpec::Campaign {
        blocks: vec![add_block("a", 1, false), add_block("b", 2, false)],
        options: SubmitOptions {
            workers: Some(1),
            deadline_ms: Some(0), // expired on arrival
            journal: None,
        },
    };
    let report = match client.submit(&spec, |_, _| {}).unwrap() {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(counter(&report, "campaign.deadline_skipped"), 2);
    assert_eq!(counter(&report, "campaign.passed"), 0);
    drop(client);
    conn.join();
    server.stop();
}

// ---------------------------------------------------------------------------
// Cross-client dedup
// ---------------------------------------------------------------------------

#[test]
fn identical_plans_from_two_clients_share_verdicts() {
    let mut cfg = ServeConfig::new(temp_dir("dedup"));
    cfg.executors = 1; // sequential: the second job sees the store warm
    let server = Server::start(cfg);
    let (mut alice, conn_a) = connect(&server);
    let (mut bob, conn_b) = connect(&server);

    let plan = || vec![add_block("x", 1, false), add_block("y", 2, true)];
    let first = match alice.submit(&campaign(plan(), None), |_, _| {}).unwrap() {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    let second = match bob.submit(&campaign(plan(), None), |_, _| {}).unwrap() {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    let first_rows = block_rows(&first);
    let second_rows = block_rows(&second);
    assert!(first_rows.iter().all(|(_, _, cached)| !cached));
    // Bob paid for nothing: both verdicts came from the shared store,
    // and they match Alice's exactly.
    assert!(second_rows.iter().all(|(_, _, cached)| *cached));
    for (a, b) in first_rows.iter().zip(&second_rows) {
        assert_eq!((&a.0, &a.1), (&b.0, &b.1));
    }
    assert_eq!(counter(&second, "campaign.cache_hits"), 2);
    drop((alice, bob));
    conn_a.join();
    conn_b.join();
    server.stop();
}

// ---------------------------------------------------------------------------
// Restart recovery: resubmission after a crash is byte-identical
// ---------------------------------------------------------------------------

#[test]
fn journal_resume_across_server_incarnations_is_byte_identical() {
    let plan = || {
        vec![
            add_block("a", 1, false),
            add_block("b", 2, true),
            add_block("c", 3, false),
        ]
    };

    // Baseline: an uninterrupted run on a fresh daemon.
    let baseline_server = Server::start(ServeConfig::new(temp_dir("resume-base")));
    let (mut client, conn) = connect(&baseline_server);
    let baseline = match client
        .submit(&campaign(plan(), Some("job.journal")), |_, _| {})
        .unwrap()
    {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    drop(client);
    conn.join();
    baseline_server.stop();

    // "Crashed" daemon: a prior incarnation only got through part of the
    // plan before dying, leaving a journal with block `a` checkpointed.
    let state = temp_dir("resume-crashed");
    let server = Server::start(ServeConfig::new(state.clone()));
    let (mut client, conn) = connect(&server);
    match client
        .submit(
            &campaign(plan()[..1].to_vec(), Some("job.journal")),
            |_, _| {},
        )
        .unwrap()
    {
        SubmitOutcome::Report { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    drop(client);
    conn.join();
    server.stop();

    // Restarted daemon over the same state dir: resubmitting the full
    // plan with the same journal name replays `a` and computes the rest.
    // The canonical report must be byte-identical to the uninterrupted
    // baseline — journal replay outranks the dedup store precisely so
    // this holds.
    let server = Server::start(ServeConfig::new(state));
    let (mut client, conn) = connect(&server);
    let resumed = match client
        .submit(&campaign(plan(), Some("job.journal")), |_, _| {})
        .unwrap()
    {
        SubmitOutcome::Report { report, .. } => report,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(resumed.render(), baseline.render());
    drop(client);
    conn.join();
    server.stop();
}
