//! Divergence localization: from "the streams disagree" to *where*.
//!
//! A cosim mismatch or SEC counterexample says two models disagree; the
//! debugging question is always the same: at which cycle did they first
//! split, on which signal, and which RTL logic feeds that signal? This
//! module answers all three from a pair of [`WatchedTrace`]s (one per
//! side) and the RTL netlist:
//!
//! 1. [`dfv_obs::first_divergence`] scans the aligned traces for the
//!    first cycle/signal where the sides differ;
//! 2. [`dfv_rtl::fanin_cone`] back-traverses the netlist from the
//!    offending signal, ranking suspects by structural distance;
//! 3. the result renders as a human-readable report
//!    ([`DivergenceReport::render_text`]) and as one combined VCD with
//!    both sides' watched values in separate scopes
//!    ([`combined_divergence_vcd`]) for waveform-viewer inspection.

use dfv_obs::{first_divergence, Divergence, WatchedTrace};
use dfv_rtl::{fanin_cone, ConeEntry, ConeStart, Module};

/// A localized divergence: the first point of disagreement plus the RTL
/// fan-in cone of the offending signal, ranked by distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// First cycle/signal where the two sides disagree.
    pub divergence: Divergence,
    /// Fan-in cone of the offending signal (empty if the signal could
    /// not be resolved to a netlist object, e.g. an SLM-only name).
    pub cone: Vec<ConeEntry>,
}

impl DivergenceReport {
    /// Renders the report as indented text: the divergence line followed
    /// by the cone, one suspect per line, nearest first.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}\n", self.divergence);
        if self.cone.is_empty() {
            out.push_str(&format!(
                "  (no fan-in cone: `{}` is not an RTL output, register, or named node)\n",
                self.divergence.signal
            ));
            return out;
        }
        out.push_str(&format!(
            "fan-in cone of `{}` ({} suspects, nearest first):\n",
            self.divergence.signal,
            self.cone.len()
        ));
        for e in &self.cone {
            out.push_str(&format!("  d={:<3} {} {}\n", e.distance, e.kind, e.name));
        }
        out
    }
}

/// Resolves a watched-signal name to a cone start point: output port
/// first, then register, then named combinational node.
fn cone_start(rtl: &Module, signal: &str) -> Option<ConeStart> {
    if rtl.output_index(signal).is_some() {
        return Some(ConeStart::Output(signal.to_string()));
    }
    if rtl.reg_index(signal).is_some() {
        return Some(ConeStart::Reg(signal.to_string()));
    }
    rtl.node_named(signal).map(ConeStart::Node)
}

/// Localizes the first divergence between an expected (SLM-side) and
/// actual (RTL-side) trace: names the cycle and signal, then
/// back-traverses `rtl`'s netlist from that signal for up to `max_cone`
/// ranked suspects. Returns `None` when the traces agree on every signal
/// they share.
pub fn localize(
    rtl: &Module,
    expected: &WatchedTrace,
    actual: &WatchedTrace,
    max_cone: usize,
) -> Option<DivergenceReport> {
    let divergence = first_divergence(expected, actual)?;
    let cone = cone_start(rtl, &divergence.signal)
        .and_then(|s| fanin_cone(rtl, &s, max_cone))
        .unwrap_or_default();
    Some(DivergenceReport { divergence, cone })
}

/// Renders one VCD with both sides' watched values: the expected trace
/// under scope `slm`, the actual under scope `rtl` — open it in any
/// waveform viewer and the two sides sit next to each other.
pub fn combined_divergence_vcd(expected: &WatchedTrace, actual: &WatchedTrace) -> String {
    dfv_obs::combined_vcd(expected, "slm", actual, "rtl")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_bits::Bv;
    use dfv_rtl::{ConeKind, ModuleBuilder, Simulator};

    /// y = reg(a + b): watchable output with a two-deep cone.
    fn adder_reg(swap_bug: bool) -> Module {
        let mut b = ModuleBuilder::new("dut");
        let a = b.input("a", 8);
        let bi = b.input("b", 8);
        let sum = if swap_bug { b.sub(a, bi) } else { b.add(a, bi) };
        b.name_node(sum, "sum");
        let r = b.reg("acc", 8, Bv::zero(8));
        b.connect_reg(r, sum);
        let q = b.reg_q(r);
        b.output("y", q);
        b.finish().unwrap()
    }

    fn run_trace(m: Module, steps: u64) -> WatchedTrace {
        let mut sim = Simulator::new(m).unwrap();
        sim.watch_output("y");
        sim.poke("a", Bv::from_u64(8, 7));
        sim.poke("b", Bv::from_u64(8, 5));
        for _ in 0..steps {
            sim.step();
        }
        sim.watched_trace()
    }

    #[test]
    fn localizes_first_divergence_with_cone() {
        let expected = run_trace(adder_reg(false), 3);
        let actual = run_trace(adder_reg(true), 3);
        let rep = localize(&adder_reg(true), &expected, &actual, 16).unwrap();
        // Cycle 0 samples the reset value on both sides; the faulty sum
        // lands at cycle 1.
        assert_eq!(rep.divergence.step, 1);
        assert_eq!(rep.divergence.signal, "y");
        assert_eq!(rep.divergence.expected.to_u64(), 12);
        assert_eq!(rep.divergence.actual.to_u64(), 2);
        // Cone: acc (the register driving y), then sum, then the inputs.
        assert!(rep
            .cone
            .iter()
            .any(|e| e.name == "acc" && e.kind == ConeKind::Reg));
        assert!(rep.cone.iter().any(|e| e.name == "sum"));
        assert!(rep.cone.iter().any(|e| e.name == "a"));
        let text = rep.render_text();
        assert!(text.contains("cycle 1"), "{text}");
        assert!(text.contains("`y`"), "{text}");
        assert!(text.contains("acc"), "{text}");
    }

    #[test]
    fn agreement_yields_none() {
        let expected = run_trace(adder_reg(false), 3);
        let actual = run_trace(adder_reg(false), 3);
        assert!(localize(&adder_reg(false), &expected, &actual, 16).is_none());
    }

    #[test]
    fn combined_vcd_carries_both_scopes() {
        let expected = run_trace(adder_reg(false), 2);
        let actual = run_trace(adder_reg(true), 2);
        let vcd = combined_divergence_vcd(&expected, &actual);
        let parsed = dfv_obs::parse_vcd(&vcd).unwrap();
        assert!(parsed.var("slm", "y").is_some());
        assert!(parsed.var("rtl", "y").is_some());
    }
}
