//! Mixed SLM/RTL co-simulation: an RTL block living inside the
//! discrete-event kernel.
//!
//! The paper's §2, strategy (b): "Replace a block of the SLM with a
//! wrapped-RTL corresponding to that SLM block and co-simulate the
//! wrapped-RTL and the remaining SLM blocks." [`RtlInKernel`] hosts a
//! cycle-accurate [`Simulator`] as a kernel process: every rising edge of a
//! [`Clock`], it samples its input [`Signal`]s into RTL input ports, steps
//! one cycle, and drives its output ports onto output [`Signal`]s — so the
//! rest of the system can stay at the system level.

use std::cell::RefCell;
use std::rc::Rc;

use dfv_bits::Bv;
use dfv_rtl::{Module, RtlError, Simulator};
use dfv_slm::{Clock, Kernel, Signal};

/// An RTL module embedded in a `dfv-slm` simulation.
///
/// Input ports read from `Signal<Bv>`s; output ports write to
/// `Signal<Bv>`s after each rising clock edge (so SLM processes see them
/// one delta later, like registered outputs).
pub struct RtlInKernel {
    inputs: Vec<(String, Signal<Bv>)>,
    outputs: Vec<(String, Signal<Bv>)>,
}

impl RtlInKernel {
    /// Instantiates `module` in `kernel`, clocked by `clock`. Creates one
    /// signal per port, named `prefix.port`.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if the module fails validation.
    pub fn new(
        kernel: &mut Kernel,
        clock: &Clock,
        prefix: &str,
        module: Module,
    ) -> Result<Self, RtlError> {
        let sim = Simulator::new(module)?;
        let inputs: Vec<(String, Signal<Bv>)> = sim
            .module()
            .inputs
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    Signal::new(kernel, format!("{prefix}.{}", p.name), Bv::zero(p.width)),
                )
            })
            .collect();
        let outputs: Vec<(String, Signal<Bv>)> = sim
            .module()
            .outputs
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    Signal::new(kernel, format!("{prefix}.{}", p.name), Bv::zero(p.width)),
                )
            })
            .collect();
        let sim = Rc::new(RefCell::new(sim));
        let (ins, outs) = (inputs.clone(), outputs.clone());
        let sim2 = Rc::clone(&sim);
        kernel.process(format!("{prefix}.step"), &[clock.posedge()], move |_| {
            let mut sim = sim2.borrow_mut();
            for (name, signal) in &ins {
                sim.poke(name, signal.read());
            }
            // Pre-edge combinational outputs are what the SLM side of a
            // registered interface would observe this cycle.
            sim.step();
            for (name, signal) in &outs {
                signal.write(sim.output(name));
            }
        });
        Ok(RtlInKernel { inputs, outputs })
    }

    /// The signal feeding an RTL input port.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn input(&self, port: &str) -> Signal<Bv> {
        self.inputs
            .iter()
            .find(|(n, _)| n == port)
            .unwrap_or_else(|| panic!("no input port {port:?}"))
            .1
            .clone()
    }

    /// The signal carrying an RTL output port (updated after each rising
    /// edge).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&self, port: &str) -> Signal<Bv> {
        self.outputs
            .iter()
            .find(|(n, _)| n == port)
            .unwrap_or_else(|| panic!("no output port {port:?}"))
            .1
            .clone()
    }
}

impl Clone for RtlInKernel {
    fn clone(&self) -> Self {
        RtlInKernel {
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;
    use std::cell::RefCell;

    /// SLM producer + RTL accumulator + SLM checker, §2 strategy (b).
    #[test]
    fn slm_system_with_rtl_block_plugged_in() {
        // RTL: accumulate din when en.
        let mut b = ModuleBuilder::new("accum");
        let en = b.input("en", 1);
        let din = b.input("din", 8);
        let acc = b.reg("acc", 16, Bv::zero(16));
        let q = b.reg_q(acc);
        let dw = b.zext(din, 16);
        let sum = b.add(q, dw);
        b.connect_reg(acc, sum);
        b.reg_enable(acc, en);
        b.output("total", q);
        let module = b.finish().unwrap();

        let mut k = Kernel::new();
        let clk = Clock::new(&mut k, "clk", 2);
        let rtl = RtlInKernel::new(&mut k, &clk, "u_accum", module).unwrap();

        // SLM producer: drives one value per clock, alongside an SLM-side
        // reference model of the accumulator.
        let values = [5u64, 7, 11, 0, 13];
        let din_sig = rtl.input("din");
        let en_sig = rtl.input("en");
        let expected_total = Rc::new(RefCell::new(0u64));
        let idx = Rc::new(RefCell::new(0usize));
        let (et, ix) = (Rc::clone(&expected_total), Rc::clone(&idx));
        k.process("producer", &[clk.negedge()], move |_| {
            // Drive on falling edges so values are stable at rising edges.
            let mut i = ix.borrow_mut();
            if *i < values.len() {
                din_sig.write(Bv::from_u64(8, values[*i]));
                en_sig.write(Bv::from_bool(true));
                *et.borrow_mut() += values[*i];
                *i += 1;
            } else {
                en_sig.write(Bv::from_bool(false));
            }
        });
        // Run long enough for all values plus one settling edge.
        k.run(2 * (values.len() as u64 + 3)).expect("no livelock");

        let total = rtl.output("total").read();
        assert_eq!(total.to_u64(), values.iter().sum::<u64>());
        assert_eq!(*expected_total.borrow(), total.to_u64());
    }

    #[test]
    fn port_lookup_panics_on_typo() {
        let mut b = ModuleBuilder::new("id");
        let x = b.input("x", 4);
        b.output("y", x);
        let mut k = Kernel::new();
        let clk = Clock::new(&mut k, "clk", 2);
        let rtl = RtlInKernel::new(&mut k, &clk, "u", b.finish().unwrap()).unwrap();
        let _ = rtl.input("x");
        let _ = rtl.output("y");
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| { rtl.input("nope") }))
                .is_err()
        );
    }
}
