//! Co-simulation between system-level models and RTL: transactors,
//! wrapped-RTL, stream comparators, constrained-random stimulus, and an RTL
//! mutation engine.
//!
//! Implements the paper's §2 simulation-based methodology:
//!
//! 1. stimulus is generated at the transaction level ([`StimulusGen`]),
//! 2. the golden SLM produces expected outputs (via `dfv-slmir`'s
//!    interpreter or a `dfv-slm` model),
//! 3. adapters convert SLM stimulus to RTL stimulus — [`DirectDriver`] for
//!    parallel interfaces, [`SerialDriver`] for the paper's
//!    whole-image-to-pixel-stream case — around the simulator, forming the
//!    **wrapped-RTL** ([`WrappedRtl`]),
//! 4. output streams are aligned and compared with the policy the timing
//!    abstraction demands: [`ExactComparator`], [`InOrderComparator`]
//!    (latency-tolerant), or [`OutOfOrderComparator`] (tag-matched).
//!
//! The [`enumerate_mutations`] engine supplies realistic injected RTL bugs
//! for measuring how quickly simulation and sequential equivalence checking
//! find divergences (experiment E3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compare;
mod faults;
mod kernel_bridge;
mod localize;
mod mutate;
mod stimulus;
mod wrapped;

pub use compare::{
    Comparator, CompareReport, ExactComparator, InOrderComparator, OutOfOrderComparator,
    StreamItem, StreamMismatch,
};
pub use faults::{
    replay, shared_fault_log, ComparatorPolicy, FaultEvent, FaultInjector, FaultKind, FaultLog,
    FaultPlan, FaultyDriver, FaultyMonitor, SharedFaultLog,
};
pub use kernel_bridge::RtlInKernel;
pub use localize::{combined_divergence_vcd, localize, DivergenceReport};
pub use mutate::{apply_mutation, enumerate_mutations, Mutation};
pub use stimulus::{FieldSpec, StimulusGen};
pub use wrapped::{
    DirectDriver, FixedCycleMonitor, InputTransactor, OutputTransactor, SerialCollector,
    SerialDriver, Transaction, WrappedRtl,
};
