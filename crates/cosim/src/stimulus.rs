//! Constrained-random stimulus generation.
//!
//! The simulation-based side of the paper's methodology: transactions are
//! generated under constraints (ranges, interesting corner values, excluded
//! values) and replayed on both the SLM and the wrapped-RTL.

use dfv_bits::{Bv, SplitMix64};

use crate::wrapped::Transaction;

/// How to draw one transaction field.
#[derive(Debug, Clone)]
pub enum FieldSpec {
    /// Uniform over the field's full width.
    Uniform {
        /// Width in bits.
        width: u32,
    },
    /// Uniform within `[lo, hi]` (inclusive, unsigned interpretation).
    Range {
        /// Width in bits.
        width: u32,
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Mostly uniform, but with the given probability (percent) pick one of
    /// the corner values (0, max, min-signed, max-signed, 1). Biasing
    /// toward corners is what makes random simulation find overflow bugs.
    Corners {
        /// Width in bits.
        width: u32,
        /// Percent chance (0..=100) of picking a corner value.
        corner_percent: u32,
    },
    /// Uniform but never one of the excluded values — the simulation
    /// analogue of the paper's "constrain the input space" (§3.1.2).
    Excluding {
        /// Width in bits.
        width: u32,
        /// Forbidden values.
        exclude: Vec<u64>,
    },
}

impl FieldSpec {
    fn width(&self) -> u32 {
        match self {
            FieldSpec::Uniform { width }
            | FieldSpec::Range { width, .. }
            | FieldSpec::Corners { width, .. }
            | FieldSpec::Excluding { width, .. } => *width,
        }
    }
}

/// A seeded constrained-random transaction generator.
///
/// # Example
///
/// ```
/// use dfv_cosim::{FieldSpec, StimulusGen};
///
/// let mut gen = StimulusGen::new(42)
///     .field("a", FieldSpec::Corners { width: 8, corner_percent: 30 })
///     .field("b", FieldSpec::Range { width: 8, lo: 1, hi: 10 });
/// let txn = gen.next_transaction();
/// assert!(txn["b"].to_u64() >= 1 && txn["b"].to_u64() <= 10);
/// ```
#[derive(Debug)]
pub struct StimulusGen {
    rng: SplitMix64,
    fields: Vec<(String, FieldSpec)>,
}

impl StimulusGen {
    /// Creates a generator with a fixed seed (reproducible).
    pub fn new(seed: u64) -> Self {
        StimulusGen {
            rng: SplitMix64::new(seed),
            fields: Vec::new(),
        }
    }

    /// Adds a field.
    pub fn field(mut self, name: &str, spec: FieldSpec) -> Self {
        self.fields.push((name.into(), spec));
        self
    }

    /// Draws one value for a spec.
    pub fn draw(&mut self, spec: &FieldSpec) -> Bv {
        let width = spec.width();
        if let FieldSpec::Uniform { .. } = spec {
            // Uniform fields are random across their *entire* width, 64
            // bits at a time — wide fields (packed arrays, image rows) get
            // full-entropy stimulus.
            return uniform_bv(&mut self.rng, width);
        }
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let raw = match spec {
            FieldSpec::Uniform { .. } => unreachable!("handled above"),
            FieldSpec::Range { lo, hi, .. } => self.rng.range_u64(*lo, *hi),
            FieldSpec::Corners { corner_percent, .. } => {
                if self.rng.below(100) < u64::from(*corner_percent) {
                    let corners = [
                        0u64,
                        mask,
                        1,
                        mask >> 1,       // max signed
                        (mask >> 1) + 1, // min signed
                    ];
                    corners[self.rng.below(corners.len() as u64) as usize]
                } else {
                    self.rng.bits(width.min(64))
                }
            }
            FieldSpec::Excluding { exclude, .. } => loop {
                let v = self.rng.bits(width.min(64));
                if !exclude.contains(&v) {
                    break v;
                }
            },
        };
        // Non-uniform specs above 64 bits zero-extend; the interesting
        // action is in the low bits for ranges/corners/exclusions.
        Bv::from_u64(width, raw)
    }

    /// Generates the next transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        let fields = self.fields.clone();
        fields
            .iter()
            .map(|(name, spec)| (name.clone(), self.draw(spec)))
            .collect()
    }

    /// Generates the next `n` transactions in one call — one fuzz
    /// *round*. Round `r`'s transactions map onto lanes `0..n` of a
    /// batched 64-lane evaluation, so a campaign that chunks scenarios
    /// into lane groups draws exactly the same stream a scalar sweep
    /// would (the batch is just `n` consecutive
    /// [`StimulusGen::next_transaction`] draws).
    pub fn next_batch(&mut self, n: usize) -> Vec<Transaction> {
        (0..n).map(|_| self.next_transaction()).collect()
    }
}

/// A uniformly random `Bv` of arbitrary width, drawn 64 bits per chunk
/// LSB-first.
fn uniform_bv(rng: &mut SplitMix64, width: u32) -> Bv {
    if width <= 64 {
        return Bv::from_u64(width, rng.bits(width));
    }
    let mut v = Bv::from_u64(64, rng.next_u64());
    let mut remaining = width - 64;
    while remaining > 0 {
        let w = remaining.min(64);
        v = Bv::from_u64(w, rng.bits(w)).concat(&v);
        remaining -= w;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_with_same_seed() {
        let mk = || {
            StimulusGen::new(7)
                .field("x", FieldSpec::Uniform { width: 16 })
                .field(
                    "y",
                    FieldSpec::Corners {
                        width: 8,
                        corner_percent: 50,
                    },
                )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..20 {
            assert_eq!(a.next_transaction(), b.next_transaction());
        }
    }

    #[test]
    fn batch_is_consecutive_draws() {
        let mk = || {
            StimulusGen::new(11)
                .field("x", FieldSpec::Uniform { width: 16 })
                .field(
                    "y",
                    FieldSpec::Range {
                        width: 8,
                        lo: 2,
                        hi: 9,
                    },
                )
        };
        let mut one_by_one = mk();
        let singles: Vec<_> = (0..64).map(|_| one_by_one.next_transaction()).collect();
        let batch = mk().next_batch(64);
        assert_eq!(batch, singles);
    }

    #[test]
    fn range_respected() {
        let mut g = StimulusGen::new(1).field(
            "v",
            FieldSpec::Range {
                width: 12,
                lo: 100,
                hi: 200,
            },
        );
        for _ in 0..100 {
            let v = g.next_transaction()["v"].to_u64();
            assert!((100..=200).contains(&v));
        }
    }

    #[test]
    fn exclusion_respected() {
        let mut g = StimulusGen::new(2).field(
            "v",
            FieldSpec::Excluding {
                width: 4,
                exclude: vec![0xF, 0x0],
            },
        );
        for _ in 0..200 {
            let v = g.next_transaction()["v"].to_u64();
            assert!(v != 0xF && v != 0);
        }
    }

    #[test]
    fn wide_uniform_fields_have_entropy_everywhere() {
        let mut g = StimulusGen::new(9).field("img", FieldSpec::Uniform { width: 200 });
        let first = g.next_transaction()["img"].clone();
        assert_eq!(first.width(), 200);
        let mut high_bits_seen = false;
        for _ in 0..10 {
            if !g.next_transaction()["img"].slice(199, 64).is_zero() {
                high_bits_seen = true;
            }
        }
        assert!(
            high_bits_seen,
            "upper chunks of a wide uniform field never toggled"
        );
    }

    #[test]
    fn corners_show_up() {
        let mut g = StimulusGen::new(3).field(
            "v",
            FieldSpec::Corners {
                width: 8,
                corner_percent: 100,
            },
        );
        let mut saw_max = false;
        let mut saw_zero = false;
        for _ in 0..100 {
            match g.next_transaction()["v"].to_u64() {
                0xFF => saw_max = true,
                0 => saw_zero = true,
                _ => {}
            }
        }
        assert!(saw_max && saw_zero);
    }
}
