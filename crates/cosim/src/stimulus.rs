//! Constrained-random stimulus generation.
//!
//! The simulation-based side of the paper's methodology: transactions are
//! generated under constraints (ranges, interesting corner values, excluded
//! values) and replayed on both the SLM and the wrapped-RTL.

use dfv_bits::Bv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wrapped::Transaction;

/// How to draw one transaction field.
#[derive(Debug, Clone)]
pub enum FieldSpec {
    /// Uniform over the field's full width.
    Uniform {
        /// Width in bits.
        width: u32,
    },
    /// Uniform within `[lo, hi]` (inclusive, unsigned interpretation).
    Range {
        /// Width in bits.
        width: u32,
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Mostly uniform, but with the given probability (percent) pick one of
    /// the corner values (0, max, min-signed, max-signed, 1). Biasing
    /// toward corners is what makes random simulation find overflow bugs.
    Corners {
        /// Width in bits.
        width: u32,
        /// Percent chance (0..=100) of picking a corner value.
        corner_percent: u32,
    },
    /// Uniform but never one of the excluded values — the simulation
    /// analogue of the paper's "constrain the input space" (§3.1.2).
    Excluding {
        /// Width in bits.
        width: u32,
        /// Forbidden values.
        exclude: Vec<u64>,
    },
}

impl FieldSpec {
    fn width(&self) -> u32 {
        match self {
            FieldSpec::Uniform { width }
            | FieldSpec::Range { width, .. }
            | FieldSpec::Corners { width, .. }
            | FieldSpec::Excluding { width, .. } => *width,
        }
    }
}

/// A seeded constrained-random transaction generator.
///
/// # Example
///
/// ```
/// use dfv_cosim::{FieldSpec, StimulusGen};
///
/// let mut gen = StimulusGen::new(42)
///     .field("a", FieldSpec::Corners { width: 8, corner_percent: 30 })
///     .field("b", FieldSpec::Range { width: 8, lo: 1, hi: 10 });
/// let txn = gen.next_transaction();
/// assert!(txn["b"].to_u64() >= 1 && txn["b"].to_u64() <= 10);
/// ```
#[derive(Debug)]
pub struct StimulusGen {
    rng: StdRng,
    fields: Vec<(String, FieldSpec)>,
}

impl StimulusGen {
    /// Creates a generator with a fixed seed (reproducible).
    pub fn new(seed: u64) -> Self {
        StimulusGen {
            rng: StdRng::seed_from_u64(seed),
            fields: Vec::new(),
        }
    }

    /// Adds a field.
    pub fn field(mut self, name: &str, spec: FieldSpec) -> Self {
        self.fields.push((name.into(), spec));
        self
    }

    /// Draws one value for a spec.
    pub fn draw(&mut self, spec: &FieldSpec) -> Bv {
        let width = spec.width();
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let raw = match spec {
            FieldSpec::Uniform { .. } => self.rng.gen::<u64>() & mask,
            FieldSpec::Range { lo, hi, .. } => self.rng.gen_range(*lo..=*hi),
            FieldSpec::Corners {
                corner_percent, ..
            } => {
                if self.rng.gen_range(0..100) < *corner_percent {
                    let corners = [
                        0u64,
                        mask,
                        1,
                        mask >> 1,       // max signed
                        (mask >> 1) + 1, // min signed
                    ];
                    corners[self.rng.gen_range(0..corners.len())]
                } else {
                    self.rng.gen::<u64>() & mask
                }
            }
            FieldSpec::Excluding { exclude, .. } => loop {
                let v = self.rng.gen::<u64>() & mask;
                if !exclude.contains(&v) {
                    break v;
                }
            },
        };
        // Values above 64 bits zero-extend; the interesting action is in
        // the low bits for these specs.
        Bv::from_u64(width, raw)
    }

    /// Generates the next transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        let fields = self.fields.clone();
        fields
            .iter()
            .map(|(name, spec)| (name.clone(), self.draw(spec)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_with_same_seed() {
        let mk = || {
            StimulusGen::new(7)
                .field("x", FieldSpec::Uniform { width: 16 })
                .field("y", FieldSpec::Corners { width: 8, corner_percent: 50 })
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..20 {
            assert_eq!(a.next_transaction(), b.next_transaction());
        }
    }

    #[test]
    fn range_respected() {
        let mut g = StimulusGen::new(1).field("v", FieldSpec::Range { width: 12, lo: 100, hi: 200 });
        for _ in 0..100 {
            let v = g.next_transaction()["v"].to_u64();
            assert!((100..=200).contains(&v));
        }
    }

    #[test]
    fn exclusion_respected() {
        let mut g = StimulusGen::new(2).field(
            "v",
            FieldSpec::Excluding {
                width: 4,
                exclude: vec![0xF, 0x0],
            },
        );
        for _ in 0..200 {
            let v = g.next_transaction()["v"].to_u64();
            assert!(v != 0xF && v != 0);
        }
    }

    #[test]
    fn corners_show_up() {
        let mut g = StimulusGen::new(3).field(
            "v",
            FieldSpec::Corners {
                width: 8,
                corner_percent: 100,
            },
        );
        let mut saw_max = false;
        let mut saw_zero = false;
        for _ in 0..100 {
            match g.next_transaction()["v"].to_u64() {
                0xFF => saw_max = true,
                0 => saw_zero = true,
                _ => {}
            }
        }
        assert!(saw_max && saw_zero);
    }
}
