//! Output comparators: aligning SLM and RTL output streams.
//!
//! The paper's §2/§3.2: "temporal differences between when the SLM and
//! wrapped-RTL produce outputs means that the procedure that compares the
//! SLM outputs with RTL outputs needs to account for the timing
//! differences", and stalls can even reorder outputs, requiring
//! "complicated transactors". These comparators implement the three
//! alignment policies:
//!
//! * [`ExactComparator`] — value *and* timestamp must match (only works for
//!   cycle-accurate SLMs);
//! * [`InOrderComparator`] — values must match in order, timestamps may
//!   differ by up to a tolerance (latency-shifted streams);
//! * [`OutOfOrderComparator`] — values match by a tag within a reorder
//!   window (tagged out-of-order completion, e.g. a cache hit overtaking a
//!   miss).

use std::collections::VecDeque;
use std::fmt;

use dfv_bits::Bv;

/// One stream item: a value with the time it was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamItem {
    /// The value.
    pub value: Bv,
    /// Production time (SLM time units or RTL cycles).
    pub time: u64,
}

/// A divergence between the expected (SLM) and actual (RTL) streams.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamMismatch {
    /// Values differ at the same in-order position.
    Value {
        /// Stream position.
        index: usize,
        /// SLM value.
        expected: Bv,
        /// RTL value.
        actual: Bv,
    },
    /// Values match but timestamps differ beyond the tolerance.
    Timing {
        /// Stream position.
        index: usize,
        /// SLM time.
        expected_time: u64,
        /// RTL time.
        actual_time: u64,
    },
    /// The RTL produced a value with no matching expectation (by tag, or
    /// trailing extras in ordered modes).
    Unexpected {
        /// The value.
        actual: Bv,
        /// When it appeared.
        time: u64,
    },
    /// The SLM expected a value the RTL never produced.
    Missing {
        /// The value.
        expected: Bv,
    },
    /// An out-of-order match happened beyond the reorder window.
    WindowExceeded {
        /// The value that matched late.
        value: Bv,
        /// How many newer items had already matched.
        distance: usize,
        /// The allowed window.
        window: usize,
    },
    /// End-of-stream reconciliation: a tagged expectation the RTL never
    /// completed (e.g. a dropped transaction).
    Lost {
        /// The expected value (tag included).
        expected: Bv,
        /// Its issue order in the expected stream.
        seq: usize,
    },
    /// A tagged RTL completion with no matching expectation (e.g. a
    /// duplicated transaction).
    Spurious {
        /// The value (tag included).
        actual: Bv,
        /// When it appeared.
        time: u64,
    },
    /// The streams drifted further apart than the max-skew bound allows —
    /// an unbounded stall is a timing violation, not something to absorb
    /// forever.
    SkewExceeded {
        /// Expected items pending (produced by the SLM, unmatched).
        expected_pending: usize,
        /// Actual items pending (produced by the RTL, unmatched).
        actual_pending: usize,
        /// The configured bound.
        bound: usize,
    },
}

impl fmt::Display for StreamMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamMismatch::Value {
                index,
                expected,
                actual,
            } => write!(f, "item {index}: expected {expected}, got {actual}"),
            StreamMismatch::Timing {
                index,
                expected_time,
                actual_time,
            } => write!(
                f,
                "item {index}: timing off (expected t={expected_time}, actual t={actual_time})"
            ),
            StreamMismatch::Unexpected { actual, time } => {
                write!(f, "unexpected {actual} at t={time}")
            }
            StreamMismatch::Missing { expected } => write!(f, "missing {expected}"),
            StreamMismatch::WindowExceeded {
                value,
                distance,
                window,
            } => write!(
                f,
                "{value} matched {distance} items out of order (window {window})"
            ),
            StreamMismatch::Lost { expected, seq } => {
                write!(f, "lost: expectation #{seq} ({expected}) never completed")
            }
            StreamMismatch::Spurious { actual, time } => {
                write!(f, "spurious: {actual} at t={time} matches no expectation")
            }
            StreamMismatch::SkewExceeded {
                expected_pending,
                actual_pending,
                bound,
            } => write!(
                f,
                "skew exceeded: {expected_pending} expected / {actual_pending} actual \
                 pending (bound {bound})"
            ),
        }
    }
}

/// The result of draining a comparator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareReport {
    /// Items that matched.
    pub matched: usize,
    /// All divergences, in detection order.
    pub mismatches: Vec<StreamMismatch>,
}

impl CompareReport {
    /// Whether the streams agreed completely.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Records this report into a recorder: bumps the `cosim.matched` /
    /// `cosim.mismatches` counters and emits one `cosim.mismatch` event
    /// per divergence (in detection order).
    pub fn record_to(&self, rec: &dfv_obs::SharedRecorder) {
        let mut r = rec
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.matched > 0 {
            r.counter_add("cosim.matched", self.matched as u64);
        }
        if !self.mismatches.is_empty() {
            r.counter_add("cosim.mismatches", self.mismatches.len() as u64);
        }
        for m in &self.mismatches {
            r.event("cosim.mismatch", m.to_string());
        }
    }
}

/// A comparator consuming an expected (SLM) and an actual (RTL) stream.
pub trait Comparator {
    /// Feeds one expected item.
    fn push_expected(&mut self, item: StreamItem);
    /// Feeds one actual item.
    fn push_actual(&mut self, item: StreamItem);
    /// Finishes both streams and reports.
    fn finish(&mut self) -> CompareReport;
}

/// Exact compare: position, value, and timestamp must all agree.
#[derive(Debug, Default)]
pub struct ExactComparator {
    inner: InOrderComparator,
}

impl ExactComparator {
    /// Creates an exact comparator.
    pub fn new() -> Self {
        ExactComparator {
            inner: InOrderComparator::new(0),
        }
    }
}

impl Comparator for ExactComparator {
    fn push_expected(&mut self, item: StreamItem) {
        self.inner.push_expected(item);
    }

    fn push_actual(&mut self, item: StreamItem) {
        self.inner.push_actual(item);
    }

    fn finish(&mut self) -> CompareReport {
        self.inner.finish()
    }
}

/// In-order compare with a timestamp tolerance. `tolerance = u64::MAX`
/// ignores time entirely (pure value-stream comparison — the right mode for
/// an untimed SLM against stalling RTL).
#[derive(Debug)]
pub struct InOrderComparator {
    tolerance: u64,
    max_skew: Option<usize>,
    skew_flagged: bool,
    expected: VecDeque<StreamItem>,
    actual: VecDeque<StreamItem>,
    report: CompareReport,
    index: usize,
}

impl Default for InOrderComparator {
    fn default() -> Self {
        InOrderComparator::new(u64::MAX)
    }
}

impl InOrderComparator {
    /// Creates a comparator allowing timestamps to differ by up to
    /// `tolerance`.
    pub fn new(tolerance: u64) -> Self {
        InOrderComparator {
            tolerance,
            max_skew: None,
            skew_flagged: false,
            expected: VecDeque::new(),
            actual: VecDeque::new(),
            report: CompareReport::default(),
            index: 0,
        }
    }

    /// Bounds how far one stream may run ahead of the other (in pending
    /// items). Beyond the bound a [`StreamMismatch::SkewExceeded`] is
    /// flagged once per excursion — so an injected stall surfaces as a
    /// timing violation instead of being absorbed forever.
    pub fn with_max_skew(mut self, bound: usize) -> Self {
        self.max_skew = Some(bound);
        self
    }

    fn check_skew(&mut self) {
        let Some(bound) = self.max_skew else { return };
        // After draining, at most one queue is non-empty: its depth is the
        // current skew between the streams.
        let skew = self.expected.len().max(self.actual.len());
        if skew > bound {
            if !self.skew_flagged {
                self.skew_flagged = true;
                self.report.mismatches.push(StreamMismatch::SkewExceeded {
                    expected_pending: self.expected.len(),
                    actual_pending: self.actual.len(),
                    bound,
                });
            }
        } else {
            self.skew_flagged = false;
        }
    }

    fn drain_pairs(&mut self) {
        while let (Some(e), Some(a)) = (self.expected.front(), self.actual.front()) {
            let (e, a) = (e.clone(), a.clone());
            self.expected.pop_front();
            self.actual.pop_front();
            if e.value != a.value {
                self.report.mismatches.push(StreamMismatch::Value {
                    index: self.index,
                    expected: e.value,
                    actual: a.value,
                });
            } else if self.tolerance != u64::MAX && e.time.abs_diff(a.time) > self.tolerance {
                self.report.mismatches.push(StreamMismatch::Timing {
                    index: self.index,
                    expected_time: e.time,
                    actual_time: a.time,
                });
            } else {
                self.report.matched += 1;
            }
            self.index += 1;
        }
    }
}

impl Comparator for InOrderComparator {
    fn push_expected(&mut self, item: StreamItem) {
        self.expected.push_back(item);
        self.drain_pairs();
        self.check_skew();
    }

    fn push_actual(&mut self, item: StreamItem) {
        self.actual.push_back(item);
        self.drain_pairs();
        self.check_skew();
    }

    fn finish(&mut self) -> CompareReport {
        self.drain_pairs();
        for e in self.expected.drain(..) {
            self.report
                .mismatches
                .push(StreamMismatch::Missing { expected: e.value });
        }
        for a in self.actual.drain(..) {
            self.report.mismatches.push(StreamMismatch::Unexpected {
                actual: a.value,
                time: a.time,
            });
        }
        self.index = 0;
        self.skew_flagged = false;
        std::mem::take(&mut self.report)
    }
}

/// Out-of-order compare: items carry a tag (extracted by a caller-supplied
/// bit range) and match by tag. A match is flagged if it completes more
/// than `window` positions later than its in-order slot.
///
/// A completion arriving before its expectation (possible when streams
/// are replayed chronologically and the interface reorders) is buffered
/// until the expectation shows up, as an online scoreboard would.
///
/// Never panics on malformed streams: tag ranges are clamped to each
/// value's width, and [`OutOfOrderComparator::finish`] reconciles every
/// pending tag — unmatched expectations become [`StreamMismatch::Lost`],
/// unmatched completions [`StreamMismatch::Spurious`] — so a dropped or
/// duplicated transaction can never silently pass.
pub struct OutOfOrderComparator {
    tag_hi: u32,
    tag_lo: u32,
    window: usize,
    max_skew: Option<usize>,
    skew_flagged: bool,
    /// Expected items with their arrival order, still unmatched.
    expected: Vec<(usize, StreamItem)>,
    /// Completions that arrived before any matching expectation.
    pending_actual: Vec<StreamItem>,
    next_expected_seq: usize,
    matched_seqs: Vec<usize>,
    report: CompareReport,
}

impl OutOfOrderComparator {
    /// Creates an out-of-order comparator matching on `value[tag_hi:tag_lo]`
    /// with the given reorder window. A reversed tag range is normalized
    /// rather than trusted.
    pub fn new(tag_hi: u32, tag_lo: u32, window: usize) -> Self {
        OutOfOrderComparator {
            tag_hi: tag_hi.max(tag_lo),
            tag_lo: tag_hi.min(tag_lo),
            window,
            max_skew: None,
            skew_flagged: false,
            expected: Vec::new(),
            pending_actual: Vec::new(),
            next_expected_seq: 0,
            matched_seqs: Vec::new(),
            report: CompareReport::default(),
        }
    }

    /// Bounds how many expectations may sit unmatched at once. Beyond the
    /// bound a [`StreamMismatch::SkewExceeded`] is flagged once per
    /// excursion — an interface stalled forever stops being "still in
    /// flight" and becomes a detected timing violation.
    pub fn with_max_skew(mut self, bound: usize) -> Self {
        self.max_skew = Some(bound);
        self
    }

    fn tag(&self, v: &Bv) -> Bv {
        // Clamp to the value's width so malformed (narrow) stream items
        // degrade to prefix-tag matching instead of panicking.
        v.slice(
            self.tag_hi.min(v.width() - 1),
            self.tag_lo.min(v.width() - 1),
        )
    }

    fn check_skew(&mut self) {
        let Some(bound) = self.max_skew else { return };
        let skew = self.expected.len().max(self.pending_actual.len());
        if skew > bound {
            if !self.skew_flagged {
                self.skew_flagged = true;
                self.report.mismatches.push(StreamMismatch::SkewExceeded {
                    expected_pending: self.expected.len(),
                    actual_pending: self.pending_actual.len(),
                    bound,
                });
            }
        } else {
            self.skew_flagged = false;
        }
    }

    /// Pairs a completion with its expectation: value compare, then
    /// reorder-window check against how many later-issued transactions
    /// already matched.
    fn resolve(&mut self, seq: usize, expected: StreamItem, actual: StreamItem) {
        if expected.value != actual.value {
            self.report.mismatches.push(StreamMismatch::Value {
                index: seq,
                expected: expected.value,
                actual: actual.value,
            });
            return;
        }
        let distance = self.matched_seqs.iter().filter(|&&m| m > seq).count();
        if distance > self.window {
            self.report.mismatches.push(StreamMismatch::WindowExceeded {
                value: actual.value,
                distance,
                window: self.window,
            });
        } else {
            self.report.matched += 1;
        }
        self.matched_seqs.push(seq);
    }
}

impl Comparator for OutOfOrderComparator {
    fn push_expected(&mut self, item: StreamItem) {
        let seq = self.next_expected_seq;
        self.next_expected_seq += 1;
        let tag = self.tag(&item.value);
        // A completion may have arrived early (reordered interface): pair
        // it now.
        match self
            .pending_actual
            .iter()
            .position(|a| self.tag(&a.value) == tag)
        {
            Some(pos) => {
                let a = self.pending_actual.remove(pos);
                self.resolve(seq, item, a);
            }
            None => self.expected.push((seq, item)),
        }
        self.check_skew();
    }

    fn push_actual(&mut self, item: StreamItem) {
        let tag = self.tag(&item.value);
        match self
            .expected
            .iter()
            .position(|(_, e)| self.tag(&e.value) == tag)
        {
            Some(pos) => {
                let (seq, e) = self.expected.remove(pos);
                self.resolve(seq, e, item);
            }
            // No expectation yet: buffer, reconcile on expectation arrival
            // or at end of stream.
            None => self.pending_actual.push(item),
        }
        self.check_skew();
    }

    fn finish(&mut self) -> CompareReport {
        // End-of-stream reconciliation: every expectation still pending is
        // a transaction the RTL lost (reported with its issue order), and
        // every completion still pending matched no expectation at all.
        for (seq, e) in self.expected.drain(..) {
            self.report.mismatches.push(StreamMismatch::Lost {
                expected: e.value,
                seq,
            });
        }
        for a in self.pending_actual.drain(..) {
            self.report.mismatches.push(StreamMismatch::Spurious {
                actual: a.value,
                time: a.time,
            });
        }
        self.matched_seqs.clear();
        self.next_expected_seq = 0;
        self.skew_flagged = false;
        std::mem::take(&mut self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(v: u64, t: u64) -> StreamItem {
        StreamItem {
            value: Bv::from_u64(16, v),
            time: t,
        }
    }

    #[test]
    fn exact_match_passes() {
        let mut c = ExactComparator::new();
        for i in 0..5 {
            c.push_expected(item(i, i));
            c.push_actual(item(i, i));
        }
        let r = c.finish();
        assert!(r.is_clean());
        assert_eq!(r.matched, 5);
    }

    #[test]
    fn exact_flags_latency_shift() {
        // The canonical §3.2 situation: same values, RTL delayed 2 cycles.
        let mut c = ExactComparator::new();
        for i in 0..3 {
            c.push_expected(item(i, i));
            c.push_actual(item(i, i + 2));
        }
        let r = c.finish();
        assert_eq!(r.matched, 0);
        assert_eq!(r.mismatches.len(), 3);
        assert!(matches!(r.mismatches[0], StreamMismatch::Timing { .. }));
    }

    #[test]
    fn tolerant_absorbs_latency_shift() {
        let mut c = InOrderComparator::new(2);
        for i in 0..3 {
            c.push_expected(item(i, i));
            c.push_actual(item(i, i + 2));
        }
        assert!(c.finish().is_clean());
        // But not beyond the tolerance.
        let mut c = InOrderComparator::new(1);
        c.push_expected(item(7, 0));
        c.push_actual(item(7, 5));
        assert!(!c.finish().is_clean());
    }

    #[test]
    fn untimed_mode_ignores_time() {
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_expected(item(2, 0));
        c.push_actual(item(1, 100));
        c.push_actual(item(2, 999));
        assert!(c.finish().is_clean());
    }

    #[test]
    fn value_mismatch_detected_in_any_mode() {
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_actual(item(9, 0));
        let r = c.finish();
        assert!(matches!(
            r.mismatches[0],
            StreamMismatch::Value { index: 0, .. }
        ));
    }

    #[test]
    fn missing_and_unexpected_reported() {
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_expected(item(2, 0));
        c.push_actual(item(1, 0));
        let r = c.finish();
        assert_eq!(r.matched, 1);
        assert!(matches!(r.mismatches[0], StreamMismatch::Missing { .. }));

        let mut c = InOrderComparator::default();
        c.push_actual(item(3, 7));
        let r = c.finish();
        assert!(matches!(r.mismatches[0], StreamMismatch::Unexpected { .. }));
    }

    #[test]
    fn out_of_order_matches_by_tag() {
        // Value layout: tag in [15:12], payload below.
        let mk = |tag: u64, payload: u64, t: u64| item(tag << 12 | payload, t);
        let mut c = OutOfOrderComparator::new(15, 12, 4);
        c.push_expected(mk(0, 0xA, 0));
        c.push_expected(mk(1, 0xB, 1));
        c.push_expected(mk(2, 0xC, 2));
        // RTL completes 2, 0, 1 (a cache hit overtaking two misses).
        c.push_actual(mk(2, 0xC, 10));
        c.push_actual(mk(0, 0xA, 11));
        c.push_actual(mk(1, 0xB, 12));
        let r = c.finish();
        assert!(r.is_clean(), "{:?}", r.mismatches);
        assert_eq!(r.matched, 3);
    }

    #[test]
    fn out_of_order_payload_mismatch_detected() {
        let mk = |tag: u64, payload: u64| item(tag << 12 | payload, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 4);
        c.push_expected(mk(5, 0xA));
        c.push_actual(mk(5, 0xB));
        let r = c.finish();
        assert!(matches!(r.mismatches[0], StreamMismatch::Value { .. }));
    }

    /// Satellite regression: a transaction dropped by the interface must
    /// surface as `Lost` (with its issue order) at end-of-stream
    /// reconciliation — never a silent pass.
    #[test]
    fn dropped_transaction_reported_lost_at_finish() {
        let mk = |tag: u64, payload: u64| item(tag << 12 | payload, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 4);
        c.push_expected(mk(0, 0xA));
        c.push_expected(mk(1, 0xB));
        c.push_expected(mk(2, 0xC));
        // The interface dropped tag 1: only tags 2 and 0 complete.
        c.push_actual(mk(2, 0xC));
        c.push_actual(mk(0, 0xA));
        let r = c.finish();
        assert_eq!(r.matched, 2);
        assert_eq!(r.mismatches.len(), 1);
        let StreamMismatch::Lost { expected, seq } = &r.mismatches[0] else {
            panic!("expected Lost, got {:?}", r.mismatches[0]);
        };
        assert_eq!(*seq, 1, "provenance: the second issued transaction");
        assert_eq!(expected.to_u64() >> 12, 1);

        // The comparator is reusable after reconciliation.
        c.push_expected(mk(3, 0xD));
        c.push_actual(mk(3, 0xD));
        assert!(c.finish().is_clean());
    }

    #[test]
    fn duplicated_transaction_reported_spurious() {
        let mk = |tag: u64, payload: u64| item(tag << 12 | payload, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 4);
        c.push_expected(mk(5, 0xA));
        c.push_actual(mk(5, 0xA));
        c.push_actual(mk(5, 0xA)); // duplicate completion
        let r = c.finish();
        assert_eq!(r.matched, 1);
        assert!(matches!(r.mismatches[0], StreamMismatch::Spurious { .. }));
    }

    #[test]
    fn max_skew_flags_unbounded_stall_in_order() {
        // Untimed mode absorbs any latency — unless a skew bound is set.
        let mut c = InOrderComparator::default().with_max_skew(2);
        for i in 0..5 {
            c.push_expected(item(i, i));
        }
        // The RTL has produced nothing: 5 pending > bound 2.
        let r = c.finish();
        assert!(
            r.mismatches
                .iter()
                .any(|m| matches!(m, StreamMismatch::SkewExceeded { bound: 2, .. })),
            "{:?}",
            r.mismatches
        );
        // One flag per excursion, not one per item.
        assert_eq!(
            r.mismatches
                .iter()
                .filter(|m| matches!(m, StreamMismatch::SkewExceeded { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn max_skew_flags_stalled_out_of_order_stream() {
        let mk = |tag: u64| item(tag << 12, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 8).with_max_skew(3);
        for t in 0..6 {
            c.push_expected(mk(t));
        }
        let r = c.finish();
        assert!(r
            .mismatches
            .iter()
            .any(|m| matches!(m, StreamMismatch::SkewExceeded { bound: 3, .. })));
    }

    #[test]
    fn skew_within_bound_stays_clean() {
        let mut c = InOrderComparator::default().with_max_skew(8);
        for i in 0..5 {
            c.push_expected(item(i, i));
        }
        for i in 0..5 {
            c.push_actual(item(i, i + 100));
        }
        assert!(c.finish().is_clean());
    }

    #[test]
    fn malformed_streams_never_panic() {
        // Narrow values against a wide tag range: clamped, not a panic.
        let mut c = OutOfOrderComparator::new(40, 32, 2);
        c.push_expected(item(3, 0));
        c.push_actual(StreamItem {
            value: Bv::from_u64(1, 1),
            time: 0,
        });
        let _ = c.finish();

        // Reversed tag range is normalized.
        let mut c = OutOfOrderComparator::new(2, 9, 1);
        c.push_expected(item(0x3FF, 0));
        c.push_actual(item(0x3FF, 1));
        assert!(c.finish().is_clean());

        // Width-mismatched values compare unequal, not UB/panic.
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_actual(StreamItem {
            value: Bv::from_u64(64, 1),
            time: 0,
        });
        let r = c.finish();
        assert!(matches!(r.mismatches[0], StreamMismatch::Value { .. }));
    }

    #[test]
    fn out_of_order_window_enforced() {
        let mk = |tag: u64| item(tag << 12, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 1);
        for t in 0..4 {
            c.push_expected(mk(t));
        }
        // Tag 0 completes after 3 later tags: distance 3 > window 1.
        c.push_actual(mk(1));
        c.push_actual(mk(2));
        c.push_actual(mk(3));
        c.push_actual(mk(0));
        let r = c.finish();
        assert_eq!(r.matched, 3);
        assert!(matches!(
            r.mismatches[0],
            StreamMismatch::WindowExceeded { distance: 3, .. }
        ));
    }
}
