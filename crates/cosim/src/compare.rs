//! Output comparators: aligning SLM and RTL output streams.
//!
//! The paper's §2/§3.2: "temporal differences between when the SLM and
//! wrapped-RTL produce outputs means that the procedure that compares the
//! SLM outputs with RTL outputs needs to account for the timing
//! differences", and stalls can even reorder outputs, requiring
//! "complicated transactors". These comparators implement the three
//! alignment policies:
//!
//! * [`ExactComparator`] — value *and* timestamp must match (only works for
//!   cycle-accurate SLMs);
//! * [`InOrderComparator`] — values must match in order, timestamps may
//!   differ by up to a tolerance (latency-shifted streams);
//! * [`OutOfOrderComparator`] — values match by a tag within a reorder
//!   window (tagged out-of-order completion, e.g. a cache hit overtaking a
//!   miss).

use std::collections::VecDeque;
use std::fmt;

use dfv_bits::Bv;

/// One stream item: a value with the time it was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamItem {
    /// The value.
    pub value: Bv,
    /// Production time (SLM time units or RTL cycles).
    pub time: u64,
}

/// A divergence between the expected (SLM) and actual (RTL) streams.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamMismatch {
    /// Values differ at the same in-order position.
    Value {
        /// Stream position.
        index: usize,
        /// SLM value.
        expected: Bv,
        /// RTL value.
        actual: Bv,
    },
    /// Values match but timestamps differ beyond the tolerance.
    Timing {
        /// Stream position.
        index: usize,
        /// SLM time.
        expected_time: u64,
        /// RTL time.
        actual_time: u64,
    },
    /// The RTL produced a value with no matching expectation (by tag, or
    /// trailing extras in ordered modes).
    Unexpected {
        /// The value.
        actual: Bv,
        /// When it appeared.
        time: u64,
    },
    /// The SLM expected a value the RTL never produced.
    Missing {
        /// The value.
        expected: Bv,
    },
    /// An out-of-order match happened beyond the reorder window.
    WindowExceeded {
        /// The value that matched late.
        value: Bv,
        /// How many newer items had already matched.
        distance: usize,
        /// The allowed window.
        window: usize,
    },
}

impl fmt::Display for StreamMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamMismatch::Value {
                index,
                expected,
                actual,
            } => write!(f, "item {index}: expected {expected}, got {actual}"),
            StreamMismatch::Timing {
                index,
                expected_time,
                actual_time,
            } => write!(
                f,
                "item {index}: timing off (expected t={expected_time}, actual t={actual_time})"
            ),
            StreamMismatch::Unexpected { actual, time } => {
                write!(f, "unexpected {actual} at t={time}")
            }
            StreamMismatch::Missing { expected } => write!(f, "missing {expected}"),
            StreamMismatch::WindowExceeded {
                value,
                distance,
                window,
            } => write!(
                f,
                "{value} matched {distance} items out of order (window {window})"
            ),
        }
    }
}

/// The result of draining a comparator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompareReport {
    /// Items that matched.
    pub matched: usize,
    /// All divergences, in detection order.
    pub mismatches: Vec<StreamMismatch>,
}

impl CompareReport {
    /// Whether the streams agreed completely.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// A comparator consuming an expected (SLM) and an actual (RTL) stream.
pub trait Comparator {
    /// Feeds one expected item.
    fn push_expected(&mut self, item: StreamItem);
    /// Feeds one actual item.
    fn push_actual(&mut self, item: StreamItem);
    /// Finishes both streams and reports.
    fn finish(&mut self) -> CompareReport;
}

/// Exact compare: position, value, and timestamp must all agree.
#[derive(Debug, Default)]
pub struct ExactComparator {
    inner: InOrderComparator,
}

impl ExactComparator {
    /// Creates an exact comparator.
    pub fn new() -> Self {
        ExactComparator {
            inner: InOrderComparator::new(0),
        }
    }
}

impl Comparator for ExactComparator {
    fn push_expected(&mut self, item: StreamItem) {
        self.inner.push_expected(item);
    }

    fn push_actual(&mut self, item: StreamItem) {
        self.inner.push_actual(item);
    }

    fn finish(&mut self) -> CompareReport {
        self.inner.finish()
    }
}

/// In-order compare with a timestamp tolerance. `tolerance = u64::MAX`
/// ignores time entirely (pure value-stream comparison — the right mode for
/// an untimed SLM against stalling RTL).
#[derive(Debug)]
pub struct InOrderComparator {
    tolerance: u64,
    expected: VecDeque<StreamItem>,
    actual: VecDeque<StreamItem>,
    report: CompareReport,
    index: usize,
}

impl Default for InOrderComparator {
    fn default() -> Self {
        InOrderComparator::new(u64::MAX)
    }
}

impl InOrderComparator {
    /// Creates a comparator allowing timestamps to differ by up to
    /// `tolerance`.
    pub fn new(tolerance: u64) -> Self {
        InOrderComparator {
            tolerance,
            expected: VecDeque::new(),
            actual: VecDeque::new(),
            report: CompareReport::default(),
            index: 0,
        }
    }

    fn drain_pairs(&mut self) {
        while let (Some(e), Some(a)) = (self.expected.front(), self.actual.front()) {
            let (e, a) = (e.clone(), a.clone());
            self.expected.pop_front();
            self.actual.pop_front();
            if e.value != a.value {
                self.report.mismatches.push(StreamMismatch::Value {
                    index: self.index,
                    expected: e.value,
                    actual: a.value,
                });
            } else if self.tolerance != u64::MAX && e.time.abs_diff(a.time) > self.tolerance {
                self.report.mismatches.push(StreamMismatch::Timing {
                    index: self.index,
                    expected_time: e.time,
                    actual_time: a.time,
                });
            } else {
                self.report.matched += 1;
            }
            self.index += 1;
        }
    }
}

impl Comparator for InOrderComparator {
    fn push_expected(&mut self, item: StreamItem) {
        self.expected.push_back(item);
        self.drain_pairs();
    }

    fn push_actual(&mut self, item: StreamItem) {
        self.actual.push_back(item);
        self.drain_pairs();
    }

    fn finish(&mut self) -> CompareReport {
        self.drain_pairs();
        for e in self.expected.drain(..) {
            self.report
                .mismatches
                .push(StreamMismatch::Missing { expected: e.value });
        }
        for a in self.actual.drain(..) {
            self.report.mismatches.push(StreamMismatch::Unexpected {
                actual: a.value,
                time: a.time,
            });
        }
        std::mem::take(&mut self.report)
    }
}

/// Out-of-order compare: items carry a tag (extracted by a caller-supplied
/// bit range) and match by tag. A match is flagged if it completes more
/// than `window` positions later than its in-order slot.
pub struct OutOfOrderComparator {
    tag_hi: u32,
    tag_lo: u32,
    window: usize,
    /// Expected items with their arrival order, still unmatched.
    expected: Vec<(usize, StreamItem)>,
    next_expected_seq: usize,
    matched_seqs: Vec<usize>,
    report: CompareReport,
}

impl OutOfOrderComparator {
    /// Creates an out-of-order comparator matching on `value[tag_hi:tag_lo]`
    /// with the given reorder window.
    pub fn new(tag_hi: u32, tag_lo: u32, window: usize) -> Self {
        OutOfOrderComparator {
            tag_hi,
            tag_lo,
            window,
            expected: Vec::new(),
            next_expected_seq: 0,
            matched_seqs: Vec::new(),
            report: CompareReport::default(),
        }
    }

    fn tag(&self, v: &Bv) -> Bv {
        v.slice(
            self.tag_hi.min(v.width() - 1),
            self.tag_lo.min(v.width() - 1),
        )
    }
}

impl Comparator for OutOfOrderComparator {
    fn push_expected(&mut self, item: StreamItem) {
        let seq = self.next_expected_seq;
        self.next_expected_seq += 1;
        self.expected.push((seq, item));
    }

    fn push_actual(&mut self, item: StreamItem) {
        let tag = self.tag(&item.value);
        match self
            .expected
            .iter()
            .position(|(_, e)| self.tag(&e.value) == tag)
        {
            Some(pos) => {
                let (seq, e) = self.expected.remove(pos);
                if e.value != item.value {
                    self.report.mismatches.push(StreamMismatch::Value {
                        index: seq,
                        expected: e.value,
                        actual: item.value,
                    });
                    return;
                }
                // Reorder distance: how many later-sequenced items matched
                // before this one.
                let distance = self.matched_seqs.iter().filter(|&&m| m > seq).count();
                if distance > self.window {
                    self.report.mismatches.push(StreamMismatch::WindowExceeded {
                        value: item.value,
                        distance,
                        window: self.window,
                    });
                } else {
                    self.report.matched += 1;
                }
                self.matched_seqs.push(seq);
            }
            None => self.report.mismatches.push(StreamMismatch::Unexpected {
                actual: item.value,
                time: item.time,
            }),
        }
    }

    fn finish(&mut self) -> CompareReport {
        for (_, e) in self.expected.drain(..) {
            self.report
                .mismatches
                .push(StreamMismatch::Missing { expected: e.value });
        }
        self.matched_seqs.clear();
        self.next_expected_seq = 0;
        std::mem::take(&mut self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(v: u64, t: u64) -> StreamItem {
        StreamItem {
            value: Bv::from_u64(16, v),
            time: t,
        }
    }

    #[test]
    fn exact_match_passes() {
        let mut c = ExactComparator::new();
        for i in 0..5 {
            c.push_expected(item(i, i));
            c.push_actual(item(i, i));
        }
        let r = c.finish();
        assert!(r.is_clean());
        assert_eq!(r.matched, 5);
    }

    #[test]
    fn exact_flags_latency_shift() {
        // The canonical §3.2 situation: same values, RTL delayed 2 cycles.
        let mut c = ExactComparator::new();
        for i in 0..3 {
            c.push_expected(item(i, i));
            c.push_actual(item(i, i + 2));
        }
        let r = c.finish();
        assert_eq!(r.matched, 0);
        assert_eq!(r.mismatches.len(), 3);
        assert!(matches!(r.mismatches[0], StreamMismatch::Timing { .. }));
    }

    #[test]
    fn tolerant_absorbs_latency_shift() {
        let mut c = InOrderComparator::new(2);
        for i in 0..3 {
            c.push_expected(item(i, i));
            c.push_actual(item(i, i + 2));
        }
        assert!(c.finish().is_clean());
        // But not beyond the tolerance.
        let mut c = InOrderComparator::new(1);
        c.push_expected(item(7, 0));
        c.push_actual(item(7, 5));
        assert!(!c.finish().is_clean());
    }

    #[test]
    fn untimed_mode_ignores_time() {
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_expected(item(2, 0));
        c.push_actual(item(1, 100));
        c.push_actual(item(2, 999));
        assert!(c.finish().is_clean());
    }

    #[test]
    fn value_mismatch_detected_in_any_mode() {
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_actual(item(9, 0));
        let r = c.finish();
        assert!(matches!(
            r.mismatches[0],
            StreamMismatch::Value { index: 0, .. }
        ));
    }

    #[test]
    fn missing_and_unexpected_reported() {
        let mut c = InOrderComparator::default();
        c.push_expected(item(1, 0));
        c.push_expected(item(2, 0));
        c.push_actual(item(1, 0));
        let r = c.finish();
        assert_eq!(r.matched, 1);
        assert!(matches!(r.mismatches[0], StreamMismatch::Missing { .. }));

        let mut c = InOrderComparator::default();
        c.push_actual(item(3, 7));
        let r = c.finish();
        assert!(matches!(r.mismatches[0], StreamMismatch::Unexpected { .. }));
    }

    #[test]
    fn out_of_order_matches_by_tag() {
        // Value layout: tag in [15:12], payload below.
        let mk = |tag: u64, payload: u64, t: u64| item(tag << 12 | payload, t);
        let mut c = OutOfOrderComparator::new(15, 12, 4);
        c.push_expected(mk(0, 0xA, 0));
        c.push_expected(mk(1, 0xB, 1));
        c.push_expected(mk(2, 0xC, 2));
        // RTL completes 2, 0, 1 (a cache hit overtaking two misses).
        c.push_actual(mk(2, 0xC, 10));
        c.push_actual(mk(0, 0xA, 11));
        c.push_actual(mk(1, 0xB, 12));
        let r = c.finish();
        assert!(r.is_clean(), "{:?}", r.mismatches);
        assert_eq!(r.matched, 3);
    }

    #[test]
    fn out_of_order_payload_mismatch_detected() {
        let mk = |tag: u64, payload: u64| item(tag << 12 | payload, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 4);
        c.push_expected(mk(5, 0xA));
        c.push_actual(mk(5, 0xB));
        let r = c.finish();
        assert!(matches!(r.mismatches[0], StreamMismatch::Value { .. }));
    }

    #[test]
    fn out_of_order_window_enforced() {
        let mk = |tag: u64| item(tag << 12, 0);
        let mut c = OutOfOrderComparator::new(15, 12, 1);
        for t in 0..4 {
            c.push_expected(mk(t));
        }
        // Tag 0 completes after 3 later tags: distance 3 > window 1.
        c.push_actual(mk(1));
        c.push_actual(mk(2));
        c.push_actual(mk(3));
        c.push_actual(mk(0));
        let r = c.finish();
        assert_eq!(r.matched, 3);
        assert!(matches!(
            r.mismatches[0],
            StreamMismatch::WindowExceeded { distance: 3, .. }
        ));
    }
}
