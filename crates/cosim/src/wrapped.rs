//! The wrapped-RTL: an RTL simulator behind transaction-level transactors.
//!
//! The paper's §2: "the actual RTL can be instantiated in another top-level
//! hierarchy that places transactors at the RTL inputs and outputs so that
//! the SLM input stimulus can be used for RTL simulation. The RTL with
//! transactors is called the wrapped-RTL."

use std::collections::HashMap;

use dfv_bits::Bv;
use dfv_obs::{ObsHook, SharedRecorder};
use dfv_rtl::{Module, RtlError, Simulator};

/// A transaction: named SLM-level values (whole arrays as packed words).
pub type Transaction = HashMap<String, Bv>;

/// Drives RTL input ports from an SLM-level transaction, possibly over many
/// cycles (serialization).
pub trait InputTransactor {
    /// Loads one transaction to be driven.
    fn load(&mut self, txn: &Transaction);
    /// Applies this cycle's input values; returns `false` once the
    /// transaction has been fully driven (idle values still applied).
    fn drive(&mut self, sim: &mut Simulator) -> bool;
}

/// Samples RTL output ports, reassembling SLM-level outputs, possibly over
/// many cycles (deserialization).
pub trait OutputTransactor {
    /// Samples the current cycle (called after combinational evaluation,
    /// before the clock edge). Completed SLM-level outputs are appended to
    /// `out` as `(name, value, cycle)`.
    fn sample(&mut self, sim: &mut Simulator, cycle: u64, out: &mut Vec<(String, Bv, u64)>);
    /// Whether all expected outputs for the loaded transaction have been
    /// collected.
    fn done(&self) -> bool;
    /// Resets per-transaction state.
    fn begin_transaction(&mut self);
}

/// A parallel (single-cycle) driver: each mapped transaction field is
/// applied to its port on the first cycle and held; unmapped cycles drive
/// the configured idle value.
#[derive(Debug, Clone, Default)]
pub struct DirectDriver {
    /// `(txn field, rtl port)` pairs.
    map: Vec<(String, String)>,
    pending: Option<Transaction>,
    hold: bool,
}

impl DirectDriver {
    /// Creates a driver that applies fields once and holds them.
    pub fn new() -> Self {
        DirectDriver {
            map: Vec::new(),
            pending: None,
            hold: true,
        }
    }

    /// Maps a transaction field to an RTL input port.
    pub fn map(mut self, field: &str, port: &str) -> Self {
        self.map.push((field.into(), port.into()));
        self
    }
}

impl InputTransactor for DirectDriver {
    fn load(&mut self, txn: &Transaction) {
        self.pending = Some(txn.clone());
    }

    fn drive(&mut self, sim: &mut Simulator) -> bool {
        if let Some(txn) = self.pending.take() {
            for (field, port) in &self.map {
                sim.poke(port, txn[field].clone());
            }
            return self.hold;
        }
        false
    }
}

/// A serializing driver: splits one wide transaction field into fixed-width
/// beats driven LSB-first on a data port with a valid strobe — the paper's
/// "the SLM ... may read in the entire image as a single array of pixels
/// while the RTL reads it as a stream of pixels" (§3.2). Honors an optional
/// ready (back-pressure) output from the DUT.
#[derive(Debug, Clone)]
pub struct SerialDriver {
    field: String,
    data_port: String,
    valid_port: String,
    ready_port: Option<String>,
    beat_width: u32,
    beats: Vec<Bv>,
    next: usize,
}

impl SerialDriver {
    /// Creates a serializer for `field`, driving `data_port` +
    /// `valid_port`, `beat_width` bits per cycle.
    pub fn new(field: &str, data_port: &str, valid_port: &str, beat_width: u32) -> Self {
        SerialDriver {
            field: field.into(),
            data_port: data_port.into(),
            valid_port: valid_port.into(),
            ready_port: None,
            beat_width,
            beats: Vec::new(),
            next: 0,
        }
    }

    /// Respects a ready output port: beats advance only when it is high.
    pub fn with_ready(mut self, ready_port: &str) -> Self {
        self.ready_port = Some(ready_port.into());
        self
    }
}

impl InputTransactor for SerialDriver {
    fn load(&mut self, txn: &Transaction) {
        let wide = &txn[&self.field];
        assert_eq!(
            wide.width() % self.beat_width,
            0,
            "field {:?} width {} is not a multiple of beat width {}",
            self.field,
            wide.width(),
            self.beat_width
        );
        self.beats = (0..wide.width() / self.beat_width)
            .map(|i| wide.slice((i + 1) * self.beat_width - 1, i * self.beat_width))
            .collect();
        self.next = 0;
    }

    fn drive(&mut self, sim: &mut Simulator) -> bool {
        if self.next >= self.beats.len() {
            sim.poke(&self.valid_port, Bv::from_bool(false));
            sim.poke(&self.data_port, Bv::zero(self.beat_width));
            return false;
        }
        sim.poke(&self.valid_port, Bv::from_bool(true));
        sim.poke(&self.data_port, self.beats[self.next].clone());
        // Advance unless the DUT is stalling us.
        let advance = match &self.ready_port {
            Some(rp) => {
                let port = rp.clone();
                sim.output(&port).bit(0)
            }
            None => true,
        };
        if advance {
            self.next += 1;
        }
        true
    }
}

/// Samples one output port on a fixed cycle (parallel collection).
#[derive(Debug, Clone)]
pub struct FixedCycleMonitor {
    port: String,
    cycle: u64,
    collected: bool,
}

impl FixedCycleMonitor {
    /// Samples `port` on the given cycle (counted from transaction start).
    pub fn new(port: &str, cycle: u64) -> Self {
        FixedCycleMonitor {
            port: port.into(),
            cycle,
            collected: false,
        }
    }
}

impl OutputTransactor for FixedCycleMonitor {
    fn sample(&mut self, sim: &mut Simulator, cycle: u64, out: &mut Vec<(String, Bv, u64)>) {
        if cycle == self.cycle && !self.collected {
            let v = sim.output(&self.port);
            out.push((self.port.clone(), v, cycle));
            self.collected = true;
        }
    }

    fn done(&self) -> bool {
        self.collected
    }

    fn begin_transaction(&mut self) {
        self.collected = false;
    }
}

/// Deserializes a stream: collects `beats` values from a data port when a
/// valid port is high, reassembling them LSB-first into one wide value.
#[derive(Debug, Clone)]
pub struct SerialCollector {
    name: String,
    data_port: String,
    valid_port: String,
    beats: usize,
    collected: Vec<Bv>,
    emitted: bool,
}

impl SerialCollector {
    /// Creates a collector producing SLM-level output `name` from `beats`
    /// beats of `data_port` gated by `valid_port`.
    pub fn new(name: &str, data_port: &str, valid_port: &str, beats: usize) -> Self {
        SerialCollector {
            name: name.into(),
            data_port: data_port.into(),
            valid_port: valid_port.into(),
            beats,
            collected: Vec::new(),
            emitted: false,
        }
    }
}

impl OutputTransactor for SerialCollector {
    fn sample(&mut self, sim: &mut Simulator, cycle: u64, out: &mut Vec<(String, Bv, u64)>) {
        if self.emitted {
            return;
        }
        let valid_port = self.valid_port.clone();
        if sim.output(&valid_port).bit(0) {
            let data_port = self.data_port.clone();
            self.collected.push(sim.output(&data_port));
            if self.collected.len() == self.beats {
                let mut packed = self.collected[0].clone();
                for b in &self.collected[1..] {
                    packed = b.concat(&packed);
                }
                out.push((self.name.clone(), packed, cycle));
                self.emitted = true;
            }
        }
    }

    fn done(&self) -> bool {
        self.emitted
    }

    fn begin_transaction(&mut self) {
        self.collected.clear();
        self.emitted = false;
    }
}

/// The wrapped-RTL: a cycle simulator plus input/output transactors,
/// exposing a transaction-level `run_transaction` API.
pub struct WrappedRtl {
    sim: Simulator,
    drivers: Vec<Box<dyn InputTransactor>>,
    monitors: Vec<Box<dyn OutputTransactor>>,
    max_cycles: u64,
    total_cycles: u64,
    obs: ObsHook,
}

impl WrappedRtl {
    /// Wraps a flat module.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError`] if the module fails validation.
    pub fn new(module: Module) -> Result<Self, RtlError> {
        Ok(WrappedRtl {
            sim: Simulator::new(module)?,
            drivers: Vec::new(),
            monitors: Vec::new(),
            max_cycles: 10_000,
            total_cycles: 0,
            obs: ObsHook::none(),
        })
    }

    /// Wraps an already-constructed simulator — e.g. one built with
    /// [`Simulator::new_reference`] to run the transaction harness on the
    /// reference evaluation engine for engine-parity checks.
    pub fn from_simulator(sim: Simulator) -> Self {
        WrappedRtl {
            sim,
            drivers: Vec::new(),
            monitors: Vec::new(),
            max_cycles: 10_000,
            total_cycles: 0,
            obs: ObsHook::none(),
        }
    }

    /// Streams instrumentation into `rec`: `cosim.transactions` /
    /// `cosim.cycles` counters from this wrapper, plus the underlying
    /// simulator's own `rtl.*` counters (the recorder is forwarded).
    pub fn set_recorder(&mut self, rec: SharedRecorder) {
        self.sim.set_recorder(rec.clone());
        self.obs.set(rec);
    }

    /// Adds an input transactor.
    pub fn with_driver(mut self, d: impl InputTransactor + 'static) -> Self {
        self.drivers.push(Box::new(d));
        self
    }

    /// Adds an output transactor.
    pub fn with_monitor(mut self, m: impl OutputTransactor + 'static) -> Self {
        self.monitors.push(Box::new(m));
        self
    }

    /// Caps the cycles one transaction may take (guards against hung
    /// handshakes).
    pub fn with_max_cycles(mut self, max: u64) -> Self {
        self.max_cycles = max;
        self
    }

    /// Direct access to the underlying simulator (for pokes the transactors
    /// do not cover, e.g. mode pins).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Total cycles consumed across all transactions — the RTL-side cost
    /// metric for the paper's simulation-speed comparison (E2).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Runs one transaction to completion: drives inputs, steps the clock,
    /// samples outputs until every monitor is done (or the cycle cap).
    ///
    /// Returns the collected SLM-level outputs as `(name, value, cycle)`.
    pub fn run_transaction(&mut self, txn: &Transaction) -> Vec<(String, Bv, u64)> {
        for d in &mut self.drivers {
            d.load(txn);
        }
        for m in &mut self.monitors {
            m.begin_transaction();
        }
        let mut outputs = Vec::new();
        let before = self.total_cycles;
        for cycle in 0..self.max_cycles {
            for d in &mut self.drivers {
                let _ = d.drive(&mut self.sim);
            }
            for m in &mut self.monitors {
                m.sample(&mut self.sim, cycle, &mut outputs);
            }
            self.sim.step();
            self.total_cycles += 1;
            if self.monitors.iter().all(|m| m.done()) {
                break;
            }
        }
        self.obs.add("cosim.transactions", 1);
        self.obs.add("cosim.cycles", self.total_cycles - before);
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;

    /// A DUT that sums a stream of 4 bytes (valid-gated) and presents the
    /// total with a done flag.
    fn stream_summer() -> Module {
        let mut b = ModuleBuilder::new("summer");
        let valid = b.input("valid", 1);
        let data = b.input("data", 8);
        let acc = b.reg("acc", 16, Bv::zero(16));
        let cnt = b.reg("cnt", 3, Bv::zero(3));
        let accq = b.reg_q(acc);
        let cntq = b.reg_q(cnt);
        let dw = b.zext(data, 16);
        let sum = b.add(accq, dw);
        let next_acc = b.mux(valid, sum, accq);
        b.connect_reg(acc, next_acc);
        let one = b.lit(3, 1);
        let cnt_inc = b.add(cntq, one);
        let next_cnt = b.mux(valid, cnt_inc, cntq);
        b.connect_reg(cnt, next_cnt);
        let four = b.lit(3, 4);
        let done = b.eq(cntq, four);
        b.output("total", accq);
        b.output("done", done);
        b.finish().unwrap()
    }

    #[test]
    fn serialized_transaction_runs() {
        let wrapped = WrappedRtl::new(stream_summer()).unwrap();
        let mut wrapped = wrapped
            .with_driver(SerialDriver::new("bytes", "data", "valid", 8))
            .with_monitor(SerialCollector::new("total", "total", "done", 1));
        let mut txn = Transaction::new();
        // Bytes 1, 2, 3, 4 packed LSB-first.
        txn.insert("bytes".into(), Bv::from_u64(32, 0x04_03_02_01));
        let outs = wrapped.run_transaction(&txn);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "total");
        assert_eq!(outs[0].1.to_u64(), 10);
        // One beat per cycle + the done cycle.
        assert_eq!(outs[0].2, 4);
    }

    #[test]
    fn direct_driver_and_fixed_monitor() {
        // Registered adder: result valid after 1 edge; sample at cycle 1.
        let mut b = ModuleBuilder::new("addreg");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = b.add(x, y);
        let r = b.reg("r", 8, Bv::zero(8));
        b.connect_reg(r, s);
        let q = b.reg_q(r);
        b.output("sum", q);
        let m = b.finish().unwrap();

        let mut wrapped = WrappedRtl::new(m)
            .unwrap()
            .with_driver(DirectDriver::new().map("a", "x").map("b", "y"))
            .with_monitor(FixedCycleMonitor::new("sum", 1));
        let mut txn = Transaction::new();
        txn.insert("a".into(), Bv::from_u64(8, 30));
        txn.insert("b".into(), Bv::from_u64(8, 12));
        let outs = wrapped.run_transaction(&txn);
        assert_eq!(outs[0].1.to_u64(), 42);
        // Second transaction reuses the wrapper.
        let mut txn2 = Transaction::new();
        txn2.insert("a".into(), Bv::from_u64(8, 1));
        txn2.insert("b".into(), Bv::from_u64(8, 2));
        let outs2 = wrapped.run_transaction(&txn2);
        assert_eq!(outs2[0].1.to_u64(), 3);
    }

    #[test]
    fn recorder_counts_transactions_and_cycles() {
        let rec = dfv_obs::MemoryRecorder::shared();
        let mut wrapped = WrappedRtl::new(stream_summer())
            .unwrap()
            .with_driver(SerialDriver::new("bytes", "data", "valid", 8))
            .with_monitor(SerialCollector::new("total", "total", "done", 1));
        wrapped.set_recorder(rec.clone());
        let mut txn = Transaction::new();
        txn.insert("bytes".into(), Bv::from_u64(32, 0x04_03_02_01));
        wrapped.run_transaction(&txn);
        let m = rec.lock().unwrap();
        assert_eq!(m.counter("cosim.transactions"), 1);
        assert_eq!(m.counter("cosim.cycles"), wrapped.total_cycles());
        // The forwarded recorder sees the inner simulator's work too.
        assert_eq!(m.counter("rtl.steps"), wrapped.total_cycles());
    }

    #[test]
    fn evaluation_engines_agree_through_transactors() {
        // The same serialized transactions through the dirty-cone engine
        // and the full-reevaluation reference must produce identical
        // transaction-level outputs and cycle counts.
        let run = |sim: Simulator| {
            let mut wrapped = WrappedRtl::from_simulator(sim)
                .with_driver(SerialDriver::new("bytes", "data", "valid", 8))
                .with_monitor(SerialCollector::new("total", "total", "done", 1));
            let mut txn = Transaction::new();
            txn.insert("bytes".into(), Bv::from_u64(32, 0x99_42_07_13));
            let outs = wrapped.run_transaction(&txn);
            (outs, wrapped.total_cycles())
        };
        let fast = run(Simulator::new(stream_summer()).unwrap());
        let reference = run(Simulator::new_reference(stream_summer()).unwrap());
        assert_eq!(fast, reference);
    }

    #[test]
    fn max_cycles_guards_hangs() {
        // A monitor waiting for a done flag that never rises.
        let mut b = ModuleBuilder::new("never");
        let x = b.input("x", 1);
        let zero = b.lit(1, 0);
        b.output("done", zero);
        b.output("echo", x);
        let m = b.finish().unwrap();
        let mut wrapped = WrappedRtl::new(m)
            .unwrap()
            .with_driver(DirectDriver::new().map("x", "x"))
            .with_monitor(SerialCollector::new("v", "echo", "done", 1))
            .with_max_cycles(50);
        let mut txn = Transaction::new();
        txn.insert("x".into(), Bv::from_bool(true));
        let outs = wrapped.run_transaction(&txn);
        assert!(outs.is_empty());
        assert_eq!(wrapped.total_cycles(), 50);
    }
}
