//! RTL mutation: the injected-bug model for verification-effectiveness
//! experiments.
//!
//! The paper claims SEC "is very effective at quickly finding discrepancies
//! between SLM and RTL models" (§2). To measure that against simulation, we
//! need a supply of realistic RTL bugs. Each [`Mutation`] is a small,
//! width-preserving semantic change of the kind real designers make: a
//! swapped operator, a perturbed constant, inverted mux polarity, a wrong
//! reset value, a dropped clock enable, an off-by-one slice.

use dfv_rtl::ir::{BinOp, Node};
use dfv_rtl::Module;

/// One applicable mutation site in a module.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Replace the operator of node `node` with `new_op` (same widths).
    SwapBinOp {
        /// Node index.
        node: usize,
        /// Replacement operator.
        new_op: BinOp,
    },
    /// Flip bit `bit` of the constant at node `node`.
    FlipConstBit {
        /// Node index.
        node: usize,
        /// Bit to flip.
        bit: u32,
    },
    /// Swap the two data inputs of the mux at node `node` (inverted
    /// polarity).
    InvertMux {
        /// Node index.
        node: usize,
    },
    /// Flip bit `bit` of register `reg`'s reset value.
    FlipRegInit {
        /// Register index.
        reg: usize,
        /// Bit to flip.
        bit: u32,
    },
    /// Remove register `reg`'s clock enable (it now loads every cycle —
    /// a classic dropped-stall bug, §3.2).
    DropEnable {
        /// Register index.
        reg: usize,
    },
    /// Shift a slice down by one bit (off-by-one part select).
    SliceOffByOne {
        /// Node index.
        node: usize,
    },
}

/// Width-preserving operator substitutions considered "one edit" apart.
fn swaps_for(op: BinOp) -> &'static [BinOp] {
    match op {
        BinOp::Add => &[BinOp::Sub, BinOp::Or],
        BinOp::Sub => &[BinOp::Add],
        BinOp::Mul => &[BinOp::Add],
        BinOp::And => &[BinOp::Or, BinOp::Xor],
        BinOp::Or => &[BinOp::And, BinOp::Xor],
        BinOp::Xor => &[BinOp::Or, BinOp::And],
        BinOp::Shl => &[BinOp::LShr],
        BinOp::LShr => &[BinOp::AShr, BinOp::Shl],
        BinOp::AShr => &[BinOp::LShr],
        BinOp::Eq => &[BinOp::Ne],
        BinOp::Ne => &[BinOp::Eq],
        BinOp::ULt => &[BinOp::ULe, BinOp::SLt],
        BinOp::ULe => &[BinOp::ULt],
        BinOp::SLt => &[BinOp::SLe, BinOp::ULt],
        BinOp::SLe => &[BinOp::SLt],
        BinOp::UDiv => &[BinOp::URem],
        BinOp::URem => &[BinOp::UDiv],
        BinOp::SDiv => &[BinOp::SRem],
        BinOp::SRem => &[BinOp::SDiv],
    }
}

/// Enumerates every applicable mutation of a module.
pub fn enumerate_mutations(m: &Module) -> Vec<Mutation> {
    let mut out = Vec::new();
    for (i, node) in m.nodes.iter().enumerate() {
        match node {
            Node::Bin(op, ..) => {
                for &new_op in swaps_for(*op) {
                    out.push(Mutation::SwapBinOp { node: i, new_op });
                }
            }
            Node::Const(v) => {
                // Flip each of up to the low 4 bits, plus the MSB.
                for bit in 0..v.width().min(4) {
                    out.push(Mutation::FlipConstBit { node: i, bit });
                }
                if v.width() > 4 {
                    out.push(Mutation::FlipConstBit {
                        node: i,
                        bit: v.width() - 1,
                    });
                }
            }
            Node::Mux { .. } => out.push(Mutation::InvertMux { node: i }),
            Node::Slice { lo, .. } if *lo > 0 => {
                out.push(Mutation::SliceOffByOne { node: i });
            }
            _ => {}
        }
    }
    for (r, reg) in m.regs.iter().enumerate() {
        for bit in 0..reg.width.min(2) {
            out.push(Mutation::FlipRegInit { reg: r, bit });
        }
        if reg.en.is_some() {
            out.push(Mutation::DropEnable { reg: r });
        }
    }
    out
}

/// Applies a mutation, returning the mutated module (the original is
/// untouched). The result is structurally valid by construction.
///
/// # Panics
///
/// Panics if the mutation does not refer to a matching site in `m` (i.e.
/// it was enumerated from a different module).
pub fn apply_mutation(m: &Module, mutation: &Mutation) -> Module {
    let mut out = m.clone();
    match mutation {
        Mutation::SwapBinOp { node, new_op } => {
            let Node::Bin(op, a, b) = out.nodes[*node].clone() else {
                panic!("mutation site {node} is not a binary op");
            };
            let _ = op;
            out.nodes[*node] = Node::Bin(*new_op, a, b);
            // Comparison <-> arithmetic swaps would change widths; the
            // enumeration only proposes width-preserving swaps.
        }
        Mutation::FlipConstBit { node, bit } => {
            let Node::Const(v) = &out.nodes[*node] else {
                panic!("mutation site {node} is not a constant");
            };
            let flipped = v.with_bit(*bit, !v.bit(*bit));
            out.nodes[*node] = Node::Const(flipped);
        }
        Mutation::InvertMux { node } => {
            let Node::Mux { sel, t, f } = out.nodes[*node] else {
                panic!("mutation site {node} is not a mux");
            };
            out.nodes[*node] = Node::Mux { sel, t: f, f: t };
        }
        Mutation::FlipRegInit { reg, bit } => {
            let init = &out.regs[*reg].init;
            out.regs[*reg].init = init.with_bit(*bit, !init.bit(*bit));
        }
        Mutation::DropEnable { reg } => {
            out.regs[*reg].en = None;
        }
        Mutation::SliceOffByOne { node } => {
            let Node::Slice { src, hi, lo } = out.nodes[*node] else {
                panic!("mutation site {node} is not a slice");
            };
            out.nodes[*node] = Node::Slice {
                src,
                hi: hi - 1,
                lo: lo - 1,
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_bits::Bv;
    use dfv_rtl::{check_module, ModuleBuilder, Simulator};

    fn sample_module() -> Module {
        let mut b = ModuleBuilder::new("dut");
        let en = b.input("en", 1);
        let x = b.input("x", 8);
        let c = b.lit(8, 0x1F);
        let sum = b.add(x, c);
        let hi = b.slice(sum, 7, 4);
        let lo = b.slice(sum, 3, 0);
        let sel = b.ult(hi, lo);
        let muxed = b.mux(sel, hi, lo);
        let r = b.reg("r", 4, Bv::from_u64(4, 3));
        b.connect_reg(r, muxed);
        b.reg_enable(r, en);
        let q = b.reg_q(r);
        b.output("y", q);
        b.finish().unwrap()
    }

    #[test]
    fn enumeration_finds_many_sites() {
        let m = sample_module();
        let muts = enumerate_mutations(&m);
        assert!(muts.len() >= 10, "only {} mutations", muts.len());
        assert!(muts.iter().any(|x| matches!(x, Mutation::SwapBinOp { .. })));
        assert!(muts.iter().any(|x| matches!(x, Mutation::InvertMux { .. })));
        assert!(muts
            .iter()
            .any(|x| matches!(x, Mutation::DropEnable { .. })));
        assert!(muts
            .iter()
            .any(|x| matches!(x, Mutation::SliceOffByOne { .. })));
    }

    #[test]
    fn all_mutants_are_structurally_valid() {
        let m = sample_module();
        for mutation in enumerate_mutations(&m) {
            let mutant = apply_mutation(&m, &mutation);
            check_module(&mutant).unwrap_or_else(|e| panic!("{mutation:?}: {e}"));
        }
    }

    #[test]
    fn mutants_change_behaviour() {
        // At least three quarters of mutants must differ observably from
        // the original on a short directed run (weak mutants are normal,
        // dead mutants in this little design should be rare).
        let m = sample_module();
        let run = |module: &Module| -> Vec<u64> {
            let mut sim = Simulator::new(module.clone()).unwrap();
            let mut outs = Vec::new();
            for i in 0..16u64 {
                sim.poke("en", Bv::from_bool(i % 3 != 0));
                sim.poke("x", Bv::from_u64(8, i * 37));
                outs.push(sim.output("y").to_u64());
                sim.step();
            }
            outs
        };
        let golden = run(&m);
        let muts = enumerate_mutations(&m);
        let changed = muts
            .iter()
            .filter(|mutation| run(&apply_mutation(&m, mutation)) != golden)
            .count();
        assert!(
            changed * 4 >= muts.len() * 3,
            "only {changed}/{} mutants changed behaviour",
            muts.len()
        );
    }

    #[test]
    fn original_module_is_untouched() {
        let m = sample_module();
        let before = m.clone();
        for mutation in enumerate_mutations(&m) {
            let _ = apply_mutation(&m, &mutation);
        }
        assert_eq!(m, before);
    }
}
