//! Seeded interface-fault injection: the paper's Fig 2 inconsistency
//! sources, made reproducible.
//!
//! The paper's §2/Fig 2 argues that most *apparent* SLM↔RTL divergence is
//! interface timing, not computation: latency offsets, stalls,
//! back-pressure, and out-of-order completion break naive output
//! comparison even when the design is functionally equivalent. This module
//! turns each of those hazards into a first-class, seeded fault the
//! verification stack can be exercised against:
//!
//! * [`FaultKind`] — the six-member taxonomy (stall, backpressure, drop,
//!   duplicate, reorder, jitter);
//! * [`FaultPlan`] — a reproducible recipe (seed + per-class rates and
//!   bounds);
//! * [`FaultInjector`] — applies a plan to an output stream
//!   ([`FaultInjector::perturb`]) recording every injection in a
//!   [`FaultLog`] with transaction-index + cycle provenance;
//! * [`FaultyDriver`] / [`FaultyMonitor`] — wrappers over any
//!   [`InputTransactor`] / [`OutputTransactor`] that misbehave at the
//!   transactor boundary itself;
//! * [`ComparatorPolicy`] — a *declared* tolerance: which fault classes a
//!   given comparator configuration is designed to absorb. A clean verdict
//!   outside the declared tolerance is a **masked** fault — the
//!   interesting escape class the fault campaign exists to find.
//!
//! Everything is driven by the in-tree [`SplitMix64`]: the same seed
//! always yields the same faulted stream and the same log, byte for byte.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use dfv_bits::{Bv, SplitMix64};
use dfv_rtl::Simulator;

use crate::compare::{
    Comparator, CompareReport, ExactComparator, InOrderComparator, OutOfOrderComparator, StreamItem,
};
use crate::wrapped::{InputTransactor, OutputTransactor, Transaction};

/// One class of interface-timing hazard (the paper's Fig 2 inconsistency
/// sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The producer holds an output for extra cycles: everything after the
    /// stall point shifts later in time.
    Stall,
    /// The consumer refuses to accept: the transaction (and everything
    /// after it) is delayed before it even starts.
    Backpressure,
    /// A transaction is lost at the interface and never completes.
    Drop,
    /// A transaction completes twice.
    Duplicate,
    /// Two completions swap order (tagged out-of-order completion).
    Reorder,
    /// A completion lands a bounded number of cycles late, without
    /// affecting its neighbours.
    Jitter,
}

impl FaultKind {
    /// Every fault class, in taxonomy order — the sweep axis for fault
    /// campaigns.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Stall,
        FaultKind::Backpressure,
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Jitter,
    ];

    /// A short stable name (used in reports and log lines).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Stall => "stall",
            FaultKind::Backpressure => "backpressure",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Jitter => "jitter",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injected fault, with provenance: which transaction (by stream
/// index) was hit, at what original time, and what was done to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The fault class.
    pub kind: FaultKind,
    /// Index of the afflicted transaction in the unfaulted stream.
    pub index: usize,
    /// The transaction's original production time (cycle).
    pub time: u64,
    /// Human-readable description of the specific injection.
    pub detail: String,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on txn #{} (t={}): {}",
            self.kind, self.index, self.time, self.detail
        )
    }
}

/// The record of every fault injected during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Events in injection order.
    pub events: Vec<FaultEvent>,
}

impl FaultLog {
    /// Whether nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total injections.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Injections of one class.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Records this log into a recorder: bumps the
    /// `cosim.faults_injected` counter and emits one `cosim.fault` event
    /// per injection (in injection order, with provenance).
    pub fn record_to(&self, rec: &dfv_obs::SharedRecorder) {
        let mut r = rec
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !self.events.is_empty() {
            r.counter_add("cosim.faults_injected", self.events.len() as u64);
        }
        for e in &self.events {
            r.event("cosim.fault", e.to_string());
        }
    }

    fn push(&mut self, kind: FaultKind, index: usize, time: u64, detail: String) {
        self.events.push(FaultEvent {
            kind,
            index,
            time,
            detail,
        });
    }
}

impl fmt::Display for FaultLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no faults injected");
        }
        writeln!(f, "{} fault(s) injected:", self.events.len())?;
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// A reproducible fault recipe: a seed plus per-class injection rates
/// (percent per transaction) and magnitude bounds. Two injectors built
/// from equal plans produce identical faulted streams and identical logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// PRNG seed — the sole source of nondeterminism.
    pub seed: u64,
    /// Per-transaction probability (percent) of a stall before it.
    pub stall_pct: u8,
    /// Longest single stall, in cycles.
    pub max_stall: u64,
    /// Per-transaction probability (percent) of back-pressure delay.
    pub backpressure_pct: u8,
    /// Longest single back-pressure delay, in cycles.
    pub max_backpressure: u64,
    /// Per-transaction probability (percent) of being dropped.
    pub drop_pct: u8,
    /// Per-transaction probability (percent) of completing twice.
    pub duplicate_pct: u8,
    /// Per-transaction probability (percent) of swapping with a later one.
    pub reorder_pct: u8,
    /// Furthest a reordered completion may travel, in stream positions.
    pub max_reorder_distance: usize,
    /// Per-transaction probability (percent) of bounded lateness.
    pub jitter_pct: u8,
    /// Largest single-transaction lateness, in cycles.
    pub max_jitter: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (the baseline control).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            stall_pct: 0,
            max_stall: 0,
            backpressure_pct: 0,
            max_backpressure: 0,
            drop_pct: 0,
            duplicate_pct: 0,
            reorder_pct: 0,
            max_reorder_distance: 0,
            jitter_pct: 0,
            max_jitter: 0,
        }
    }

    /// A single-class plan at default intensity — the campaign sweep uses
    /// one of these per (block, fault-class) cell so every verdict is
    /// attributable to exactly one hazard.
    pub fn only(kind: FaultKind, seed: u64) -> Self {
        let mut p = FaultPlan::quiet(seed);
        match kind {
            FaultKind::Stall => {
                p.stall_pct = 25;
                p.max_stall = 8;
            }
            FaultKind::Backpressure => {
                p.backpressure_pct = 25;
                p.max_backpressure = 8;
            }
            FaultKind::Drop => p.drop_pct = 20,
            FaultKind::Duplicate => p.duplicate_pct = 20,
            FaultKind::Reorder => {
                p.reorder_pct = 30;
                p.max_reorder_distance = 2;
            }
            FaultKind::Jitter => {
                p.jitter_pct = 40;
                p.max_jitter = 3;
            }
        }
        p
    }

    /// The fault classes this plan can actually inject (non-zero rate).
    pub fn active_kinds(&self) -> Vec<FaultKind> {
        FaultKind::ALL
            .into_iter()
            .filter(|k| {
                (match k {
                    FaultKind::Stall => self.stall_pct,
                    FaultKind::Backpressure => self.backpressure_pct,
                    FaultKind::Drop => self.drop_pct,
                    FaultKind::Duplicate => self.duplicate_pct,
                    FaultKind::Reorder => self.reorder_pct,
                    FaultKind::Jitter => self.jitter_pct,
                }) > 0
            })
            .collect()
    }

    /// Builds the injector for this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            rng: SplitMix64::new(self.seed),
            log: FaultLog::default(),
        }
    }
}

/// Applies a [`FaultPlan`] to transaction streams, logging every
/// injection. Obtain one from [`FaultPlan::injector`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    log: FaultLog,
}

impl FaultInjector {
    fn roll(&mut self, pct: u8) -> bool {
        pct > 0 && self.rng.below(100) < u64::from(pct)
    }

    /// Perturbs an output stream according to the plan. Three passes:
    ///
    /// 1. **timing** — stall and back-pressure shift the afflicted
    ///    transaction *and everything after it* later; jitter delays one
    ///    transaction by a bounded amount (clamped so stream order is
    ///    preserved — pure lateness, never reordering);
    /// 2. **structural** — drop removes a transaction, duplicate
    ///    completes one twice;
    /// 3. **reorder** — swaps the *values* of two transactions up to
    ///    `max_reorder_distance` apart while their completion times stay
    ///    put (tagged out-of-order completion). Swaps never chain, so no
    ///    value travels further than the bound.
    ///
    /// Every injection lands in the log with the index and original time
    /// of the afflicted transaction.
    pub fn perturb(&mut self, stream: &[StreamItem]) -> Vec<StreamItem> {
        // Pass 1: timing faults.
        let mut shift: u64 = 0;
        let mut prev_time: u64 = 0;
        let mut items: Vec<StreamItem> = Vec::with_capacity(stream.len());
        for (i, it) in stream.iter().enumerate() {
            if self.roll(self.plan.stall_pct) {
                let d = self.rng.range_u64(1, self.plan.max_stall.max(1));
                shift += d;
                self.log.push(
                    FaultKind::Stall,
                    i,
                    it.time,
                    format!("output held {d} cycles"),
                );
            }
            if self.roll(self.plan.backpressure_pct) {
                let d = self.rng.range_u64(1, self.plan.max_backpressure.max(1));
                shift += d;
                self.log.push(
                    FaultKind::Backpressure,
                    i,
                    it.time,
                    format!("acceptance delayed {d} cycles"),
                );
            }
            let mut t = it.time.saturating_add(shift);
            if self.roll(self.plan.jitter_pct) {
                let e = self.rng.range_u64(1, self.plan.max_jitter.max(1));
                t = t.saturating_add(e);
                self.log
                    .push(FaultKind::Jitter, i, it.time, format!("late by {e} cycles"));
            }
            // Jitter is lateness, not reordering: keep times non-decreasing.
            t = t.max(prev_time);
            prev_time = t;
            items.push(StreamItem {
                value: it.value.clone(),
                time: t,
            });
        }

        // Pass 2: structural faults.
        let mut out: Vec<StreamItem> = Vec::with_capacity(items.len());
        for (i, it) in items.into_iter().enumerate() {
            let orig_time = stream[i].time;
            if self.roll(self.plan.drop_pct) {
                self.log
                    .push(FaultKind::Drop, i, orig_time, "never completed".into());
                continue;
            }
            let dup = self.roll(self.plan.duplicate_pct);
            if dup {
                self.log
                    .push(FaultKind::Duplicate, i, orig_time, "completed twice".into());
            }
            out.push(it.clone());
            if dup {
                out.push(it);
            }
        }

        // Pass 3: reorder (value swaps; times stay). A cursor jump past
        // the swap target keeps swaps disjoint, bounding travel distance.
        let mut i = 0;
        while i + 1 < out.len() {
            if self.roll(self.plan.reorder_pct) {
                let max_d = self.plan.max_reorder_distance.max(1) as u64;
                let d = self.rng.range_u64(1, max_d) as usize;
                let j = (i + d).min(out.len() - 1);
                if j != i {
                    let (a, b) = (out[i].value.clone(), out[j].value.clone());
                    out[i].value = b;
                    out[j].value = a;
                    self.log.push(
                        FaultKind::Reorder,
                        i,
                        stream.get(i).map_or(0, |s| s.time),
                        format!("swapped with completion {} positions later", j - i),
                    );
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// The injections so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Takes the log, resetting it (the PRNG stream continues).
    pub fn take_log(&mut self) -> FaultLog {
        std::mem::take(&mut self.log)
    }
}

/// A shared fault log handle for transactor wrappers, so a driver and a
/// monitor wrapping the same DUT record into one place.
pub type SharedFaultLog = Rc<RefCell<FaultLog>>;

/// Creates a fresh shared [`FaultLog`].
pub fn shared_fault_log() -> SharedFaultLog {
    Rc::new(RefCell::new(FaultLog::default()))
}

/// Wraps any [`InputTransactor`] with input-side hazards: **drop** (the
/// transaction is swallowed before the DUT sees it), **backpressure**
/// (the handshake is held off for a bounded number of cycles), and
/// **stall** (mid-drive freeze). Output-side hazards (duplicate, jitter)
/// belong on [`FaultyMonitor`]; reorder needs multiple transactions in
/// flight and is a stream-level fault ([`FaultInjector::perturb`]).
pub struct FaultyDriver<D: InputTransactor> {
    inner: D,
    plan: FaultPlan,
    rng: SplitMix64,
    log: SharedFaultLog,
    txn_index: usize,
    hold_cycles: u64,
    dropping: bool,
}

impl<D: InputTransactor> FaultyDriver<D> {
    /// Wraps `inner`, injecting per `plan`, recording into `log`.
    pub fn new(inner: D, plan: FaultPlan, log: SharedFaultLog) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultyDriver {
            inner,
            plan,
            rng,
            log,
            txn_index: 0,
            hold_cycles: 0,
            dropping: false,
        }
    }

    fn roll(&mut self, pct: u8) -> bool {
        pct > 0 && self.rng.below(100) < u64::from(pct)
    }
}

impl<D: InputTransactor> InputTransactor for FaultyDriver<D> {
    fn load(&mut self, txn: &Transaction) {
        let i = self.txn_index;
        self.txn_index += 1;
        if self.roll(self.plan.drop_pct) {
            self.dropping = true;
            self.log
                .borrow_mut()
                .push(FaultKind::Drop, i, 0, "swallowed at the input".into());
            return;
        }
        self.dropping = false;
        self.hold_cycles = 0;
        if self.roll(self.plan.backpressure_pct) {
            let d = self.rng.range_u64(1, self.plan.max_backpressure.max(1));
            self.hold_cycles = d;
            self.log.borrow_mut().push(
                FaultKind::Backpressure,
                i,
                0,
                format!("input held off {d} cycles"),
            );
        } else if self.roll(self.plan.stall_pct) {
            let d = self.rng.range_u64(1, self.plan.max_stall.max(1));
            self.hold_cycles = d;
            self.log
                .borrow_mut()
                .push(FaultKind::Stall, i, 0, format!("drive frozen {d} cycles"));
        }
        self.inner.load(txn);
    }

    fn drive(&mut self, sim: &mut Simulator) -> bool {
        if self.dropping {
            return false;
        }
        if self.hold_cycles > 0 {
            self.hold_cycles -= 1;
            // Ports keep whatever was last driven — exactly the hazard a
            // real frozen handshake presents.
            return true;
        }
        self.inner.drive(sim)
    }
}

/// Wraps any [`OutputTransactor`] with output-side hazards: **drop** (a
/// completed output vanishes), **duplicate** (it is reported twice), and
/// **jitter** (its completion cycle is reported late).
pub struct FaultyMonitor<M: OutputTransactor> {
    inner: M,
    plan: FaultPlan,
    rng: SplitMix64,
    log: SharedFaultLog,
    out_index: usize,
    swallowed: usize,
}

impl<M: OutputTransactor> FaultyMonitor<M> {
    /// Wraps `inner`, injecting per `plan`, recording into `log`.
    pub fn new(inner: M, plan: FaultPlan, log: SharedFaultLog) -> Self {
        // Offset the stream so a driver/monitor pair sharing one plan
        // seed does not make correlated decisions.
        let rng = SplitMix64::new(plan.seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        FaultyMonitor {
            inner,
            plan,
            rng,
            log,
            out_index: 0,
            swallowed: 0,
        }
    }

    fn roll(&mut self, pct: u8) -> bool {
        pct > 0 && self.rng.below(100) < u64::from(pct)
    }
}

impl<M: OutputTransactor> OutputTransactor for FaultyMonitor<M> {
    fn sample(&mut self, sim: &mut Simulator, cycle: u64, out: &mut Vec<(String, Bv, u64)>) {
        let mut tmp = Vec::new();
        self.inner.sample(sim, cycle, &mut tmp);
        for (name, value, at) in tmp {
            let i = self.out_index;
            self.out_index += 1;
            if self.roll(self.plan.drop_pct) {
                self.swallowed += 1;
                self.log
                    .borrow_mut()
                    .push(FaultKind::Drop, i, at, "output swallowed".into());
                continue;
            }
            if self.roll(self.plan.duplicate_pct) {
                self.log.borrow_mut().push(
                    FaultKind::Duplicate,
                    i,
                    at,
                    "output reported twice".into(),
                );
                out.push((name.clone(), value.clone(), at));
            }
            let mut report_at = at;
            if self.roll(self.plan.jitter_pct) {
                let e = self.rng.range_u64(1, self.plan.max_jitter.max(1));
                report_at = at.saturating_add(e);
                self.log.borrow_mut().push(
                    FaultKind::Jitter,
                    i,
                    at,
                    format!("reported {e} cycles late"),
                );
            }
            out.push((name, value, report_at));
        }
    }

    fn done(&self) -> bool {
        // A swallowed output will never arrive: report done so the
        // wrapped-RTL's cycle cap is the only thing that keeps waiting.
        self.inner.done()
    }

    fn begin_transaction(&mut self) {
        self.inner.begin_transaction();
    }
}

/// A declared comparator configuration — both a factory for the
/// comparator and a *tolerance declaration* used to classify clean
/// verdicts: a fault the policy tolerates is expected to pass; a fault it
/// does not tolerate that still passes is **masked**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComparatorPolicy {
    /// Position, value, and timestamp must all match. Tolerates nothing.
    Exact,
    /// Values in order; timestamps within `tolerance` (`u64::MAX` =
    /// untimed).
    InOrder {
        /// Allowed |expected time − actual time| per item.
        tolerance: u64,
        /// Optional pending-item skew bound ([`InOrderComparator::with_max_skew`]).
        max_skew: Option<usize>,
    },
    /// Tag-matched completion within a reorder window.
    OutOfOrder {
        /// Tag field high bit.
        tag_hi: u32,
        /// Tag field low bit.
        tag_lo: u32,
        /// Allowed reorder distance.
        window: usize,
        /// Optional pending-expectation skew bound
        /// ([`OutOfOrderComparator::with_max_skew`]).
        max_skew: Option<usize>,
    },
}

impl ComparatorPolicy {
    /// Builds the comparator this policy describes.
    pub fn build(&self) -> Box<dyn Comparator> {
        match *self {
            ComparatorPolicy::Exact => Box::new(ExactComparator::new()),
            ComparatorPolicy::InOrder {
                tolerance,
                max_skew,
            } => {
                let c = InOrderComparator::new(tolerance);
                Box::new(match max_skew {
                    Some(b) => c.with_max_skew(b),
                    None => c,
                })
            }
            ComparatorPolicy::OutOfOrder {
                tag_hi,
                tag_lo,
                window,
                max_skew,
            } => {
                let c = OutOfOrderComparator::new(tag_hi, tag_lo, window);
                Box::new(match max_skew {
                    Some(b) => c.with_max_skew(b),
                    None => c,
                })
            }
        }
    }

    /// Whether this policy *declares* tolerance for a fault class at the
    /// plan's intensity. The table is deliberately conservative: a clean
    /// verdict outside it is classified masked, never silently excused.
    ///
    /// | policy | tolerated |
    /// |---|---|
    /// | `Exact` | nothing |
    /// | `InOrder` | jitter ≤ tolerance; stall/backpressure only untimed; never with a skew bound |
    /// | `OutOfOrder` | reorder ≤ window; stall/backpressure/jitter unless a skew bound is set |
    ///
    /// Drop and duplicate are never tolerated — no alignment policy may
    /// excuse a lost or duplicated transaction.
    pub fn tolerates(&self, kind: FaultKind, plan: &FaultPlan) -> bool {
        match self {
            ComparatorPolicy::Exact => false,
            ComparatorPolicy::InOrder {
                tolerance,
                max_skew,
            } => match kind {
                FaultKind::Jitter => max_skew.is_none() && plan.max_jitter <= *tolerance,
                FaultKind::Stall | FaultKind::Backpressure => {
                    max_skew.is_none() && *tolerance == u64::MAX
                }
                _ => false,
            },
            ComparatorPolicy::OutOfOrder {
                window, max_skew, ..
            } => match kind {
                FaultKind::Reorder => plan.max_reorder_distance <= *window,
                FaultKind::Stall | FaultKind::Backpressure | FaultKind::Jitter => {
                    max_skew.is_none()
                }
                _ => false,
            },
        }
    }

    /// A short human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            ComparatorPolicy::Exact => "exact".into(),
            ComparatorPolicy::InOrder {
                tolerance,
                max_skew,
            } => {
                let tol = if *tolerance == u64::MAX {
                    "untimed".into()
                } else {
                    format!("tol={tolerance}")
                };
                match max_skew {
                    Some(b) => format!("in-order ({tol}, skew≤{b})"),
                    None => format!("in-order ({tol})"),
                }
            }
            ComparatorPolicy::OutOfOrder {
                tag_hi,
                tag_lo,
                window,
                max_skew,
            } => {
                let base = format!("out-of-order (tag [{tag_hi}:{tag_lo}], win={window}");
                match max_skew {
                    Some(b) => format!("{base}, skew≤{b})"),
                    None => format!("{base})"),
                }
            }
        }
    }
}

/// Replays an expected and an actual stream through a comparator in
/// global chronological order (ties: expected first), then finishes.
///
/// This is how faulted streams must be fed: pushing all expectations
/// first and all completions second would make every skew bound fire
/// vacuously. Chronological interleaving reproduces what an online
/// scoreboard sees, so `SkewExceeded` means a real pile-up.
pub fn replay(
    expected: &[StreamItem],
    actual: &[StreamItem],
    comparator: &mut dyn Comparator,
) -> CompareReport {
    let (mut i, mut j) = (0, 0);
    while i < expected.len() || j < actual.len() {
        let take_expected =
            j >= actual.len() || (i < expected.len() && expected[i].time <= actual[j].time);
        if take_expected {
            comparator.push_expected(expected[i].clone());
            i += 1;
        } else {
            comparator.push_actual(actual[j].clone());
            j += 1;
        }
    }
    comparator.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapped::{DirectDriver, FixedCycleMonitor, WrappedRtl};
    use dfv_rtl::ModuleBuilder;

    fn stream(n: u64) -> Vec<StreamItem> {
        (0..n)
            .map(|i| StreamItem {
                value: Bv::from_u64(16, 0x100 + i),
                time: i * 2,
            })
            .collect()
    }

    #[test]
    fn quiet_plan_is_identity_with_empty_log() {
        let s = stream(20);
        let mut inj = FaultPlan::quiet(7).injector();
        assert_eq!(inj.perturb(&s), s);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn same_seed_same_faults_byte_for_byte() {
        let s = stream(50);
        for kind in FaultKind::ALL {
            let plan = FaultPlan::only(kind, 0xDEAD_BEEF);
            let mut a = plan.injector();
            let mut b = plan.injector();
            assert_eq!(a.perturb(&s), b.perturb(&s), "{kind}");
            assert_eq!(a.log(), b.log(), "{kind}");
            assert!(
                !a.log().is_empty(),
                "{kind} plan injected nothing in 50 txns"
            );
            assert!(a.log().events.iter().all(|e| e.kind == kind));
        }
    }

    #[test]
    fn stall_shifts_time_only() {
        let s = stream(30);
        let mut inj = FaultPlan::only(FaultKind::Stall, 3).injector();
        let f = inj.perturb(&s);
        assert_eq!(f.len(), s.len());
        for (orig, got) in s.iter().zip(&f) {
            assert_eq!(orig.value, got.value);
            assert!(got.time >= orig.time);
        }
        // Cumulative: shifts never decrease along the stream.
        let mut last_shift = 0;
        for (orig, got) in s.iter().zip(&f) {
            let shift = got.time - orig.time;
            assert!(shift >= last_shift);
            last_shift = shift;
        }
    }

    #[test]
    fn jitter_is_bounded_and_order_preserving() {
        let s = stream(40);
        let plan = FaultPlan::only(FaultKind::Jitter, 11);
        let mut inj = plan.injector();
        let f = inj.perturb(&s);
        let mut prev = 0;
        for (orig, got) in s.iter().zip(&f) {
            assert_eq!(orig.value, got.value);
            assert!(got.time >= orig.time);
            assert!(got.time - orig.time <= plan.max_jitter);
            assert!(got.time >= prev, "jitter must never reorder");
            prev = got.time;
        }
    }

    #[test]
    fn drop_and_duplicate_change_cardinality() {
        let s = stream(40);
        let mut inj = FaultPlan::only(FaultKind::Drop, 5).injector();
        let f = inj.perturb(&s);
        assert_eq!(f.len(), s.len() - inj.log().count(FaultKind::Drop));

        let mut inj = FaultPlan::only(FaultKind::Duplicate, 5).injector();
        let f = inj.perturb(&s);
        assert_eq!(f.len(), s.len() + inj.log().count(FaultKind::Duplicate));
    }

    #[test]
    fn reorder_swaps_values_within_bound() {
        let s = stream(40);
        let plan = FaultPlan::only(FaultKind::Reorder, 13);
        let mut inj = plan.injector();
        let f = inj.perturb(&s);
        assert!(!inj.log().is_empty());
        // Same multiset of values, same times.
        for (orig, got) in s.iter().zip(&f) {
            assert_eq!(orig.time, got.time);
        }
        let mut sv: Vec<u64> = s.iter().map(|x| x.value.to_u64()).collect();
        let mut fv: Vec<u64> = f.iter().map(|x| x.value.to_u64()).collect();
        sv.sort_unstable();
        fv.sort_unstable();
        assert_eq!(sv, fv);
        // No value travelled further than the bound.
        for (i, got) in f.iter().enumerate() {
            let home = s.iter().position(|o| o.value == got.value).unwrap();
            assert!(home.abs_diff(i) <= plan.max_reorder_distance);
        }
    }

    #[test]
    fn tolerance_table_matches_replay_verdicts() {
        let s = stream(60);
        let untimed = ComparatorPolicy::InOrder {
            tolerance: u64::MAX,
            max_skew: None,
        };
        let ooo = ComparatorPolicy::OutOfOrder {
            tag_hi: 15,
            tag_lo: 0,
            window: 4,
            max_skew: None,
        };
        for kind in FaultKind::ALL {
            let plan = FaultPlan::only(kind, 99);
            for policy in [&untimed, &ooo] {
                let mut inj = plan.injector();
                let f = inj.perturb(&s);
                if inj.log().is_empty() {
                    continue;
                }
                let report = replay(&s, &f, policy.build().as_mut());
                if policy.tolerates(kind, &plan) {
                    assert!(
                        report.is_clean(),
                        "{kind} declared tolerated by {} but flagged: {:?}",
                        policy.describe(),
                        report.mismatches
                    );
                } else {
                    assert!(
                        !report.is_clean(),
                        "{kind} not tolerated by {} yet passed clean (masked in a \
                         distinct-value stream should be impossible)",
                        policy.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn skew_bound_converts_tolerated_stall_into_detection() {
        let s = stream(60);
        let plan = FaultPlan::only(FaultKind::Stall, 21);
        let lenient = ComparatorPolicy::InOrder {
            tolerance: u64::MAX,
            max_skew: None,
        };
        let strict = ComparatorPolicy::InOrder {
            tolerance: u64::MAX,
            max_skew: Some(2),
        };
        let f = plan.injector().perturb(&s);
        assert!(replay(&s, &f, lenient.build().as_mut()).is_clean());
        let r = replay(&s, &f, strict.build().as_mut());
        assert!(r
            .mismatches
            .iter()
            .any(|m| matches!(m, crate::StreamMismatch::SkewExceeded { .. })));
        assert!(!strict.tolerates(FaultKind::Stall, &plan));
    }

    fn addreg() -> dfv_rtl::Module {
        let mut b = ModuleBuilder::new("addreg");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = b.add(x, y);
        let r = b.reg("r", 8, Bv::zero(8));
        b.connect_reg(r, s);
        let q = b.reg_q(r);
        b.output("sum", q);
        b.finish().unwrap()
    }

    #[test]
    fn faulty_driver_drops_transactions_at_the_input() {
        let log = shared_fault_log();
        let mut plan = FaultPlan::quiet(5);
        plan.drop_pct = 100;
        let mut wrapped = WrappedRtl::new(addreg())
            .unwrap()
            .with_driver(FaultyDriver::new(
                DirectDriver::new().map("a", "x").map("b", "y"),
                plan,
                log.clone(),
            ))
            .with_monitor(FixedCycleMonitor::new("sum", 1))
            .with_max_cycles(8);
        let mut txn = Transaction::new();
        txn.insert("a".into(), Bv::from_u64(8, 3));
        txn.insert("b".into(), Bv::from_u64(8, 4));
        let outs = wrapped.run_transaction(&txn);
        // The DUT never saw the inputs; the monitor sampled the reset
        // value instead of 7 — and the log says why.
        assert_eq!(outs[0].1.to_u64(), 0);
        assert_eq!(log.borrow().count(FaultKind::Drop), 1);
    }

    #[test]
    fn faulty_monitor_duplicates_and_logs() {
        let log = shared_fault_log();
        let mut plan = FaultPlan::quiet(5);
        plan.duplicate_pct = 100;
        let mut wrapped = WrappedRtl::new(addreg())
            .unwrap()
            .with_driver(DirectDriver::new().map("a", "x").map("b", "y"))
            .with_monitor(FaultyMonitor::new(
                FixedCycleMonitor::new("sum", 1),
                plan,
                log.clone(),
            ));
        let mut txn = Transaction::new();
        txn.insert("a".into(), Bv::from_u64(8, 30));
        txn.insert("b".into(), Bv::from_u64(8, 12));
        let outs = wrapped.run_transaction(&txn);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].1.to_u64(), 42);
        assert_eq!(outs[1].1.to_u64(), 42);
        assert_eq!(log.borrow().count(FaultKind::Duplicate), 1);
    }

    #[test]
    fn replay_interleaves_chronologically() {
        // An actual stream fully after the expected stream would trip a
        // skew bound; interleaved (clean case) it must not.
        let e = stream(10);
        let a = stream(10);
        let policy = ComparatorPolicy::InOrder {
            tolerance: u64::MAX,
            max_skew: Some(2),
        };
        assert!(replay(&e, &a, policy.build().as_mut()).is_clean());
    }
}
