//! Property tests (in-tree PRNG, fully offline) for the fault-injection /
//! comparator contract:
//!
//! 1. **legal schedules are invariant** — any perturbation a policy
//!    declares tolerance for leaves the verdict clean with the full match
//!    count;
//! 2. **illegal schedules are always flagged** — any realized
//!    perturbation outside the policy's tolerance produces at least one
//!    mismatch of the right family;
//! 3. **never panic** — arbitrary malformed streams through arbitrary
//!    comparator configurations must finish without panicking.
//!
//! "Realized" matters: a plan may *allow* more violence than a given seed
//! actually commits, so the oracle is computed from the perturbed stream
//! itself (displacements, latenesses, cardinality), not from the plan.

use dfv_bits::{Bv, SplitMix64};
use dfv_cosim::{
    replay, Comparator, ComparatorPolicy, FaultKind, FaultPlan, InOrderComparator,
    OutOfOrderComparator, StreamItem, StreamMismatch,
};

/// A dense stream of distinct 16-bit values (distinctness makes every
/// structural/ordering fault observable by value).
fn distinct_stream(rng: &mut SplitMix64, n: u64) -> Vec<StreamItem> {
    let base = rng.below(0x8000);
    (0..n)
        .map(|i| StreamItem {
            value: Bv::from_u64(16, base + i),
            time: i,
        })
        .collect()
}

fn untimed_in_order() -> ComparatorPolicy {
    ComparatorPolicy::InOrder {
        tolerance: u64::MAX,
        max_skew: None,
    }
}

/// Full-width tags: every distinct value is its own transaction id.
fn out_of_order(window: usize) -> ComparatorPolicy {
    ComparatorPolicy::OutOfOrder {
        tag_hi: 15,
        tag_lo: 0,
        window,
        max_skew: None,
    }
}

#[test]
fn tolerated_faults_leave_verdicts_invariant() {
    let mut rng = SplitMix64::new(0x1EA1);
    for round in 0..200u64 {
        let n = 16 + rng.below(48);
        let s = distinct_stream(&mut rng, n);
        let kind =
            [FaultKind::Stall, FaultKind::Backpressure, FaultKind::Jitter][rng.below(3) as usize];
        let policy = if rng.next_bool() {
            untimed_in_order()
        } else {
            out_of_order(rng.below(6) as usize)
        };
        let plan = FaultPlan::only(kind, rng.next_u64());
        assert!(policy.tolerates(kind, &plan), "test setup broken");
        let f = plan.injector().perturb(&s);
        let report = replay(&s, &f, policy.build().as_mut());
        assert!(
            report.is_clean(),
            "round {round}: tolerated {kind} flagged: {:?}",
            report.mismatches
        );
        assert_eq!(
            report.matched,
            s.len(),
            "round {round}: lossy clean verdict"
        );
    }
}

#[test]
fn drops_and_duplicates_are_always_flagged() {
    let mut rng = SplitMix64::new(0xD0D0);
    for round in 0..200u64 {
        let n = 16 + rng.below(48);
        let s = distinct_stream(&mut rng, n);
        let kind = [FaultKind::Drop, FaultKind::Duplicate][rng.below(2) as usize];
        let policy = if rng.next_bool() {
            untimed_in_order()
        } else {
            out_of_order(rng.below(6) as usize)
        };
        let plan = FaultPlan::only(kind, rng.next_u64());
        let mut inj = plan.injector();
        let f = inj.perturb(&s);
        if inj.log().is_empty() {
            continue; // nothing injected this seed: nothing to flag
        }
        assert!(!policy.tolerates(kind, &plan));
        let report = replay(&s, &f, policy.build().as_mut());
        assert!(
            !report.is_clean(),
            "round {round}: {kind} passed clean through {}",
            policy.describe()
        );
    }
}

#[test]
fn reorder_verdict_tracks_realized_displacement() {
    let mut rng = SplitMix64::new(0x0DD5);
    for round in 0..200u64 {
        let n = 24 + rng.below(40);
        let s = distinct_stream(&mut rng, n);
        let mut plan = FaultPlan::only(FaultKind::Reorder, rng.next_u64());
        plan.max_reorder_distance = 1 + rng.below(4) as usize;
        let mut inj = plan.injector();
        let f = inj.perturb(&s);
        if inj.log().is_empty() {
            continue;
        }
        // Oracle: each distinct value's realized displacement from its
        // issue slot.
        let realized_max = f
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let home = s.iter().position(|o| o.value == item.value).unwrap();
                home.abs_diff(i)
            })
            .max()
            .unwrap();
        assert!(realized_max >= 1, "round {round}: log nonempty but no swap");

        // A window at least as wide as the worst realized displacement
        // stays clean; a window strictly narrower must flag it.
        let wide = replay(&s, &f, out_of_order(realized_max).build().as_mut());
        assert!(
            wide.is_clean(),
            "round {round}: window {realized_max} flagged a legal reorder: {:?}",
            wide.mismatches
        );
        let narrow = replay(&s, &f, out_of_order(realized_max - 1).build().as_mut());
        assert!(
            narrow
                .mismatches
                .iter()
                .any(|m| matches!(m, StreamMismatch::WindowExceeded { .. })),
            "round {round}: displacement {realized_max} slipped past window {}",
            realized_max - 1
        );

        // And any in-order policy sees reordered distinct values as value
        // mismatches.
        let in_order = replay(&s, &f, untimed_in_order().build().as_mut());
        assert!(!in_order.is_clean(), "round {round}");
    }
}

#[test]
fn jitter_verdict_tracks_realized_lateness() {
    let mut rng = SplitMix64::new(0x717E);
    for round in 0..200u64 {
        let n = 16 + rng.below(48);
        let s = distinct_stream(&mut rng, n);
        let mut plan = FaultPlan::only(FaultKind::Jitter, rng.next_u64());
        plan.max_jitter = 1 + rng.below(8);
        let mut inj = plan.injector();
        let f = inj.perturb(&s);
        if inj.log().is_empty() {
            continue;
        }
        // Jitter preserves order and count, so lateness is per-index.
        assert_eq!(f.len(), s.len());
        let worst = s
            .iter()
            .zip(&f)
            .map(|(o, g)| g.time - o.time)
            .max()
            .unwrap();
        assert!(worst >= 1 && worst <= plan.max_jitter, "round {round}");

        let lenient = ComparatorPolicy::InOrder {
            tolerance: worst,
            max_skew: None,
        };
        assert!(
            replay(&s, &f, lenient.build().as_mut()).is_clean(),
            "round {round}: lateness {worst} flagged at tolerance {worst}"
        );
        let strict = ComparatorPolicy::InOrder {
            tolerance: worst - 1,
            max_skew: None,
        };
        let report = replay(&s, &f, strict.build().as_mut());
        assert!(
            report
                .mismatches
                .iter()
                .any(|m| matches!(m, StreamMismatch::Timing { .. })),
            "round {round}: lateness {worst} slipped past tolerance {}",
            worst - 1
        );
    }
}

#[test]
fn arbitrary_malformed_streams_never_panic() {
    let mut rng = SplitMix64::new(0x0BAD_5EED);
    for _ in 0..300u64 {
        // Arbitrary comparator configuration, including reversed and
        // out-of-range tag fields and degenerate bounds.
        let mut cmp: Box<dyn Comparator> = match rng.below(3) {
            0 => {
                let c = InOrderComparator::new(rng.next_u64());
                if rng.next_bool() {
                    Box::new(c.with_max_skew(rng.below(4) as usize))
                } else {
                    Box::new(c)
                }
            }
            _ => {
                let c = OutOfOrderComparator::new(
                    rng.below(80) as u32,
                    rng.below(80) as u32,
                    rng.below(5) as usize,
                );
                if rng.next_bool() {
                    Box::new(c.with_max_skew(rng.below(4) as usize))
                } else {
                    Box::new(c)
                }
            }
        };
        // Arbitrary width-mismatched streams pushed in arbitrary order.
        for _ in 0..rng.below(60) {
            let width = 1 + rng.below(64) as u32;
            let item = StreamItem {
                value: Bv::from_u64(width, rng.bits(width.min(63))),
                time: rng.below(1000),
            };
            if rng.next_bool() {
                cmp.push_expected(item);
            } else {
                cmp.push_actual(item);
            }
        }
        let _ = cmp.finish();
        // A comparator must also survive reuse after reconciliation.
        cmp.push_expected(StreamItem {
            value: Bv::from_u64(8, 1),
            time: 0,
        });
        let _ = cmp.finish();
    }
}
