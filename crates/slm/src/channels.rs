//! Primitive channels: signals, clocks, and bounded FIFOs.
//!
//! These are the communication primitives the paper's §4.4 says to keep
//! *orthogonal* to computation: a model's functional kernel stays a pure
//! function, and the level of communication detail (signal-level vs
//! transaction-level) can be refined without touching it.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::kernel::{EventId, Kernel, Update, UpdateQueue};

struct SignalInner<T> {
    name: String,
    current: T,
    next: RefCell<Option<T>>,
    changed: EventId,
}

impl<T: Clone + PartialEq> Update for SignalState<T> {
    fn apply(&self) -> Option<EventId> {
        let mut inner = self.0.borrow_mut();
        let next = inner.next.get_mut().take()?;
        if next != inner.current {
            inner.current = next;
            Some(inner.changed)
        } else {
            None
        }
    }
}

struct SignalState<T>(RefCell<SignalInner<T>>);

/// A SystemC-style signal: reads see the value from the previous delta
/// cycle; writes take effect at the update phase and fire a value-changed
/// event only when the value actually changes.
///
/// `Signal` is a cheap handle (`Rc` inside); clone it freely into process
/// closures.
///
/// # Example
///
/// ```
/// use dfv_slm::{Kernel, Signal};
///
/// let mut k = Kernel::new();
/// let sig: Signal<u32> = Signal::new(&mut k, "data", 0);
/// let s = sig.clone();
/// let seen = std::rc::Rc::new(std::cell::Cell::new(0));
/// let seen2 = seen.clone();
/// k.process("watcher", &[sig.changed()], move |_| {
///     seen2.set(s.read());
/// });
/// sig.write(42);
/// k.run(10).expect("no livelock");
/// assert_eq!(seen.get(), 42);
/// ```
pub struct Signal<T> {
    state: Rc<SignalState<T>>,
    updates: UpdateQueue,
}

impl<T> Clone for Signal<T> {
    fn clone(&self) -> Self {
        Signal {
            state: Rc::clone(&self.state),
            updates: Rc::clone(&self.updates),
        }
    }
}

impl<T: Clone + PartialEq + 'static> Signal<T> {
    /// Creates a signal with an initial value.
    pub fn new(k: &mut Kernel, name: impl Into<String>, init: T) -> Self {
        let name = name.into();
        let changed = k.event(format!("{name}.changed"));
        Signal {
            state: Rc::new(SignalState(RefCell::new(SignalInner {
                name,
                current: init,
                next: RefCell::new(None),
                changed,
            }))),
            updates: k.update_queue(),
        }
    }

    /// The signal's name.
    pub fn name(&self) -> String {
        self.state.0.borrow().name.clone()
    }

    /// The current (last-updated) value.
    pub fn read(&self) -> T {
        self.state.0.borrow().current.clone()
    }

    /// Schedules a write; it becomes visible after the current delta's
    /// update phase (last write in a delta wins, as in SystemC).
    pub fn write(&self, value: T) {
        {
            let inner = self.state.0.borrow();
            *inner.next.borrow_mut() = Some(value);
        }
        self.updates
            .borrow_mut()
            .push(Rc::clone(&self.state) as Rc<dyn Update>);
    }

    /// The value-changed event (subscribe processes to it).
    pub fn changed(&self) -> EventId {
        self.state.0.borrow().changed
    }
}

/// A free-running clock built from a toggling boolean signal.
///
/// # Example
///
/// ```
/// use dfv_slm::{Clock, Kernel};
///
/// let mut k = Kernel::new();
/// let clk = Clock::new(&mut k, "clk", 10);
/// let edges = std::rc::Rc::new(std::cell::Cell::new(0));
/// let e = edges.clone();
/// k.process("on_rise", &[clk.posedge()], move |_| e.set(e.get() + 1));
/// k.run(95).expect("no livelock");
/// assert_eq!(edges.get(), 10);
/// ```
pub struct Clock {
    signal: Signal<bool>,
    posedge: EventId,
    negedge: EventId,
    period: u64,
}

impl Clock {
    /// Creates a clock with the given full period (first rising edge at
    /// `period / 2`).
    ///
    /// # Panics
    ///
    /// Panics if `period < 2`.
    pub fn new(k: &mut Kernel, name: impl Into<String>, period: u64) -> Self {
        assert!(period >= 2, "clock period must be at least 2");
        let name = name.into();
        let signal = Signal::new(k, name.clone(), false);
        let posedge = k.event(format!("{name}.posedge"));
        let negedge = k.event(format!("{name}.negedge"));
        let tick = k.event(format!("{name}.tick"));
        let sig = signal.clone();
        let half = period / 2;
        k.process(format!("{name}.driver"), &[tick], move |k| {
            let v = sig.read();
            sig.write(!v);
            k.notify_now(if v { negedge } else { posedge });
            k.notify(tick, half.max(1));
        });
        k.notify(tick, half.max(1));
        Clock {
            signal,
            posedge,
            negedge,
            period,
        }
    }

    /// The clock's boolean level signal.
    pub fn signal(&self) -> &Signal<bool> {
        &self.signal
    }

    /// The rising-edge event.
    pub fn posedge(&self) -> EventId {
        self.posedge
    }

    /// The falling-edge event.
    pub fn negedge(&self) -> EventId {
        self.negedge
    }

    /// The full period.
    pub fn period(&self) -> u64 {
        self.period
    }
}

struct FifoInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    written: EventId,
    read: EventId,
}

/// A bounded FIFO channel with data-written / data-read events — the
/// transaction-level channel for loosely-timed producer/consumer models.
///
/// Processes use the non-blocking [`Fifo::try_put`] / [`Fifo::try_get`] and
/// subscribe to [`Fifo::written_event`] / [`Fifo::read_event`] to retry —
/// the method-process idiom for blocking reads/writes.
pub struct Fifo<T> {
    inner: Rc<RefCell<FifoInner<T>>>,
}

impl<T> Clone for Fifo<T> {
    fn clone(&self) -> Self {
        Fifo {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: 'static> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(k: &mut Kernel, name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        let name = name.into();
        let written = k.event(format!("{name}.written"));
        let read = k.event(format!("{name}.read"));
        Fifo {
            inner: Rc::new(RefCell::new(FifoInner {
                items: VecDeque::new(),
                capacity,
                written,
                read,
            })),
        }
    }

    /// Attempts to enqueue; fires the written event via `k` on success.
    /// Returns the item back on a full FIFO.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` if the FIFO is full.
    pub fn try_put(&self, k: &mut Kernel, item: T) -> Result<(), T> {
        let mut inner = self.inner.borrow_mut();
        if inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        let e = inner.written;
        drop(inner);
        k.note_channel_op();
        k.notify_now(e);
        Ok(())
    }

    /// Attempts to dequeue; fires the read event via `k` on success.
    pub fn try_get(&self, k: &mut Kernel) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        let item = inner.items.pop_front()?;
        let e = inner.read;
        drop(inner);
        k.note_channel_op();
        k.notify_now(e);
        Some(item)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        let inner = self.inner.borrow();
        inner.items.len() >= inner.capacity
    }

    /// Event fired whenever an item is enqueued (consumers subscribe).
    pub fn written_event(&self) -> EventId {
        self.inner.borrow().written
    }

    /// Event fired whenever an item is dequeued (producers subscribe).
    pub fn read_event(&self) -> EventId {
        self.inner.borrow().read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn signal_update_is_deferred_one_delta() {
        let mut k = Kernel::new();
        let s: Signal<u32> = Signal::new(&mut k, "s", 1);
        let observed = Rc::new(Cell::new(0));
        let start = k.event("start");
        let (s2, o2) = (s.clone(), observed.clone());
        k.process("writer", &[start], move |_| {
            s2.write(99);
            // The write is not yet visible within the same evaluation.
            o2.set(s2.read());
        });
        k.notify(start, 0);
        k.run(1).unwrap();
        assert_eq!(observed.get(), 1); // old value during evaluation
        assert_eq!(s.read(), 99); // new value after the update phase
    }

    #[test]
    fn signal_fires_changed_only_on_change() {
        let mut k = Kernel::new();
        let s: Signal<u32> = Signal::new(&mut k, "s", 5);
        let fires = Rc::new(Cell::new(0));
        let f = fires.clone();
        k.process("watch", &[s.changed()], move |_| f.set(f.get() + 1));
        let tick = k.event("tick");
        let s2 = s.clone();
        let n = Rc::new(Cell::new(0u32));
        k.process("drive", &[tick], move |k| {
            n.set(n.get() + 1);
            s2.write(7); // the same value every time: later writes are no-ops
            if n.get() < 4 {
                k.notify(tick, 1);
            }
        });
        k.notify(tick, 1);
        k.run(100).unwrap();
        assert_eq!(fires.get(), 1); // only the 5 -> 7 transition fires
    }

    #[test]
    fn last_write_in_delta_wins() {
        let mut k = Kernel::new();
        let s: Signal<u32> = Signal::new(&mut k, "s", 0);
        let start = k.event("go");
        let s2 = s.clone();
        k.process("w1", &[start], move |_| s2.write(1));
        let s3 = s.clone();
        k.process("w2", &[start], move |_| s3.write(2));
        k.notify(start, 0);
        k.run(1).unwrap();
        assert_eq!(s.read(), 2);
    }

    #[test]
    fn clock_edges_alternate() {
        let mut k = Kernel::new();
        let clk = Clock::new(&mut k, "clk", 4);
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, sig) = (log.clone(), clk.signal().clone());
        k.process("pos", &[clk.posedge()], move |k| {
            l1.borrow_mut().push((k.time(), "pos", sig.read()))
        });
        let (l2, sig2) = (log.clone(), clk.signal().clone());
        k.process("neg", &[clk.negedge()], move |k| {
            l2.borrow_mut().push((k.time(), "neg", sig2.read()))
        });
        k.run(10).unwrap();
        let log = log.borrow();
        // Edges at t = 2 (pos), 4 (neg), 6 (pos), 8 (neg), 10 (pos).
        assert_eq!(log.len(), 5);
        assert_eq!(log[0].0, 2);
        assert_eq!(log[0].1, "pos");
        assert_eq!(log[1].1, "neg");
        assert_eq!(log[2].0, 6);
    }

    #[test]
    fn fifo_producer_consumer() {
        let mut k = Kernel::new();
        let fifo: Fifo<u32> = Fifo::new(&mut k, "ch", 2);
        let produced = Rc::new(Cell::new(0u32));
        let consumed = Rc::new(RefCell::new(Vec::new()));

        let tick = k.event("tick");
        let (f1, p1) = (fifo.clone(), produced.clone());
        k.process("producer", &[tick, fifo.read_event()], move |k| {
            while p1.get() < 6 {
                if f1.try_put(k, p1.get() * 10).is_err() {
                    break; // full: retry on the read event
                }
                p1.set(p1.get() + 1);
            }
        });
        let (f2, c2) = (fifo.clone(), consumed.clone());
        k.process("consumer", &[fifo.written_event()], move |k| {
            while let Some(v) = f2.try_get(k) {
                c2.borrow_mut().push(v);
            }
        });
        k.notify(tick, 1);
        k.run(100).unwrap();
        assert_eq!(*consumed.borrow(), vec![0, 10, 20, 30, 40, 50]);
        assert!(fifo.is_empty());
    }

    #[test]
    fn fifo_capacity_enforced() {
        let mut k = Kernel::new();
        let fifo: Fifo<u8> = Fifo::new(&mut k, "ch", 1);
        assert!(fifo.try_put(&mut k, 1).is_ok());
        assert!(fifo.is_full());
        assert_eq!(fifo.try_put(&mut k, 2), Err(2));
        assert_eq!(fifo.try_get(&mut k), Some(1));
        assert!(fifo.is_empty());
        assert_eq!(fifo.try_get(&mut k), None);
    }
}
