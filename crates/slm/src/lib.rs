//! A system-level modelling kernel: discrete events, delta cycles, signals,
//! clocks, FIFOs, and transaction-level ports.
//!
//! This crate is the workspace's SystemC stand-in (the paper's SLMs are
//! written in C/C++/SystemC). It provides the three abstraction levels the
//! paper's §1 catalogue of models needs:
//!
//! * **untimed**: pure function / [`Transport`] transaction calls — fastest,
//!   used for algorithmic and software-prototyping models;
//! * **loosely timed**: processes + [`Fifo`] channels with event-driven
//!   hand-off;
//! * **cycle approximate**: [`Clock`]-driven processes sampling [`Signal`]s
//!   — close enough to RTL timing for verification reuse.
//!
//! The kernel is single-threaded and deterministic (see [`Kernel`]); models
//! are method processes (closures re-run on subscribed events).
//!
//! # Example: loosely-timed producer/consumer
//!
//! ```
//! use dfv_slm::{Fifo, Kernel};
//! use std::{cell::RefCell, rc::Rc};
//!
//! let mut k = Kernel::new();
//! let ch: Fifo<u32> = Fifo::new(&mut k, "ch", 4);
//! let go = k.event("go");
//! let (tx, seen) = (ch.clone(), Rc::new(RefCell::new(Vec::new())));
//! k.process("producer", &[go], move |k| {
//!     for i in 0..3 {
//!         let _ = tx.try_put(k, i);
//!     }
//! });
//! let (rx, log) = (ch.clone(), seen.clone());
//! k.process("consumer", &[ch.written_event()], move |k| {
//!     while let Some(v) = rx.try_get(k) {
//!         log.borrow_mut().push(v);
//!     }
//! });
//! k.notify(go, 1);
//! k.run(100).expect("no livelock");
//! assert_eq!(*seen.borrow(), vec![0, 1, 2]);
//! ```
//!
//! The kernel is hang-proof: [`Kernel::run`] returns a typed
//! [`KernelHalt`] (livelock, deadlock, or budget exhaustion) instead of
//! spinning forever — see the watchdog section of [`Kernel`]'s module
//! docs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod channels;
mod kernel;
mod tlm;

pub use channels::{Clock, Fifo, Signal};
pub use kernel::{
    EventId, Kernel, KernelHalt, KernelStats, ProcessId, Starvation, Time, Update, UpdateQueue,
    DEFAULT_DELTA_LIMIT,
};
pub use tlm::{MemReq, MemResp, TargetPort, TlmMemory, Transport};

// Re-exported so kernel users can arm the watchdog budget without a direct
// `dfv-sat` dependency.
pub use dfv_sat::{Budget, ExhaustedReason};
