//! The discrete-event simulation kernel.
//!
//! The paper notes that "design teams often use a custom simulation kernel
//! to model timing and events" in system-level models (§3.2) before SystemC
//! standardized the pattern. This is that kernel: events, delta cycles,
//! timed notifications, and *method processes* (callbacks re-run whenever a
//! subscribed event fires). Thread-style processes are written as explicit
//! state machines inside a method process — deliberately simple and
//! deterministic.
//!
//! Determinism: processes triggered in the same delta run in their
//! registration order; simultaneous timed notifications fire in schedule
//! order. Two runs of the same model produce identical traces.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::rc::Rc;

/// Identifies an event within a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u32);

/// Identifies a process within a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub(crate) u32);

/// Simulation time in abstract time units.
pub type Time = u64;

/// Cumulative kernel statistics — the denominator of the paper's
/// "SLM simulates 10x–1000x faster than RTL" claim (experiment E2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Process activations executed.
    pub activations: u64,
    /// Delta cycles completed.
    pub delta_cycles: u64,
    /// Events fired.
    pub events_fired: u64,
    /// Timed notifications processed.
    pub timed_notifications: u64,
}

/// Things a signal does at the update phase. Implemented by
/// [`crate::Signal`]'s inner state.
pub trait Update {
    /// Applies the pending write; returns the value-changed event to fire,
    /// if the value actually changed.
    fn apply(&self) -> Option<EventId>;
}

/// The shared queue signals push themselves onto when written.
pub type UpdateQueue = Rc<RefCell<Vec<Rc<dyn Update>>>>;

/// A process body: called with the kernel each time the process runs.
type ProcessBody = Box<dyn FnMut(&mut Kernel)>;

struct ProcessEntry {
    name: String,
    body: Option<ProcessBody>,
    runnable: bool,
}

/// A discrete-event simulation kernel.
///
/// # Example
///
/// ```
/// use dfv_slm::Kernel;
///
/// let mut k = Kernel::new();
/// let tick = k.event("tick");
/// let counter = std::rc::Rc::new(std::cell::Cell::new(0u32));
/// let c2 = counter.clone();
/// k.process("count", &[tick], move |k| {
///     c2.set(c2.get() + 1);
///     if c2.get() < 5 {
///         k.notify(tick, 10); // re-arm
///     }
/// });
/// k.notify(tick, 0);
/// k.run(1_000);
/// assert_eq!(counter.get(), 5);
/// assert_eq!(k.time(), 40);
/// ```
pub struct Kernel {
    time: Time,
    events: Vec<String>,
    /// event -> statically sensitive process ids.
    sensitivity: Vec<Vec<ProcessId>>,
    processes: Vec<ProcessEntry>,
    /// Min-heap of (time, seq, event).
    timed: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
    /// Events fired in the current evaluation, to trigger next delta.
    pending_events: Vec<EventId>,
    updates: UpdateQueue,
    stats: KernelStats,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("time", &self.time)
            .field("events", &self.events.len())
            .field("processes", &self.processes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// Creates an empty kernel at time 0.
    pub fn new() -> Self {
        Kernel {
            time: 0,
            events: Vec::new(),
            sensitivity: Vec::new(),
            processes: Vec::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            pending_events: Vec::new(),
            updates: Rc::new(RefCell::new(Vec::new())),
            stats: KernelStats::default(),
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Statistics so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The signal-update queue (used by [`crate::Signal`]).
    pub(crate) fn update_queue(&self) -> UpdateQueue {
        Rc::clone(&self.updates)
    }

    /// Declares a named event.
    pub fn event(&mut self, name: impl Into<String>) -> EventId {
        self.events.push(name.into());
        self.sensitivity.push(Vec::new());
        EventId(self.events.len() as u32 - 1)
    }

    /// The name of an event.
    pub fn event_name(&self, e: EventId) -> &str {
        &self.events[e.0 as usize]
    }

    /// Registers a method process statically sensitive to `sensitive`
    /// events. The body runs once per triggering delta cycle.
    pub fn process(
        &mut self,
        name: impl Into<String>,
        sensitive: &[EventId],
        body: impl FnMut(&mut Kernel) + 'static,
    ) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcessEntry {
            name: name.into(),
            body: Some(Box::new(body)),
            runnable: false,
        });
        for e in sensitive {
            self.sensitivity[e.0 as usize].push(id);
        }
        id
    }

    /// The name of a process.
    pub fn process_name(&self, p: ProcessId) -> &str {
        &self.processes[p.0 as usize].name
    }

    /// Adds sensitivity of an existing process to another event.
    pub fn sensitize(&mut self, p: ProcessId, e: EventId) {
        self.sensitivity[e.0 as usize].push(p);
    }

    /// Makes a process runnable in the next delta cycle regardless of
    /// events (a "spawn now" helper).
    pub fn trigger_process(&mut self, p: ProcessId) {
        self.processes[p.0 as usize].runnable = true;
    }

    /// Notifies an event after `delay` time units (0 = next delta cycle,
    /// SystemC's `notify(SC_ZERO_TIME)`).
    pub fn notify(&mut self, e: EventId, delay: Time) {
        if delay == 0 {
            self.pending_events.push(e);
        } else {
            self.seq += 1;
            self.timed.push(Reverse((self.time + delay, self.seq, e.0)));
        }
    }

    /// Fires an event immediately within the current evaluation phase
    /// (processes become runnable in the next delta).
    pub fn notify_now(&mut self, e: EventId) {
        self.pending_events.push(e);
    }

    fn fire_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending_events);
        for e in pending {
            self.stats.events_fired += 1;
            for &p in &self.sensitivity[e.0 as usize] {
                self.processes[p.0 as usize].runnable = true;
            }
        }
    }

    /// Runs one delta cycle: evaluation phase (all runnable processes) then
    /// update phase (signal updates, which may fire value-changed events).
    /// Returns whether anything ran.
    fn delta_cycle(&mut self) -> bool {
        // Fire events queued since the last delta (zero-delay notifies,
        // update-phase value changes, external notifications).
        self.fire_pending();
        let runnable: Vec<usize> = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() && self.updates.borrow().is_empty() {
            return false;
        }
        for i in &runnable {
            self.processes[*i].runnable = false;
        }
        for i in runnable {
            // Take the body out so the process can borrow the kernel.
            let mut body = self.processes[i].body.take().expect("not reentrant");
            self.stats.activations += 1;
            body(self);
            self.processes[i].body = Some(body);
        }
        // Update phase.
        let updates = std::mem::take(&mut *self.updates.borrow_mut());
        for u in updates {
            if let Some(e) = u.apply() {
                self.pending_events.push(e);
            }
        }
        self.stats.delta_cycles += 1;
        true
    }

    /// Runs until no activity remains or simulation time exceeds `until`.
    /// Returns the final simulation time.
    pub fn run(&mut self, until: Time) -> Time {
        loop {
            // Exhaust delta cycles at the current time.
            while self.delta_cycle() {}
            // Advance to the next timed notification.
            let Some(&Reverse((t, _, _))) = self.timed.peek() else {
                break;
            };
            if t > until {
                break;
            }
            self.time = t;
            while let Some(&Reverse((t2, _, e))) = self.timed.peek() {
                if t2 != t {
                    break;
                }
                self.timed.pop();
                self.stats.timed_notifications += 1;
                self.pending_events.push(EventId(e));
            }
            self.fire_pending();
        }
        self.time
    }

    /// Runs exactly one timestep (all deltas at the current time plus the
    /// advance to the next timed notification). Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        while self.delta_cycle() {}
        let Some(&Reverse((t, _, _))) = self.timed.peek() else {
            return false;
        };
        self.time = t;
        while let Some(&Reverse((t2, _, e))) = self.timed.peek() {
            if t2 != t {
                break;
            }
            self.timed.pop();
            self.stats.timed_notifications += 1;
            self.pending_events.push(EventId(e));
        }
        self.fire_pending();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn timed_notifications_advance_time() {
        let mut k = Kernel::new();
        let e = k.event("e");
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        k.process("p", &[e], move |_| h.set(h.get() + 1));
        k.notify(e, 5);
        k.notify(e, 10);
        k.run(100);
        assert_eq!(hits.get(), 2);
        assert_eq!(k.time(), 10);
    }

    #[test]
    fn zero_delay_is_a_delta_cycle() {
        let mut k = Kernel::new();
        let e = k.event("e");
        let order = Rc::new(RefCell::new(Vec::new()));
        let o1 = order.clone();
        k.process("a", &[e], move |_| o1.borrow_mut().push("a"));
        let o2 = order.clone();
        k.process("b", &[e], move |_| o2.borrow_mut().push("b"));
        k.notify(e, 0);
        k.run(10);
        // Both run in the same delta, in registration order; time stays 0.
        assert_eq!(*order.borrow(), vec!["a", "b"]);
        assert_eq!(k.time(), 0);
        assert_eq!(k.stats().delta_cycles, 1);
    }

    #[test]
    fn cascading_deltas_same_time() {
        let mut k = Kernel::new();
        let e1 = k.event("e1");
        let e2 = k.event("e2");
        let done = Rc::new(Cell::new(false));
        k.process("first", &[e1], move |k| k.notify_now(e2));
        let d = done.clone();
        k.process("second", &[e2], move |_| d.set(true));
        k.notify(e1, 3);
        k.run(10);
        assert!(done.get());
        assert_eq!(k.time(), 3);
        assert!(k.stats().delta_cycles >= 2);
    }

    #[test]
    fn run_respects_time_limit() {
        let mut k = Kernel::new();
        let e = k.event("e");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        k.process("p", &[e], move |k| {
            h.set(h.get() + 1);
            k.notify(e, 10);
        });
        k.notify(e, 10);
        k.run(55);
        assert_eq!(hits.get(), 5); // t = 10, 20, 30, 40, 50
        assert_eq!(k.time(), 50);
        // Continuing picks up where it left off.
        k.run(100);
        assert_eq!(hits.get(), 10);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> (Vec<u64>, KernelStats) {
            let mut k = Kernel::new();
            let a = k.event("a");
            let b = k.event("b");
            let log = Rc::new(RefCell::new(Vec::new()));
            let l1 = log.clone();
            k.process("pa", &[a], move |k| {
                l1.borrow_mut().push(k.time());
                k.notify(b, 7);
            });
            let l2 = log.clone();
            k.process("pb", &[b], move |k| {
                l2.borrow_mut().push(k.time() * 1000);
                if k.time() < 40 {
                    k.notify(a, 3);
                }
            });
            k.notify(a, 1);
            k.run(200);
            let log = log.borrow().clone();
            (log, k.stats())
        }
        let (l1, s1) = run_once();
        let (l2, s2) = run_once();
        assert_eq!(l1, l2);
        assert_eq!(s1, s2);
        assert!(!l1.is_empty());
    }

    #[test]
    fn step_advances_one_timestep() {
        let mut k = Kernel::new();
        let e = k.event("e");
        k.process("p", &[e], |_| {});
        k.notify(e, 4);
        k.notify(e, 9);
        assert!(k.step());
        assert_eq!(k.time(), 4);
        assert!(k.step());
        assert_eq!(k.time(), 9);
        // One more step to drain the last delta, then idle.
        let _ = k.step();
        assert!(!k.step());
    }
}
