//! The discrete-event simulation kernel.
//!
//! The paper notes that "design teams often use a custom simulation kernel
//! to model timing and events" in system-level models (§3.2) before SystemC
//! standardized the pattern. This is that kernel: events, delta cycles,
//! timed notifications, and *method processes* (callbacks re-run whenever a
//! subscribed event fires). Thread-style processes are written as explicit
//! state machines inside a method process — deliberately simple and
//! deterministic.
//!
//! Determinism: processes triggered in the same delta run in their
//! registration order; simultaneous timed notifications fire in schedule
//! order. Two runs of the same model produce identical traces.
//!
//! # Watchdogs
//!
//! A co-simulation must stay diagnostic under hostile interface behavior,
//! so the kernel never hangs silently:
//!
//! * a **delta-cycle limit per timestep** (default
//!   [`DEFAULT_DELTA_LIMIT`], always on) converts a zero-delay
//!   self-notify livelock into [`KernelHalt::Livelock`], naming the
//!   processes still spinning;
//! * a **quiescence/deadlock diagnostic** ([`Kernel::deadlock_diagnostic`],
//!   or [`Kernel::run_expecting_activity`] to make it an error) names the
//!   starved processes and the events they are sensitized to when the
//!   event queue drains while processes still wait;
//! * a **wall-clock/activation budget** reusing [`dfv_sat::Budget`]
//!   (the same governance type the proof stack meters solver calls with)
//!   trips [`KernelHalt::BudgetExhausted`] instead of running away.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

use dfv_obs::{ObsHook, SharedRecorder};
use dfv_sat::{Budget, ExhaustedReason};

/// How many delta cycles run between wall-clock polls when a deadline
/// is armed — the same stride [`dfv_sat`]'s solver uses, so watchdog
/// overhead never distorts SLM-vs-RTL speed comparisons.
const WALL_POLL_STRIDE: u32 = 64;

/// Identifies an event within a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub(crate) u32);

/// Identifies a process within a [`Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub(crate) u32);

/// Simulation time in abstract time units.
pub type Time = u64;

/// Default maximum delta cycles per timestep before [`Kernel::run`] gives
/// up with [`KernelHalt::Livelock`]. Generous: a well-formed model settles
/// in a handful of deltas per timestep; only a zero-delay notification loop
/// gets anywhere near this.
pub const DEFAULT_DELTA_LIMIT: u64 = 65_536;

/// One starved process in a [`KernelHalt::Deadlock`] diagnostic: the
/// process and the events it is sensitized to, none of which can ever fire
/// again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Starvation {
    /// The waiting process.
    pub process: String,
    /// The events it is sensitized to.
    pub events: Vec<String>,
}

impl fmt::Display for Starvation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} waiting on [{}]",
            self.process,
            self.events.join(", ")
        )
    }
}

/// Why the kernel halted instead of running to quiescence or the time
/// bound — the typed replacement for a silent return or an infinite loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelHalt {
    /// The delta-cycle limit tripped at one timestep: some set of processes
    /// keeps re-notifying itself with zero delay and simulation time can
    /// never advance.
    Livelock {
        /// The stuck timestep.
        time: Time,
        /// Delta cycles executed at this timestep before giving up.
        deltas: u64,
        /// Processes that were still becoming runnable when the limit hit.
        runnable: Vec<String>,
    },
    /// The event queue drained while processes still wait: nothing can ever
    /// make them runnable again. Reported by
    /// [`Kernel::run_expecting_activity`] / [`Kernel::deadlock_diagnostic`].
    Deadlock {
        /// When activity died.
        time: Time,
        /// Every waiting process with the events it is sensitized to.
        starved: Vec<Starvation>,
    },
    /// The configured [`Budget`] ran out (wall clock, or the activation cap
    /// carried in [`Budget::max_propagations`]).
    BudgetExhausted {
        /// Simulation time when the budget tripped.
        time: Time,
        /// Which resource ran out.
        reason: ExhaustedReason,
    },
}

impl fmt::Display for KernelHalt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelHalt::Livelock {
                time,
                deltas,
                runnable,
            } => write!(
                f,
                "livelock at t={time}: {deltas} delta cycles without time advancing \
                 (spinning: {})",
                if runnable.is_empty() {
                    "<update-phase only>".to_string()
                } else {
                    runnable.join(", ")
                }
            ),
            KernelHalt::Deadlock { time, starved } => {
                write!(f, "deadlock at t={time}: event queue empty but ")?;
                let rendered: Vec<String> = starved.iter().map(|s| s.to_string()).collect();
                write!(f, "{}", rendered.join("; "))
            }
            KernelHalt::BudgetExhausted { time, reason } => {
                let what = match reason {
                    ExhaustedReason::Propagations => "activation budget exhausted",
                    _ => "wall-clock budget exhausted",
                };
                write!(f, "{what} at t={time}")
            }
        }
    }
}

impl std::error::Error for KernelHalt {}

/// Cumulative kernel statistics — the denominator of the paper's
/// "SLM simulates 10x–1000x faster than RTL" claim (experiment E2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Process activations executed.
    pub activations: u64,
    /// Delta cycles completed.
    pub delta_cycles: u64,
    /// Events fired.
    pub events_fired: u64,
    /// Timed notifications processed.
    pub timed_notifications: u64,
    /// Channel operations (FIFO puts/gets) executed through the kernel.
    pub channel_ops: u64,
}

/// Armed watchdog state for one `run`/`step` call. The wall-clock tick
/// counter lives here (not in a local) so the poll stride spans every
/// timestep of the call.
struct Watchdogs {
    cutoff: Option<Instant>,
    act_cap: Option<u64>,
    clock_ticks: u32,
}

impl Watchdogs {
    fn unarmed() -> Self {
        Watchdogs {
            cutoff: None,
            act_cap: None,
            clock_ticks: 0,
        }
    }
}

/// Things a signal does at the update phase. Implemented by
/// [`crate::Signal`]'s inner state.
pub trait Update {
    /// Applies the pending write; returns the value-changed event to fire,
    /// if the value actually changed.
    fn apply(&self) -> Option<EventId>;
}

/// The shared queue signals push themselves onto when written.
pub type UpdateQueue = Rc<RefCell<Vec<Rc<dyn Update>>>>;

/// A process body: called with the kernel each time the process runs.
type ProcessBody = Box<dyn FnMut(&mut Kernel)>;

struct ProcessEntry {
    name: String,
    body: Option<ProcessBody>,
    runnable: bool,
}

/// A discrete-event simulation kernel.
///
/// # Example
///
/// ```
/// use dfv_slm::Kernel;
///
/// let mut k = Kernel::new();
/// let tick = k.event("tick");
/// let counter = std::rc::Rc::new(std::cell::Cell::new(0u32));
/// let c2 = counter.clone();
/// k.process("count", &[tick], move |k| {
///     c2.set(c2.get() + 1);
///     if c2.get() < 5 {
///         k.notify(tick, 10); // re-arm
///     }
/// });
/// k.notify(tick, 0);
/// k.run(1_000).expect("no livelock");
/// assert_eq!(counter.get(), 5);
/// assert_eq!(k.time(), 40);
/// ```
pub struct Kernel {
    time: Time,
    events: Vec<String>,
    /// event -> statically sensitive process ids.
    sensitivity: Vec<Vec<ProcessId>>,
    processes: Vec<ProcessEntry>,
    /// Min-heap of (time, seq, event).
    timed: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
    /// Events fired in the current evaluation, to trigger next delta.
    pending_events: Vec<EventId>,
    updates: UpdateQueue,
    stats: KernelStats,
    /// Livelock watchdog: max delta cycles at one timestep.
    delta_limit: u64,
    /// Optional wall-clock/activation budget for `run`/`step`.
    budget: Option<Budget>,
    /// Optional observability sink for stats deltas and halt events.
    obs: ObsHook,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("time", &self.time)
            .field("events", &self.events.len())
            .field("processes", &self.processes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// Creates an empty kernel at time 0.
    pub fn new() -> Self {
        Kernel {
            time: 0,
            events: Vec::new(),
            sensitivity: Vec::new(),
            processes: Vec::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            pending_events: Vec::new(),
            updates: Rc::new(RefCell::new(Vec::new())),
            stats: KernelStats::default(),
            delta_limit: DEFAULT_DELTA_LIMIT,
            budget: None,
            obs: ObsHook::none(),
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Sets the livelock watchdog: the maximum delta cycles the kernel may
    /// execute at a single timestep before [`Kernel::run`] returns
    /// [`KernelHalt::Livelock`]. Defaults to [`DEFAULT_DELTA_LIMIT`]; use
    /// `u64::MAX` to disable (not recommended).
    pub fn set_delta_limit(&mut self, limit: u64) {
        self.delta_limit = limit;
    }

    /// Builder form of [`Kernel::set_delta_limit`].
    pub fn with_delta_limit(mut self, limit: u64) -> Self {
        self.set_delta_limit(limit);
        self
    }

    /// The current delta-cycle limit per timestep.
    pub fn delta_limit(&self) -> u64 {
        self.delta_limit
    }

    /// Arms the wall-clock watchdog: `run`/`step` return
    /// [`KernelHalt::BudgetExhausted`] once the budget's `deadline` /
    /// `timeout` passes (`timeout` is measured from each `run`/`step`
    /// call's start). [`Budget::max_propagations`], when set, caps process
    /// *activations* per call — the kernel's unit of elementary work. The
    /// solver-only `max_conflicts` field is ignored.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = Some(budget);
    }

    /// Builder form of [`Kernel::set_budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.set_budget(budget);
        self
    }

    /// Statistics so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Attaches a recorder; each `run`/`step` call then reports the
    /// work it did as `slm.*` counter deltas (activations, delta
    /// cycles, events fired, timed notifications, channel ops), and
    /// halts surface as `slm.halt` events. Nothing recorded carries a
    /// wall-clock value, so recorded streams stay reproducible.
    pub fn set_recorder(&mut self, rec: SharedRecorder) {
        self.obs.set(rec);
    }

    /// Bumps the channel-operation counter (FIFO puts/gets report
    /// through here so channel traffic shows up in [`KernelStats`]).
    pub(crate) fn note_channel_op(&mut self) {
        self.stats.channel_ops += 1;
    }

    /// Emits the difference between `before` and the current stats to
    /// the attached recorder (no-op when none is attached).
    fn record_stats_delta(&self, before: KernelStats) {
        let s = self.stats;
        self.obs
            .add("slm.activations", s.activations - before.activations);
        self.obs
            .add("slm.delta_cycles", s.delta_cycles - before.delta_cycles);
        self.obs
            .add("slm.events_fired", s.events_fired - before.events_fired);
        self.obs.add(
            "slm.timed_notifications",
            s.timed_notifications - before.timed_notifications,
        );
        self.obs
            .add("slm.channel_ops", s.channel_ops - before.channel_ops);
    }

    /// The signal-update queue (used by [`crate::Signal`]).
    pub(crate) fn update_queue(&self) -> UpdateQueue {
        Rc::clone(&self.updates)
    }

    /// Declares a named event.
    pub fn event(&mut self, name: impl Into<String>) -> EventId {
        self.events.push(name.into());
        self.sensitivity.push(Vec::new());
        EventId(self.events.len() as u32 - 1)
    }

    /// The name of an event.
    pub fn event_name(&self, e: EventId) -> &str {
        &self.events[e.0 as usize]
    }

    /// Registers a method process statically sensitive to `sensitive`
    /// events. The body runs once per triggering delta cycle.
    pub fn process(
        &mut self,
        name: impl Into<String>,
        sensitive: &[EventId],
        body: impl FnMut(&mut Kernel) + 'static,
    ) -> ProcessId {
        let id = ProcessId(self.processes.len() as u32);
        self.processes.push(ProcessEntry {
            name: name.into(),
            body: Some(Box::new(body)),
            runnable: false,
        });
        for e in sensitive {
            self.sensitivity[e.0 as usize].push(id);
        }
        id
    }

    /// The name of a process.
    pub fn process_name(&self, p: ProcessId) -> &str {
        &self.processes[p.0 as usize].name
    }

    /// Adds sensitivity of an existing process to another event.
    pub fn sensitize(&mut self, p: ProcessId, e: EventId) {
        self.sensitivity[e.0 as usize].push(p);
    }

    /// Makes a process runnable in the next delta cycle regardless of
    /// events (a "spawn now" helper).
    pub fn trigger_process(&mut self, p: ProcessId) {
        self.processes[p.0 as usize].runnable = true;
    }

    /// Notifies an event after `delay` time units (0 = next delta cycle,
    /// SystemC's `notify(SC_ZERO_TIME)`).
    pub fn notify(&mut self, e: EventId, delay: Time) {
        if delay == 0 {
            self.pending_events.push(e);
        } else {
            self.seq += 1;
            self.timed.push(Reverse((self.time + delay, self.seq, e.0)));
        }
    }

    /// Fires an event immediately within the current evaluation phase
    /// (processes become runnable in the next delta).
    pub fn notify_now(&mut self, e: EventId) {
        self.pending_events.push(e);
    }

    fn fire_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending_events);
        for e in pending {
            self.stats.events_fired += 1;
            for &p in &self.sensitivity[e.0 as usize] {
                self.processes[p.0 as usize].runnable = true;
            }
        }
    }

    /// Runs one delta cycle: evaluation phase (all runnable processes) then
    /// update phase (signal updates, which may fire value-changed events).
    /// Returns whether anything ran.
    fn delta_cycle(&mut self) -> bool {
        // Fire events queued since the last delta (zero-delay notifies,
        // update-phase value changes, external notifications).
        self.fire_pending();
        let runnable: Vec<usize> = self
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() && self.updates.borrow().is_empty() {
            return false;
        }
        for i in &runnable {
            self.processes[*i].runnable = false;
        }
        for i in runnable {
            // Take the body out so the process can borrow the kernel.
            let mut body = self.processes[i].body.take().expect("not reentrant");
            self.stats.activations += 1;
            body(self);
            self.processes[i].body = Some(body);
        }
        // Update phase.
        let updates = std::mem::take(&mut *self.updates.borrow_mut());
        for u in updates {
            if let Some(e) = u.apply() {
                self.pending_events.push(e);
            }
        }
        self.stats.delta_cycles += 1;
        true
    }

    /// The processes that are (or are about to become) runnable — the
    /// livelock suspects when the delta limit trips.
    fn runnable_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        let mut push = |name: &str| {
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        };
        for (i, p) in self.processes.iter().enumerate() {
            if p.runnable {
                push(&self.processes[i].name);
            }
        }
        for e in &self.pending_events {
            for &p in &self.sensitivity[e.0 as usize] {
                push(&self.processes[p.0 as usize].name);
            }
        }
        names
    }

    /// The armed watchdog state for one `run`/`step` call.
    fn arm_watchdogs(&self, now: Instant) -> Watchdogs {
        let Some(b) = self.budget else {
            return Watchdogs::unarmed();
        };
        let cutoff = match (b.deadline, b.timeout.map(|t| now + t)) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (d, t) => d.or(t),
        };
        let act_cap = b
            .max_propagations
            .map(|n| self.stats.activations.saturating_add(n));
        Watchdogs {
            cutoff,
            act_cap,
            clock_ticks: 0,
        }
    }

    /// Exhausts the delta cycles at the current timestep under the
    /// watchdogs. `Ok(())` means the timestep settled. `wd` persists
    /// across the timesteps of one `run` call so the wall-clock poll
    /// stride amortizes over the whole call, not per timestep.
    fn settle_timestep(&mut self, wd: &mut Watchdogs) -> Result<(), KernelHalt> {
        let mut deltas: u64 = 0;
        while self.delta_cycle() {
            deltas += 1;
            if deltas >= self.delta_limit {
                return Err(KernelHalt::Livelock {
                    time: self.time,
                    deltas,
                    runnable: self.runnable_names(),
                });
            }
            if let Some(cap) = wd.act_cap {
                if self.stats.activations > cap {
                    return Err(KernelHalt::BudgetExhausted {
                        time: self.time,
                        reason: ExhaustedReason::Propagations,
                    });
                }
            }
            // The deadline is polled every WALL_POLL_STRIDE deltas (and
            // once on the first delta, via clock_ticks starting at 0) —
            // the same amortization as dfv-sat's solve_budgeted, so an
            // armed watchdog costs no syscall per delta cycle.
            if let Some(c) = wd.cutoff {
                if wd.clock_ticks == 0 {
                    if Instant::now() >= c {
                        return Err(KernelHalt::BudgetExhausted {
                            time: self.time,
                            reason: ExhaustedReason::Deadline,
                        });
                    }
                    wd.clock_ticks = WALL_POLL_STRIDE;
                }
                wd.clock_ticks -= 1;
            }
        }
        Ok(())
    }

    /// Pops every timed notification scheduled for the earliest pending
    /// time and fires them. Returns `false` when the queue is empty.
    fn advance_to_next_timed(&mut self) -> bool {
        let Some(&Reverse((t, _, _))) = self.timed.peek() else {
            return false;
        };
        self.time = t;
        while let Some(&Reverse((t2, _, e))) = self.timed.peek() {
            if t2 != t {
                break;
            }
            self.timed.pop();
            self.stats.timed_notifications += 1;
            self.pending_events.push(EventId(e));
        }
        self.fire_pending();
        true
    }

    /// Runs until no activity remains or simulation time exceeds `until`.
    /// Returns the final simulation time on quiescence (or on reaching the
    /// bound), and a typed [`KernelHalt`] when a watchdog trips — a
    /// zero-delay livelock or a budget exhaustion is an error, never a
    /// hang.
    ///
    /// # Errors
    ///
    /// [`KernelHalt::Livelock`] when one timestep exceeds the delta-cycle
    /// limit; [`KernelHalt::BudgetExhausted`] when the armed [`Budget`]
    /// runs out.
    pub fn run(&mut self, until: Time) -> Result<Time, KernelHalt> {
        let before = self.stats;
        self.obs.begin_span("slm.run");
        let result = self.run_inner(until);
        self.record_stats_delta(before);
        if let Err(halt) = &result {
            self.obs.event("slm.halt", || halt.to_string());
        }
        self.obs.end_span("slm.run");
        result
    }

    fn run_inner(&mut self, until: Time) -> Result<Time, KernelHalt> {
        let mut wd = self.arm_watchdogs(Instant::now());
        loop {
            // Exhaust delta cycles at the current time.
            self.settle_timestep(&mut wd)?;
            // Advance to the next timed notification.
            let Some(&Reverse((t, _, _))) = self.timed.peek() else {
                break;
            };
            if t > until {
                break;
            }
            self.advance_to_next_timed();
        }
        Ok(self.time)
    }

    /// Like [`Kernel::run`], but treats *early quiescence* as an error: if
    /// the event queue drains strictly before `until` while processes are
    /// still sensitized to events, returns [`KernelHalt::Deadlock`] naming
    /// the starved processes — the §3.2 "hung handshake" made diagnostic.
    ///
    /// # Errors
    ///
    /// Everything [`Kernel::run`] returns, plus [`KernelHalt::Deadlock`].
    pub fn run_expecting_activity(&mut self, until: Time) -> Result<Time, KernelHalt> {
        let t = self.run(until)?;
        if t < until && self.timed.is_empty() {
            if let Some(halt) = self.deadlock_diagnostic() {
                return Err(halt);
            }
        }
        Ok(t)
    }

    /// Runs exactly one timestep (all deltas at the current time plus the
    /// advance to the next timed notification). `Ok(false)` means idle.
    ///
    /// # Errors
    ///
    /// Same watchdogs as [`Kernel::run`].
    pub fn step(&mut self) -> Result<bool, KernelHalt> {
        let before = self.stats;
        let mut wd = self.arm_watchdogs(Instant::now());
        let settled = self.settle_timestep(&mut wd);
        self.record_stats_delta(before);
        match settled {
            Ok(()) => Ok(self.advance_to_next_timed()),
            Err(halt) => {
                self.obs.event("slm.halt", || halt.to_string());
                Err(halt)
            }
        }
    }

    /// Whether the kernel is quiescent: no runnable process, no pending
    /// event, no queued signal update, and an empty timed queue. Running a
    /// quiescent kernel does nothing.
    pub fn is_quiescent(&self) -> bool {
        self.timed.is_empty()
            && self.pending_events.is_empty()
            && self.updates.borrow().is_empty()
            && self.processes.iter().all(|p| !p.runnable)
    }

    /// Every process sensitized to at least one event, with those events'
    /// names — the processes that are starved if the kernel is quiescent.
    pub fn starvation(&self) -> Vec<Starvation> {
        let mut waits: Vec<Vec<String>> = vec![Vec::new(); self.processes.len()];
        for (e, procs) in self.sensitivity.iter().enumerate() {
            for p in procs {
                waits[p.0 as usize].push(self.events[e].clone());
            }
        }
        self.processes
            .iter()
            .zip(waits)
            .filter(|(_, events)| !events.is_empty())
            .map(|(p, events)| Starvation {
                process: p.name.clone(),
                events,
            })
            .collect()
    }

    /// The quiescence/deadlock diagnostic: if the kernel is quiescent while
    /// processes still wait on events, returns [`KernelHalt::Deadlock`]
    /// naming each starved process and its events. `None` when the kernel
    /// still has work queued, or when no process waits on anything.
    pub fn deadlock_diagnostic(&self) -> Option<KernelHalt> {
        if !self.is_quiescent() {
            return None;
        }
        let starved = self.starvation();
        if starved.is_empty() {
            return None;
        }
        Some(KernelHalt::Deadlock {
            time: self.time,
            starved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn timed_notifications_advance_time() {
        let mut k = Kernel::new();
        let e = k.event("e");
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        k.process("p", &[e], move |_| h.set(h.get() + 1));
        k.notify(e, 5);
        k.notify(e, 10);
        k.run(100).unwrap();
        assert_eq!(hits.get(), 2);
        assert_eq!(k.time(), 10);
    }

    #[test]
    fn zero_delay_is_a_delta_cycle() {
        let mut k = Kernel::new();
        let e = k.event("e");
        let order = Rc::new(RefCell::new(Vec::new()));
        let o1 = order.clone();
        k.process("a", &[e], move |_| o1.borrow_mut().push("a"));
        let o2 = order.clone();
        k.process("b", &[e], move |_| o2.borrow_mut().push("b"));
        k.notify(e, 0);
        k.run(10).unwrap();
        // Both run in the same delta, in registration order; time stays 0.
        assert_eq!(*order.borrow(), vec!["a", "b"]);
        assert_eq!(k.time(), 0);
        assert_eq!(k.stats().delta_cycles, 1);
    }

    #[test]
    fn cascading_deltas_same_time() {
        let mut k = Kernel::new();
        let e1 = k.event("e1");
        let e2 = k.event("e2");
        let done = Rc::new(Cell::new(false));
        k.process("first", &[e1], move |k| k.notify_now(e2));
        let d = done.clone();
        k.process("second", &[e2], move |_| d.set(true));
        k.notify(e1, 3);
        k.run(10).unwrap();
        assert!(done.get());
        assert_eq!(k.time(), 3);
        assert!(k.stats().delta_cycles >= 2);
    }

    #[test]
    fn run_respects_time_limit() {
        let mut k = Kernel::new();
        let e = k.event("e");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        k.process("p", &[e], move |k| {
            h.set(h.get() + 1);
            k.notify(e, 10);
        });
        k.notify(e, 10);
        k.run(55).unwrap();
        assert_eq!(hits.get(), 5); // t = 10, 20, 30, 40, 50
        assert_eq!(k.time(), 50);
        // Continuing picks up where it left off.
        k.run(100).unwrap();
        assert_eq!(hits.get(), 10);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run_once() -> (Vec<u64>, KernelStats) {
            let mut k = Kernel::new();
            let a = k.event("a");
            let b = k.event("b");
            let log = Rc::new(RefCell::new(Vec::new()));
            let l1 = log.clone();
            k.process("pa", &[a], move |k| {
                l1.borrow_mut().push(k.time());
                k.notify(b, 7);
            });
            let l2 = log.clone();
            k.process("pb", &[b], move |k| {
                l2.borrow_mut().push(k.time() * 1000);
                if k.time() < 40 {
                    k.notify(a, 3);
                }
            });
            k.notify(a, 1);
            k.run(200).unwrap();
            let log = log.borrow().clone();
            (log, k.stats())
        }
        let (l1, s1) = run_once();
        let (l2, s2) = run_once();
        assert_eq!(l1, l2);
        assert_eq!(s1, s2);
        assert!(!l1.is_empty());
    }

    /// Satellite regression: a zero-delay self-notify loop used to spin
    /// `run` forever. The default-on delta limit must catch it in bounded
    /// form, naming the spinning process.
    #[test]
    fn zero_delay_self_notify_livelock_is_caught() {
        let mut k = Kernel::new();
        let e = k.event("ping");
        k.process("spinner", &[e], move |k| k.notify_now(e));
        k.notify(e, 0);
        let halt = k.run(100).unwrap_err();
        let KernelHalt::Livelock {
            time,
            deltas,
            runnable,
        } = &halt
        else {
            panic!("expected Livelock, got {halt:?}");
        };
        assert_eq!(*time, 0, "time never advanced");
        assert_eq!(*deltas, DEFAULT_DELTA_LIMIT, "default limit is on");
        assert_eq!(runnable, &["spinner"]);
        assert!(halt.to_string().contains("spinner"), "{halt}");
    }

    #[test]
    fn step_hits_the_same_livelock_watchdog() {
        let mut k = Kernel::new().with_delta_limit(64);
        let e = k.event("ping");
        k.process("spinner", &[e], move |k| k.notify_now(e));
        k.notify(e, 0);
        assert!(matches!(k.step(), Err(KernelHalt::Livelock { .. })));
    }

    #[test]
    fn mutual_zero_delay_loop_names_both_processes() {
        let mut k = Kernel::new().with_delta_limit(1000);
        let a = k.event("a");
        let b = k.event("b");
        k.process("pa", &[a], move |k| k.notify_now(b));
        k.process("pb", &[b], move |k| k.notify_now(a));
        k.notify(a, 5);
        let halt = k.run(100).unwrap_err();
        let KernelHalt::Livelock { time, runnable, .. } = halt else {
            panic!("expected Livelock");
        };
        assert_eq!(time, 5);
        // The two processes alternate; both show up across pending + flags.
        assert!(runnable.contains(&"pa".to_string()) || runnable.contains(&"pb".to_string()));
    }

    #[test]
    fn deadlock_diagnostic_names_starved_processes_and_events() {
        let mut k = Kernel::new();
        let never = k.event("ch.written");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        k.process("consumer", &[never], move |_| h.set(h.get() + 1));
        // A producer that runs once at t=1 but never notifies the consumer.
        let tick = k.event("tick");
        k.process("producer", &[tick], |_| {});
        k.notify(tick, 1);

        // Lenient run: quiesces silently at t=1.
        assert_eq!(k.run(100), Ok(1));
        assert_eq!(hits.get(), 0);
        assert!(k.is_quiescent());

        // The diagnostic names both waiting processes with their events.
        let halt = k.deadlock_diagnostic().expect("quiescent with waiters");
        let KernelHalt::Deadlock { time, starved } = &halt else {
            panic!("expected Deadlock");
        };
        assert_eq!(*time, 1);
        let consumer = starved
            .iter()
            .find(|s| s.process == "consumer")
            .expect("consumer starved");
        assert_eq!(consumer.events, vec!["ch.written".to_string()]);
        assert!(halt.to_string().contains("consumer"), "{halt}");
        assert!(halt.to_string().contains("ch.written"), "{halt}");

        // Strict run surfaces it as a typed error.
        let mut k2 = Kernel::new();
        let never2 = k2.event("resp");
        k2.process("waiter", &[never2], |_| {});
        let err = k2.run_expecting_activity(50).unwrap_err();
        assert!(matches!(err, KernelHalt::Deadlock { .. }));
    }

    #[test]
    fn quiescent_kernel_without_waiters_is_not_a_deadlock() {
        let mut k = Kernel::new();
        assert!(k.is_quiescent());
        assert!(k.deadlock_diagnostic().is_none());
        assert_eq!(k.run_expecting_activity(10), Ok(0));
    }

    #[test]
    fn wall_clock_budget_halts_an_endless_timed_loop() {
        use std::time::Duration;
        let mut k =
            Kernel::new().with_budget(dfv_sat::Budget::unlimited().with_timeout(Duration::ZERO));
        let e = k.event("e");
        k.process("p", &[e], move |k| k.notify(e, 1));
        k.notify(e, 1);
        let halt = k.run(u64::MAX / 2).unwrap_err();
        assert!(
            matches!(
                halt,
                KernelHalt::BudgetExhausted {
                    reason: ExhaustedReason::Deadline,
                    ..
                }
            ),
            "got {halt:?}"
        );
        assert!(halt.to_string().contains("wall-clock"), "{halt}");
    }

    #[test]
    fn activation_budget_caps_work_per_run_call() {
        let mut k = Kernel::new().with_budget(dfv_sat::Budget::unlimited().with_propagations(10));
        let e = k.event("e");
        let hits = Rc::new(Cell::new(0u64));
        let h = hits.clone();
        k.process("p", &[e], move |k| {
            h.set(h.get() + 1);
            k.notify(e, 1);
        });
        k.notify(e, 1);
        let halt = k.run(u64::MAX / 2).unwrap_err();
        assert!(matches!(
            halt,
            KernelHalt::BudgetExhausted {
                reason: ExhaustedReason::Propagations,
                ..
            }
        ));
        // Bounded work: the cap is on activations, give or take one delta.
        assert!(hits.get() <= 12, "ran {} activations", hits.get());
    }

    #[test]
    fn recorder_sees_stats_deltas_and_halt_events() {
        let rec = dfv_obs::MemoryRecorder::shared();
        let mut k = Kernel::new();
        k.set_recorder(rec.clone());
        let e = k.event("e");
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        k.process("p", &[e], move |k| {
            h.set(h.get() + 1);
            if h.get() < 3 {
                k.notify(e, 10);
            }
        });
        k.notify(e, 10);
        k.run(100).unwrap();
        {
            let r = rec.lock().unwrap();
            let s = k.stats();
            assert_eq!(r.counter("slm.activations"), s.activations);
            assert_eq!(r.counter("slm.delta_cycles"), s.delta_cycles);
            assert_eq!(r.counter("slm.timed_notifications"), s.timed_notifications);
            assert!(r.events_of("slm.halt").is_empty());
        }
        // A second run records only the new work (deltas, not totals).
        let before = rec.lock().unwrap().counter("slm.activations");
        k.run(200).unwrap();
        assert_eq!(rec.lock().unwrap().counter("slm.activations"), before);

        // A livelock shows up as a typed halt event.
        let rec2 = dfv_obs::MemoryRecorder::shared();
        let mut k2 = Kernel::new().with_delta_limit(16);
        k2.set_recorder(rec2.clone());
        let ping = k2.event("ping");
        k2.process("spinner", &[ping], move |k| k.notify_now(ping));
        k2.notify(ping, 0);
        assert!(k2.run(10).is_err());
        let r2 = rec2.lock().unwrap();
        assert_eq!(r2.events_of("slm.halt").len(), 1);
        assert!(r2.events_of("slm.halt")[0].contains("livelock"));
    }

    #[test]
    fn amortized_wall_clock_still_halts_nonzero_timeouts() {
        use std::time::Duration;
        // A 2 ms deadline with the 64-delta poll stride: the endless
        // loop must still halt (within the stride, not never).
        let mut k = Kernel::new()
            .with_budget(dfv_sat::Budget::unlimited().with_timeout(Duration::from_millis(2)));
        let e = k.event("e");
        k.process("p", &[e], move |k| k.notify(e, 1));
        k.notify(e, 1);
        let halt = k.run(u64::MAX / 2).unwrap_err();
        assert!(matches!(
            halt,
            KernelHalt::BudgetExhausted {
                reason: ExhaustedReason::Deadline,
                ..
            }
        ));
    }

    #[test]
    fn step_advances_one_timestep() {
        let mut k = Kernel::new();
        let e = k.event("e");
        k.process("p", &[e], |_| {});
        k.notify(e, 4);
        k.notify(e, 9);
        assert!(k.step().unwrap());
        assert_eq!(k.time(), 4);
        assert!(k.step().unwrap());
        assert_eq!(k.time(), 9);
        // One more step to drain the last delta, then idle.
        let _ = k.step();
        assert!(!k.step().unwrap());
    }
}
