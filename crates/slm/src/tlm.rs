//! Transaction-level modelling: blocking transport as plain function calls.
//!
//! The paper's §4.4 ("Orthogonal Communication and Computation") and its
//! reference [1] describe transaction-based modelling: functional blocks
//! exchange whole transactions through interfaces, so the same
//! computational kernel can be reused from untimed architectural models
//! down to verification models. [`Transport`] is that interface in its
//! untimed form: a request/response function call, with no clocks or
//! events — the fastest abstraction level in experiment E2.

use std::cell::RefCell;
use std::rc::Rc;

/// Blocking transaction transport: the initiator calls, the target
/// computes, the response returns — zero simulated time.
pub trait Transport<Req, Resp> {
    /// Processes one transaction.
    fn transport(&mut self, req: Req) -> Resp;
}

impl<Req, Resp, F: FnMut(Req) -> Resp> Transport<Req, Resp> for F {
    fn transport(&mut self, req: Req) -> Resp {
        self(req)
    }
}

/// A shareable binding to a transport target, so several initiator
/// processes can call the same target model.
pub struct TargetPort<Req, Resp> {
    target: Rc<RefCell<dyn Transport<Req, Resp>>>,
}

impl<Req, Resp> Clone for TargetPort<Req, Resp> {
    fn clone(&self) -> Self {
        TargetPort {
            target: Rc::clone(&self.target),
        }
    }
}

impl<Req: 'static, Resp: 'static> TargetPort<Req, Resp> {
    /// Wraps a target model.
    pub fn new(target: impl Transport<Req, Resp> + 'static) -> Self {
        TargetPort {
            target: Rc::new(RefCell::new(target)),
        }
    }

    /// Issues one transaction.
    pub fn transport(&self, req: Req) -> Resp {
        self.target.borrow_mut().transport(req)
    }
}

/// A memory transaction for the canonical register/memory target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemReq {
    /// Read one word.
    Read {
        /// Word address.
        addr: usize,
    },
    /// Write one word.
    Write {
        /// Word address.
        addr: usize,
        /// Data to store.
        data: u64,
    },
}

/// Response to a [`MemReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResp {
    /// Read data.
    Data(u64),
    /// Write acknowledged.
    Ack,
    /// Address out of range.
    Error,
}

/// The paper's §3.2 "memory ... simply a static array in C (accessed and
/// written without any delay)": a zero-latency TLM memory target. The RTL
/// it abstracts has a one-cycle read delay — the canonical timing
/// divergence that transactors must absorb.
#[derive(Debug, Clone)]
pub struct TlmMemory {
    words: Vec<u64>,
}

impl TlmMemory {
    /// A memory of `depth` words, zero-initialized.
    pub fn new(depth: usize) -> Self {
        TlmMemory {
            words: vec![0; depth],
        }
    }

    /// Direct backdoor access for checkers.
    pub fn word(&self, addr: usize) -> Option<u64> {
        self.words.get(addr).copied()
    }
}

impl Transport<MemReq, MemResp> for TlmMemory {
    fn transport(&mut self, req: MemReq) -> MemResp {
        match req {
            MemReq::Read { addr } => match self.words.get(addr) {
                Some(&w) => MemResp::Data(w),
                None => MemResp::Error,
            },
            MemReq::Write { addr, data } => match self.words.get_mut(addr) {
                Some(w) => {
                    *w = data;
                    MemResp::Ack
                }
                None => MemResp::Error,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_targets() {
        let mut double = |x: u32| x * 2;
        assert_eq!(double.transport(21), 42);
    }

    #[test]
    fn tlm_memory_read_write() {
        let port = TargetPort::new(TlmMemory::new(16));
        assert_eq!(
            port.transport(MemReq::Write {
                addr: 3,
                data: 0xAB
            }),
            MemResp::Ack
        );
        assert_eq!(
            port.transport(MemReq::Read { addr: 3 }),
            MemResp::Data(0xAB)
        );
        assert_eq!(port.transport(MemReq::Read { addr: 99 }), MemResp::Error);
    }

    #[test]
    fn port_is_shareable() {
        let port = TargetPort::new(TlmMemory::new(4));
        let p2 = port.clone();
        p2.transport(MemReq::Write { addr: 0, data: 7 });
        assert_eq!(port.transport(MemReq::Read { addr: 0 }), MemResp::Data(7));
    }
}
