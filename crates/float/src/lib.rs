//! Parametric soft floating point, modelling *reduced-IEEE* hardware FPUs.
//!
//! The paper's §3.1.2 identifies floating point as a classic source of
//! SLM/RTL divergence: the system-level model uses the machine's IEEE
//! `float`/`double`, while "RTL designers often do not implement the full
//! IEEE standard" because handling denormals, NaN, and infinity "can be
//! prohibitively costly in hardware". This crate provides:
//!
//! * [`FloatFormat`] — a parametric (exponent bits, fraction bits) binary
//!   format (IEEE single, half, bfloat16, or custom),
//! * [`FloatFeatures`] — which IEEE corner cases the implementation
//!   actually supports (denormals / NaN / infinity / rounding mode),
//! * [`FpUnit`] — add, sub, mul, and compare implemented the way RTL does
//!   it, by explicit mantissa/exponent manipulation with guard-round-sticky
//!   rounding.
//!
//! With [`FloatFeatures::FULL_IEEE`] and [`FloatFormat::IEEE_SINGLE`], every
//! operation is bit-exact with native `f32` (property-tested against the
//! host FPU). With [`FloatFeatures::REDUCED_HARDWARE`], denormals flush to
//! zero and overflow saturates to the largest finite value — so an SLM
//! using native floats and an RTL using this unit *diverge on exactly the
//! corner cases the paper describes*, and agree when inputs are constrained
//! away from them (the paper's recommended fix for equivalence checking).
//!
//! # Example
//!
//! ```
//! use dfv_float::{FloatFormat, FloatFeatures, FpUnit};
//!
//! let ieee = FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::FULL_IEEE);
//! let hw = FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::REDUCED_HARDWARE);
//!
//! let a = ieee.from_f32(1.5);
//! let b = ieee.from_f32(2.25);
//! assert_eq!(ieee.to_f32(ieee.add(a, b)), 3.75);
//! // On ordinary values the reduced unit agrees...
//! assert_eq!(hw.add(a, b), ieee.add(a, b));
//! // ...but a denormal input is flushed to zero by the reduced unit.
//! let tiny = ieee.from_f32(f32::from_bits(1)); // smallest denormal
//! assert_eq!(hw.to_f32(hw.add(tiny, hw.from_f32(0.0))), 0.0);
//! assert_ne!(ieee.to_f32(ieee.add(tiny, ieee.from_f32(0.0))), 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A binary floating-point format: 1 sign bit, `exp_bits` exponent bits,
/// `frac_bits` fraction bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    /// Exponent field width (2..=11).
    pub exp_bits: u32,
    /// Fraction (mantissa-without-hidden-bit) width (1..=52).
    pub frac_bits: u32,
}

impl FloatFormat {
    /// IEEE 754 binary32.
    pub const IEEE_SINGLE: FloatFormat = FloatFormat {
        exp_bits: 8,
        frac_bits: 23,
    };
    /// IEEE 754 binary16.
    pub const IEEE_HALF: FloatFormat = FloatFormat {
        exp_bits: 5,
        frac_bits: 10,
    };
    /// Google bfloat16.
    pub const BFLOAT16: FloatFormat = FloatFormat {
        exp_bits: 8,
        frac_bits: 7,
    };

    /// Total width in bits (1 + exp + frac).
    pub fn width(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// The exponent bias (`2^(exp_bits-1) - 1`).
    pub fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    fn max_exp_field(self) -> u64 {
        (1 << self.exp_bits) - 1
    }

    /// The bit pattern of the largest finite value with the given sign.
    pub fn max_finite(self, negative: bool) -> u64 {
        let mag = ((self.max_exp_field() - 1) << self.frac_bits) | ((1 << self.frac_bits) - 1);
        (u64::from(negative) << (self.exp_bits + self.frac_bits)) | mag
    }

    /// The canonical quiet-NaN bit pattern.
    pub fn quiet_nan(self) -> u64 {
        (self.max_exp_field() << self.frac_bits) | (1 << (self.frac_bits - 1))
    }

    /// The infinity bit pattern with the given sign.
    pub fn infinity(self, negative: bool) -> u64 {
        (u64::from(negative) << (self.exp_bits + self.frac_bits))
            | (self.max_exp_field() << self.frac_bits)
    }
}

/// Which IEEE features the hardware actually implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFeatures {
    /// Support denormal (subnormal) inputs and outputs; if `false`, they
    /// flush to zero.
    pub denormals: bool,
    /// Support NaN; if `false`, would-be-NaN results become the largest
    /// finite value and NaN-patterned inputs are read as that value too.
    pub nan: bool,
    /// Support infinity; if `false`, overflow saturates to the largest
    /// finite value and infinity-patterned inputs are read as that value.
    pub inf: bool,
    /// Round to nearest-even; if `false`, truncate toward zero (the
    /// cheapest hardware rounding).
    pub round_nearest: bool,
}

impl FloatFeatures {
    /// Everything IEEE 754 requires.
    pub const FULL_IEEE: FloatFeatures = FloatFeatures {
        denormals: true,
        nan: true,
        inf: true,
        round_nearest: true,
    };
    /// A typical cost-reduced hardware FPU: flush-to-zero, no specials,
    /// round-to-nearest kept.
    pub const REDUCED_HARDWARE: FloatFeatures = FloatFeatures {
        denormals: false,
        nan: false,
        inf: false,
        round_nearest: true,
    };
}

/// Decoded value; finite magnitude is exactly `mant * 2^exp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decoded {
    Zero { sign: bool },
    Nan,
    Inf { sign: bool },
    Finite { sign: bool, exp: i32, mant: u64 },
}

/// A floating-point unit for one (format, features) pair. Values are raw
/// bit patterns (`u64`, low `format.width()` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpUnit {
    format: FloatFormat,
    features: FloatFeatures,
}

impl FpUnit {
    /// Creates a unit.
    ///
    /// # Panics
    ///
    /// Panics if the format is out of the supported range (exponent 2..=11
    /// bits, fraction 1..=52 bits).
    pub fn new(format: FloatFormat, features: FloatFeatures) -> Self {
        assert!(
            (2..=11).contains(&format.exp_bits) && (1..=52).contains(&format.frac_bits),
            "unsupported float format"
        );
        FpUnit { format, features }
    }

    /// This unit's format.
    pub fn format(&self) -> FloatFormat {
        self.format
    }

    /// This unit's feature set.
    pub fn features(&self) -> FloatFeatures {
        self.features
    }

    fn decode(&self, bits: u64) -> Decoded {
        let f = self.format;
        let sign = (bits >> (f.exp_bits + f.frac_bits)) & 1 == 1;
        let exp_field = (bits >> f.frac_bits) & f.max_exp_field();
        let frac = bits & ((1 << f.frac_bits) - 1);
        if exp_field == f.max_exp_field() {
            if frac != 0 {
                if self.features.nan {
                    return Decoded::Nan;
                }
                return self.decode(f.max_finite(sign));
            }
            if self.features.inf {
                return Decoded::Inf { sign };
            }
            return self.decode(f.max_finite(sign));
        }
        if exp_field == 0 {
            if frac == 0 || !self.features.denormals {
                return Decoded::Zero { sign };
            }
            return Decoded::Finite {
                sign,
                exp: 1 - f.bias() - f.frac_bits as i32,
                mant: frac,
            };
        }
        Decoded::Finite {
            sign,
            exp: exp_field as i32 - f.bias() - f.frac_bits as i32,
            mant: frac | (1 << f.frac_bits),
        }
    }

    /// The exponent (at mantissa-LSB weight) of the smallest normal number.
    fn min_norm_exp(&self) -> i32 {
        1 - self.format.bias() - self.format.frac_bits as i32
    }

    /// Rounds and encodes a finite value `(-1)^sign * mant * 2^exp`.
    /// Applies the overflow/underflow policy of the feature set.
    fn encode(&self, sign: bool, mut exp: i32, mut mant: u128) -> u64 {
        let f = self.format;
        let sign_bit = u64::from(sign) << (f.exp_bits + f.frac_bits);
        if mant == 0 {
            return sign_bit;
        }
        // Normalize so the top set bit sits at position frac_bits + 3
        // (three guard bits below the target LSB), collecting sticky on
        // right shifts. Stop left shifts at the denormal floor.
        let target_top = f.frac_bits + 3;
        let floor = self.min_norm_exp() - 3;
        let mut sticky = false;
        while (mant >> target_top) > 1 {
            sticky |= mant & 1 == 1;
            mant >>= 1;
            exp += 1;
        }
        while (mant >> target_top) == 0 && exp > floor {
            mant <<= 1;
            exp -= 1;
        }
        while exp < floor {
            sticky |= mant & 1 == 1;
            mant >>= 1;
            exp += 1;
        }
        // Round off the three guard bits.
        let guard = (mant >> 2) & 1 == 1;
        let round = (mant >> 1) & 1 == 1;
        sticky |= mant & 1 == 1;
        let mut result = (mant >> 3) as u64;
        if self.features.round_nearest {
            let lsb = result & 1 == 1;
            if guard && (round || sticky || lsb) {
                result += 1;
            }
        }
        let mut exp_real = exp + 3;
        if result >> (f.frac_bits + 1) != 0 {
            result >>= 1;
            exp_real += 1;
        }
        if result == 0 {
            return sign_bit; // underflowed to zero
        }
        if result >> f.frac_bits == 0 {
            // Denormal range.
            if !self.features.denormals {
                return sign_bit; // flush to zero
            }
            debug_assert_eq!(exp_real, self.min_norm_exp());
            return sign_bit | result;
        }
        let exp_field = exp_real + f.bias() + f.frac_bits as i32;
        debug_assert!(exp_field >= 1);
        if exp_field as u64 >= f.max_exp_field() {
            return if self.features.inf {
                f.infinity(sign)
            } else {
                f.max_finite(sign)
            };
        }
        sign_bit | ((exp_field as u64) << f.frac_bits) | (result & ((1 << f.frac_bits) - 1))
    }

    fn nan_result(&self) -> u64 {
        if self.features.nan {
            self.format.quiet_nan()
        } else {
            self.format.max_finite(false)
        }
    }

    fn zero_bits(&self, sign: bool) -> u64 {
        u64::from(sign) << (self.format.exp_bits + self.format.frac_bits)
    }

    /// Addition.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        match (self.decode(a), self.decode(b)) {
            (Decoded::Nan, _) | (_, Decoded::Nan) => self.nan_result(),
            (Decoded::Inf { sign: sa }, Decoded::Inf { sign: sb }) => {
                if sa == sb {
                    self.format.infinity(sa)
                } else {
                    self.nan_result()
                }
            }
            (Decoded::Inf { sign }, _) | (_, Decoded::Inf { sign }) => self.format.infinity(sign),
            (Decoded::Zero { sign: sa }, Decoded::Zero { sign: sb }) => self.zero_bits(sa && sb),
            (Decoded::Zero { .. }, Decoded::Finite { sign, exp, mant })
            | (Decoded::Finite { sign, exp, mant }, Decoded::Zero { .. }) => {
                self.encode(sign, exp, mant as u128)
            }
            (
                Decoded::Finite {
                    sign: sa,
                    exp: ea,
                    mant: ma,
                },
                Decoded::Finite {
                    sign: sb,
                    exp: eb,
                    mant: mb,
                },
            ) => self.add_finite(sa, ea, ma, sb, eb, mb),
        }
    }

    fn add_finite(&self, sa: bool, ea: i32, ma: u64, sb: bool, eb: i32, mb: u64) -> u64 {
        let (hi, lo) = if ea >= eb {
            ((sa, ea, ma), (sb, eb, mb))
        } else {
            ((sb, eb, mb), (sa, ea, ma))
        };
        let diff = (hi.1 - lo.1) as u32;
        if diff <= 60 {
            // Mantissas are < 2^53, so the alignment is exact in u128.
            self.add_aligned(hi.0, (hi.2 as u128) << diff, lo.0, lo.2 as u128, lo.1)
        } else {
            // The small operand sits entirely below the big one's guard
            // bits; it contributes only a sticky bit.
            self.add_aligned(hi.0, (hi.2 as u128) << 4, lo.0, 1, hi.1 - 4)
        }
    }

    fn add_aligned(&self, sa: bool, ma: u128, sb: bool, mb: u128, exp: i32) -> u64 {
        if sa == sb {
            self.encode(sa, exp, ma + mb)
        } else if ma > mb {
            self.encode(sa, exp, ma - mb)
        } else if mb > ma {
            self.encode(sb, exp, mb - ma)
        } else {
            self.zero_bits(false) // exact cancellation -> +0 under RNE
        }
    }

    /// Subtraction (`a - b`).
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        let sign_bit = 1u64 << (self.format.exp_bits + self.format.frac_bits);
        self.add(a, b ^ sign_bit)
    }

    /// Multiplication.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        match (self.decode(a), self.decode(b)) {
            (Decoded::Nan, _) | (_, Decoded::Nan) => self.nan_result(),
            (Decoded::Inf { .. }, Decoded::Zero { .. })
            | (Decoded::Zero { .. }, Decoded::Inf { .. }) => self.nan_result(),
            (Decoded::Inf { sign: sa }, Decoded::Inf { sign: sb })
            | (Decoded::Inf { sign: sa }, Decoded::Finite { sign: sb, .. })
            | (Decoded::Finite { sign: sa, .. }, Decoded::Inf { sign: sb }) => {
                self.format.infinity(sa != sb)
            }
            (Decoded::Zero { sign: sa }, Decoded::Zero { sign: sb })
            | (Decoded::Zero { sign: sa }, Decoded::Finite { sign: sb, .. })
            | (Decoded::Finite { sign: sa, .. }, Decoded::Zero { sign: sb }) => {
                self.zero_bits(sa != sb)
            }
            (
                Decoded::Finite {
                    sign: sa,
                    exp: ea,
                    mant: ma,
                },
                Decoded::Finite {
                    sign: sb,
                    exp: eb,
                    mant: mb,
                },
            ) => self.encode(sa != sb, ea + eb, ma as u128 * mb as u128),
        }
    }

    /// IEEE comparison: `None` when unordered (NaN involved).
    pub fn compare(&self, a: u64, b: u64) -> Option<std::cmp::Ordering> {
        if self.is_nan(a) || self.is_nan(b) {
            return None;
        }
        self.to_f64(a).partial_cmp(&self.to_f64(b))
    }

    /// Whether the bit pattern decodes to NaN under this unit's features.
    pub fn is_nan(&self, a: u64) -> bool {
        self.decode(a) == Decoded::Nan
    }

    /// Converts a native `f32` into this format.
    pub fn from_f32(&self, v: f32) -> u64 {
        self.from_f64(v as f64)
    }

    /// Converts a native `f64` into this format (rounding once, per the
    /// unit's rounding mode, and applying the feature policy).
    pub fn from_f64(&self, v: f64) -> u64 {
        if v.is_nan() {
            return self.nan_result();
        }
        if v.is_infinite() {
            return if self.features.inf {
                self.format.infinity(v < 0.0)
            } else {
                self.format.max_finite(v < 0.0)
            };
        }
        if v == 0.0 {
            return self.zero_bits(v.is_sign_negative());
        }
        let bits = v.to_bits();
        let sign = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if exp_field == 0 {
            (frac, 1 - 1023 - 52)
        } else {
            (frac | (1 << 52), exp_field - 1023 - 52)
        };
        self.encode(sign, exp, mant as u128)
    }

    /// Converts a value of this format to native `f64` exactly (every
    /// supported format fits in f64 without rounding).
    pub fn to_f64(&self, a: u64) -> f64 {
        match self.decode(a) {
            Decoded::Nan => f64::NAN,
            Decoded::Inf { sign } => {
                if sign {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            Decoded::Zero { sign } => {
                if sign {
                    -0.0
                } else {
                    0.0
                }
            }
            Decoded::Finite { sign, exp, mant } => {
                let mag = mant as f64 * 2f64.powi(exp);
                if sign {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    /// Converts to native `f32` (exact for formats no wider than binary32).
    pub fn to_f32(&self, a: u64) -> f32 {
        self.to_f64(a) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ieee() -> FpUnit {
        FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::FULL_IEEE)
    }

    fn hw() -> FpUnit {
        FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::REDUCED_HARDWARE)
    }

    type NativeCase = (
        fn(&FpUnit, u64, u64) -> u64,
        fn(f32, f32) -> f32,
        &'static str,
    );

    fn assert_matches_native(u: &FpUnit, a: f32, b: f32) {
        let cases: [NativeCase; 3] = [
            (FpUnit::add, |x, y| x + y, "+"),
            (FpUnit::sub, |x, y| x - y, "-"),
            (FpUnit::mul, |x, y| x * y, "*"),
        ];
        for (soft, native, name) in cases {
            let got = soft(u, u64::from(a.to_bits()), u64::from(b.to_bits()));
            let expect = native(a, b);
            if expect.is_nan() {
                assert!(u.is_nan(got), "{a:e} {name} {b:e}: expected NaN");
            } else {
                assert_eq!(
                    got,
                    u64::from(expect.to_bits()),
                    "{a:e} {name} {b:e}: got {:e} ({got:#010x}), expected {expect:e}",
                    u.to_f32(got)
                );
            }
        }
    }

    #[test]
    fn sums_and_products_match_native() {
        let u = ieee();
        for (a, b) in [
            (1.0f32, 2.0),
            (0.1, 0.2),
            (1.5e30, -1.5e30),
            (3.25, -0.125),
            (1e-40, 1e-40),
            (16_777_215.0, 1.0),
            (16_777_216.0, 1.0), // beyond exact-integer range: rounding
            (-0.0, 0.0),
            (1e20, 1e20),
            (1e-30, 1e-30),
            (f32::MAX, f32::MAX),
            (f32::MIN_POSITIVE, f32::MIN_POSITIVE),
            (f32::MIN_POSITIVE / 2.0, -f32::MIN_POSITIVE / 4.0),
        ] {
            assert_matches_native(&u, a, b);
            assert_matches_native(&u, b, a);
        }
    }

    #[test]
    fn specials_follow_ieee() {
        let u = ieee();
        let inf = u.from_f32(f32::INFINITY);
        let ninf = u.from_f32(f32::NEG_INFINITY);
        let zero = u.from_f32(0.0);
        assert!(u.is_nan(u.add(inf, ninf)));
        assert!(u.is_nan(u.mul(inf, zero)));
        assert_eq!(u.add(inf, u.from_f32(1.0)), inf);
        assert_eq!(u.mul(ninf, u.from_f32(2.0)), ninf);
        let nan = u.from_f32(f32::NAN);
        assert!(u.is_nan(u.add(nan, u.from_f32(1.0))));
        assert_eq!(u.compare(nan, zero), None);
        assert_eq!(
            u.compare(u.from_f32(1.0), u.from_f32(2.0)),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    fn exact_cancellation_gives_positive_zero() {
        let u = ieee();
        let a = u.from_f32(7.25);
        let na = u.from_f32(-7.25);
        let r = u.add(a, na);
        assert_eq!(r, 0); // +0, matching IEEE RNE
        assert_eq!((7.25f32 + (-7.25f32)).to_bits(), 0);
    }

    #[test]
    fn reduced_hardware_flushes_denormals() {
        let h = hw();
        let tiny = f32::from_bits(0x0000_0001);
        assert_eq!(h.to_f32(h.add(h.from_f32(tiny), h.from_f32(0.0))), 0.0);
        // 1e-25 * 1e-15 = 1e-40: a denormal, kept by IEEE, flushed by hw.
        assert_eq!(h.to_f32(h.mul(h.from_f32(1e-25), h.from_f32(1e-15))), 0.0);
        let u = ieee();
        assert!(u.to_f32(u.mul(u.from_f32(1e-25), u.from_f32(1e-15))) > 0.0);
    }

    #[test]
    fn reduced_hardware_saturates_overflow() {
        let h = hw();
        let big = h.from_f32(f32::MAX);
        let two = h.from_f32(2.0);
        assert_eq!(h.mul(big, two), FloatFormat::IEEE_SINGLE.max_finite(false));
        assert_eq!(
            h.mul(h.from_f32(f32::MIN), two),
            FloatFormat::IEEE_SINGLE.max_finite(true)
        );
        // And NaN patterns are read as max-finite rather than propagating.
        let nan_bits = u64::from(f32::NAN.to_bits());
        assert!(!h.is_nan(h.add(nan_bits, h.from_f32(0.0))));
    }

    #[test]
    fn reduced_and_full_agree_on_ordinary_values() {
        let u = ieee();
        let h = hw();
        for (a, b) in [(1.5f32, 2.25), (-3.75, 10.5), (100.0, 0.0078125)] {
            assert_eq!(
                u.add(u.from_f32(a), u.from_f32(b)),
                h.add(h.from_f32(a), h.from_f32(b))
            );
            assert_eq!(
                u.mul(u.from_f32(a), u.from_f32(b)),
                h.mul(h.from_f32(a), h.from_f32(b))
            );
        }
    }

    #[test]
    fn truncating_unit_rounds_toward_zero() {
        let trunc = FpUnit::new(
            FloatFormat::IEEE_SINGLE,
            FloatFeatures {
                round_nearest: false,
                ..FloatFeatures::FULL_IEEE
            },
        );
        let u = ieee();
        // 1.0 + (2^-24 + ulp): RNE rounds up, truncation does not.
        let a = u.from_f32(1.0);
        let b = u.from_f32(f32::from_bits(0x3380_0001));
        assert_eq!(trunc.to_f32(trunc.add(a, b)), 1.0);
        assert!(u.to_f32(u.add(a, b)) > 1.0);
    }

    #[test]
    fn half_precision_basics() {
        let u = FpUnit::new(FloatFormat::IEEE_HALF, FloatFeatures::FULL_IEEE);
        let a = u.from_f32(1.5);
        let b = u.from_f32(2.5);
        assert_eq!(u.to_f32(u.add(a, b)), 4.0);
        assert_eq!(u.to_f32(u.mul(a, b)), 3.75);
        let big = u.from_f32(60000.0);
        assert_eq!(u.to_f32(u.add(big, big)), f32::INFINITY);
    }

    #[test]
    fn bfloat16_coarse_rounding() {
        let u = FpUnit::new(FloatFormat::BFLOAT16, FloatFeatures::FULL_IEEE);
        // bfloat16 has 8 mantissa bits of precision: 257 rounds to 256.
        let v = u.from_f32(257.0);
        assert_eq!(u.to_f32(v), 256.0);
        assert_eq!(u.to_f32(u.from_f32(258.0)), 258.0);
    }

    #[test]
    fn format_constants() {
        assert_eq!(FloatFormat::IEEE_SINGLE.width(), 32);
        assert_eq!(FloatFormat::IEEE_SINGLE.bias(), 127);
        assert_eq!(FloatFormat::IEEE_HALF.width(), 16);
        assert_eq!(FloatFormat::BFLOAT16.width(), 16);
        assert_eq!(
            FloatFormat::IEEE_SINGLE.max_finite(false),
            u64::from(f32::MAX.to_bits())
        );
        assert_eq!(
            FloatFormat::IEEE_SINGLE.infinity(true),
            u64::from(f32::NEG_INFINITY.to_bits())
        );
        assert!(f32::from_bits(FloatFormat::IEEE_SINGLE.quiet_nan() as u32).is_nan());
    }
}
