//! The full-IEEE soft FPU must be bit-exact with the host FPU on *random
//! bit patterns* (including denormals, infinities, and NaNs), for add, sub,
//! and mul at binary32.
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_float::{FloatFeatures, FloatFormat, FpUnit};
use proptest::prelude::*;

fn unit() -> FpUnit {
    FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::FULL_IEEE)
}

fn check(u: &FpUnit, a: u32, b: u32) -> Result<(), TestCaseError> {
    let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
    let ops: [(fn(&FpUnit, u64, u64) -> u64, fn(f32, f32) -> f32, &str); 3] = [
        (FpUnit::add, |x, y| x + y, "add"),
        (FpUnit::sub, |x, y| x - y, "sub"),
        (FpUnit::mul, |x, y| x * y, "mul"),
    ];
    for (soft, native, name) in ops {
        let got = soft(u, u64::from(a), u64::from(b));
        let expect = native(fa, fb);
        if expect.is_nan() {
            prop_assert!(
                u.is_nan(got),
                "{name}({fa:e}, {fb:e}) should be NaN, got {got:#x}"
            );
        } else {
            prop_assert_eq!(
                got,
                u64::from(expect.to_bits()),
                "{}({:e} [{:#010x}], {:e} [{:#010x}]) = {:e}, native {:e}",
                name,
                fa,
                a,
                fb,
                b,
                u.to_f32(got),
                expect
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn random_patterns_match_host_fpu(a in any::<u32>(), b in any::<u32>()) {
        check(&unit(), a, b)?;
    }

    #[test]
    fn near_patterns_match_host_fpu(a in any::<u32>(), delta in 0u32..8) {
        // Values close to each other stress cancellation and rounding ties.
        check(&unit(), a, a.wrapping_add(delta))?;
        check(&unit(), a, a ^ 0x8000_0000)?; // exact negation
    }

    #[test]
    fn denormal_region_matches_host_fpu(a in 0u32..0x0100_0000, b in 0u32..0x0100_0000, sa in any::<bool>(), sb in any::<bool>()) {
        let a = a | u32::from(sa) << 31;
        let b = b | u32::from(sb) << 31;
        check(&unit(), a, b)?;
    }

    #[test]
    fn from_f32_roundtrips(a in any::<u32>()) {
        let u = unit();
        let f = f32::from_bits(a);
        let enc = u.from_f32(f);
        if f.is_nan() {
            prop_assert!(u.is_nan(enc));
        } else {
            prop_assert_eq!(enc, u64::from(a), "roundtrip of {:e}", f);
            prop_assert_eq!(u.to_f32(enc).to_bits(), a);
        }
    }

    #[test]
    fn reduced_unit_never_produces_specials(a in any::<u32>(), b in any::<u32>()) {
        let h = FpUnit::new(FloatFormat::IEEE_SINGLE, FloatFeatures::REDUCED_HARDWARE);
        for r in [h.add(a.into(), b.into()), h.mul(a.into(), b.into())] {
            let f = f32::from_bits(r as u32);
            prop_assert!(f.is_finite(), "reduced unit produced {f:e}");
            // No denormal outputs either.
            prop_assert!(f == 0.0 || f.abs() >= f32::MIN_POSITIVE);
        }
    }
}
