//! `dfv-vm` — the flat register-based bytecode shared by the compiled
//! evaluation front-ends.
//!
//! Both hot interpreters in the workspace lower into this one instruction
//! set: `dfv-rtl` compiles its levelized [`SimSchedule`] into straight-line
//! blocks of [`Instr`]s (one block per topological level), and `dfv-slmir`
//! compiles the straight-line statement segments of SLM-C function bodies.
//! The original interpreters stay untouched as the semantic oracles — the
//! simlin-engine recipe of pairing a bytecode VM with a reference
//! interpreter kept as the spec.
//!
//! # Design
//!
//! * **Registers are arena offsets.** Every operand is a `u32` offset into
//!   one flat `u64` limb arena owned by the front-end. The lowering
//!   resolves all names/slots/widths once; execution never touches a map.
//! * **Single-limb fast paths.** Values of width ≤ 64 get dedicated
//!   opcodes with the operator semantics of `dfv_rtl::eval_bin`/`eval_un`
//!   baked in (masking, division-by-zero results, shift-amount ≥ width).
//!   Widths are stored, masks are two ALU ops at execution time.
//! * **Const-operand and fused forms.** Constant operands are folded into
//!   the instruction ([`Instr::AddC1`], ...), and the two hottest
//!   producer/consumer pairs — compare feeding a mux select, add feeding a
//!   slice — fuse into one instruction that writes *both* destination
//!   slots, so peeking/tracing the intermediate value still works.
//! * **No bounds checks in the hot loop.** [`Program::new`] validates
//!   every operand offset against the declared arena length once;
//!   execution then uses unchecked accesses. The only per-call check is a
//!   single assert that the passed arena is big enough.
//! * **Change detection.** Every instruction compares-before-write on its
//!   final destination and reports whether the value changed, so the RTL
//!   front-end's dirty-cone scheduling works unchanged at the bytecode
//!   level.
//!
//! Multi-limb operations (`N*` variants) mirror the reference kernels:
//! cheap ops run through `dfv_bits::limbs`, and the rare wide hard ops
//! (multiplication, division, shifts over 64 bits) go through the [`Bv`]
//! oracle — bit-identical to the interpreters by construction.
//!
//! [`SimSchedule`]: https://docs.rs/dfv-rtl

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;

use dfv_bits::limbs::{self, limbs_for};
use dfv_bits::Bv;

/// A comparison kind for the fused compare+mux instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// unsigned `a < b`
    Ult,
    /// unsigned `a <= b`
    Ule,
    /// signed `a < b`
    Slt,
    /// signed `a <= b`
    Sle,
}

/// A binary operator for the generic multi-limb instruction [`Instr::NBin`].
///
/// Semantics are exactly those of `dfv_rtl::eval_bin` (which the reference
/// interpreters use): results masked to the left operand's width,
/// division by zero yields all-ones (quotient) / the dividend (remainder),
/// shift amounts at or above the width yield zero (sign-fill for `AShr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NBinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    URem,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,
}

/// A unary operator for [`Instr::NUn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum NUnOp {
    Not,
    Neg,
    RedAnd,
    RedOr,
    RedXor,
}

/// One bytecode instruction.
///
/// Naming: a `1` suffix means the single-limb fast path (every operand and
/// the result fit in one `u64` limb and are stored masked to their width);
/// a `C` means one operand is an inline constant; an `N` prefix means the
/// generic multi-limb form. Offsets (`dst`, `a`, `b`, ...) index the limb
/// arena; widths are in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    /// `arena[dst] = arena[a]` (same width).
    Copy1 {
        dst: u32,
        a: u32,
    },
    /// `arena[dst] = imm` (pre-masked at build time).
    Const1 {
        dst: u32,
        imm: u64,
    },
    /// Bitwise not, masked to `w`.
    Not1 {
        dst: u32,
        a: u32,
        w: u8,
    },
    /// Two's-complement negate, masked to `w`.
    Neg1 {
        dst: u32,
        a: u32,
        w: u8,
    },
    /// 1 iff all `w` bits of `a` are set.
    RedAnd1 {
        dst: u32,
        a: u32,
        w: u8,
    },
    /// 1 iff `a != 0`.
    RedOr1 {
        dst: u32,
        a: u32,
    },
    /// Bit-parity of `a`.
    RedXor1 {
        dst: u32,
        a: u32,
    },
    /// Logical not: 1 iff `a == 0`.
    EqZ1 {
        dst: u32,
        a: u32,
    },
    And1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Or1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Xor1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Add1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    Sub1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    Mul1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    /// Unsigned divide; division by zero yields the all-ones `w`-bit value.
    UDiv1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    /// Unsigned remainder; remainder by zero yields the dividend.
    URem1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Signed divide (operand widths needed for sign extension).
    SDiv1 {
        dst: u32,
        a: u32,
        b: u32,
        aw: u8,
        bw: u8,
    },
    /// Signed remainder.
    SRem1 {
        dst: u32,
        a: u32,
        b: u32,
        aw: u8,
        bw: u8,
    },
    /// Left shift; amounts `>= w` yield 0.
    Shl1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    /// Logical right shift; amounts `>= w` yield 0.
    LShr1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    /// Arithmetic right shift (sign of the `w`-bit value; amounts clamp).
    AShr1 {
        dst: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    Eq1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Ne1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Ult1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Ule1 {
        dst: u32,
        a: u32,
        b: u32,
    },
    Slt1 {
        dst: u32,
        a: u32,
        b: u32,
        aw: u8,
        bw: u8,
    },
    Sle1 {
        dst: u32,
        a: u32,
        b: u32,
        aw: u8,
        bw: u8,
    },
    /// `arena[dst] = if arena[sel] & 1 { arena[t] } else { arena[f] }`.
    Mux1 {
        dst: u32,
        sel: u32,
        t: u32,
        f: u32,
    },
    /// `arena[dst] = (arena[a] >> sh) & mask(w)` — slice, truncation.
    Slice1 {
        dst: u32,
        a: u32,
        sh: u8,
        w: u8,
    },
    /// Sign-extend the `aw`-bit value to `ow` bits.
    Sext1 {
        dst: u32,
        a: u32,
        aw: u8,
        ow: u8,
    },
    /// `arena[dst] = (arena[a] << sh) | arena[b]` (`sh` = width of `b`).
    Concat1 {
        dst: u32,
        a: u32,
        b: u32,
        sh: u8,
    },
    // ---- const-operand forms (imm pre-masked at build time) ----
    AddC1 {
        dst: u32,
        a: u32,
        imm: u64,
        w: u8,
    },
    /// `a - imm`.
    SubC1 {
        dst: u32,
        a: u32,
        imm: u64,
        w: u8,
    },
    /// `imm - a`.
    RSubC1 {
        dst: u32,
        a: u32,
        imm: u64,
        w: u8,
    },
    MulC1 {
        dst: u32,
        a: u32,
        imm: u64,
        w: u8,
    },
    AndC1 {
        dst: u32,
        a: u32,
        imm: u64,
    },
    OrC1 {
        dst: u32,
        a: u32,
        imm: u64,
    },
    XorC1 {
        dst: u32,
        a: u32,
        imm: u64,
    },
    EqC1 {
        dst: u32,
        a: u32,
        imm: u64,
    },
    NeC1 {
        dst: u32,
        a: u32,
        imm: u64,
    },
    /// Left shift by a constant amount `sh < w`.
    ShlC1 {
        dst: u32,
        a: u32,
        sh: u8,
        w: u8,
    },
    /// Logical right shift by a constant amount `sh < w`.
    LShrC1 {
        dst: u32,
        a: u32,
        sh: u8,
    },
    /// Arithmetic right shift by a constant (pre-clamped) amount.
    AShrC1 {
        dst: u32,
        a: u32,
        sh: u8,
        w: u8,
    },
    // ---- fused pairs: write BOTH destinations ----
    /// Fused compare + mux: `arena[dst_c] = cmp(a, b)`, then
    /// `arena[dst] = if cmp { arena[t] } else { arena[f] }`. The reported
    /// change is the mux output's (the compare result has no other
    /// consumer by construction, but its slot stays observable).
    CmpMux1 {
        kind: Cmp,
        a: u32,
        b: u32,
        aw: u8,
        bw: u8,
        dst_c: u32,
        t: u32,
        f: u32,
        dst: u32,
    },
    /// Fused add + slice: `arena[dst_a] = (a + b) & mask(aw)`, then
    /// `arena[dst] = (sum >> sh) & mask(ow)`.
    AddSlice1 {
        a: u32,
        b: u32,
        aw: u8,
        dst_a: u32,
        sh: u8,
        ow: u8,
        dst: u32,
    },
    /// Fused multiply-accumulate: `arena[dst_p] = (a * imm) & mask(w)`,
    /// then `arena[dst] = (prod + b) & mask(w)` — the FIR tap idiom
    /// `acc += x * coeff` in one dispatch. The product slot stays
    /// observable; the reported change is the accumulator's.
    MulCAdd1 {
        a: u32,
        imm: u64,
        dst_p: u32,
        b: u32,
        dst: u32,
        w: u8,
    },
    /// Fused shift-accumulate: `arena[dst_p] = (a << sh) & mask(w)`, then
    /// `arena[dst] = (term + b) & mask(w)` — the convolution idiom
    /// `acc += x << k` in one dispatch (`sh < w`).
    ShlCAdd1 {
        a: u32,
        sh: u8,
        dst_p: u32,
        b: u32,
        dst: u32,
        w: u8,
    },
    // ---- generic multi-limb forms ----
    /// Generic binary op over multi-limb operands (widths in bits).
    NBin {
        op: NBinOp,
        dst: u32,
        a: u32,
        b: u32,
        aw: u16,
        bw: u16,
        ow: u16,
    },
    /// Generic unary op.
    NUn {
        op: NUnOp,
        dst: u32,
        a: u32,
        aw: u16,
        ow: u16,
    },
    /// Multi-limb mux (`l` = limb count of `dst`/`t`/`f`).
    NMux {
        dst: u32,
        sel: u32,
        t: u32,
        f: u32,
        l: u16,
    },
    /// Multi-limb slice: bits `[lo + ow - 1 : lo]` of the `aw`-bit source.
    NSlice {
        dst: u32,
        a: u32,
        aw: u16,
        lo: u16,
        ow: u16,
    },
    /// Multi-limb concat (`a` high, `b` low, `ow == aw + bw`).
    NConcat {
        dst: u32,
        a: u32,
        aw: u16,
        b: u32,
        bw: u16,
        ow: u16,
    },
    /// Multi-limb zero-extension (`aw <= ow`).
    NZext {
        dst: u32,
        a: u32,
        aw: u16,
        ow: u16,
    },
    /// Multi-limb sign-extension (`aw <= ow`).
    NSext {
        dst: u32,
        a: u32,
        aw: u16,
        ow: u16,
    },
    /// Multi-limb copy of `l` limbs.
    NCopy {
        dst: u32,
        a: u32,
        l: u16,
    },
}

/// A bytecode validation error — the lowering produced an instruction that
/// references limbs outside the declared arena or carries an impossible
/// width. Front-end bugs, never user errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// Index of the offending instruction.
    pub instr: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode instr {}: {}", self.instr, self.message)
    }
}

impl std::error::Error for VmError {}

/// A validated straight-line bytecode program over one limb arena.
///
/// Construction checks every operand of every instruction against
/// `arena_len`, so execution can use unchecked arena accesses; the only
/// runtime check is that the caller's arena really has `arena_len` limbs.
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Vec<Instr>,
    arena_len: usize,
}

/// The low-`w`-bit mask (`1 <= w <= 64`), branch-free.
#[inline(always)]
fn mask(w: u8) -> u64 {
    debug_assert!((1..=64).contains(&w));
    u64::MAX >> (64 - w as u32)
}

/// Sign-extends the low `w` bits of `v` to all 64 (`1 <= w <= 64`).
#[inline(always)]
fn sx(v: u64, w: u8) -> i64 {
    debug_assert!((1..=64).contains(&w));
    let sh = 64 - w as u32;
    ((v << sh) as i64) >> sh
}

#[inline(always)]
fn cmp1(kind: Cmp, a: u64, aw: u8, b: u64, bw: u8) -> u64 {
    (match kind {
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Ult => a < b,
        Cmp::Ule => a <= b,
        Cmp::Slt => sx(a, aw) < sx(b, bw),
        Cmp::Sle => sx(a, aw) <= sx(b, bw),
    }) as u64
}

/// Reads one limb. # Safety: `i < arena.len()` (guaranteed by
/// [`Program::new`] validation plus the arena-length assert in exec).
#[inline(always)]
unsafe fn rd(arena: &[u64], i: u32) -> u64 {
    unsafe { *arena.get_unchecked(i as usize) }
}

/// Compare-before-write of one limb; returns whether the value changed.
/// # Safety: as [`rd`].
#[inline(always)]
unsafe fn wr(arena: &mut [u64], i: u32, v: u64) -> bool {
    let slot = unsafe { arena.get_unchecked_mut(i as usize) };
    if *slot == v {
        false
    } else {
        *slot = v;
        true
    }
}

fn sized(scratch: &mut Vec<u64>, l: usize) {
    scratch.clear();
    scratch.resize(l, 0);
}

fn write_diff(out: &mut [u64], new: &[u64]) -> bool {
    if out == new {
        false
    } else {
        out.copy_from_slice(new);
        true
    }
}

impl Program {
    /// Validates and seals a lowered instruction sequence against an arena
    /// of `arena_len` limbs.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] naming the first instruction whose operands are
    /// out of range or whose widths are impossible.
    pub fn new(instrs: Vec<Instr>, arena_len: usize) -> Result<Self, VmError> {
        for (i, ins) in instrs.iter().enumerate() {
            validate(ins, arena_len).map_err(|message| VmError { instr: i, message })?;
        }
        Ok(Program { instrs, arena_len })
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The arena length (in limbs) this program was validated against.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// Executes instruction `idx`; returns whether its (final) destination
    /// value changed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `arena` is shorter than the
    /// validated arena length.
    #[inline]
    pub fn exec_one(&self, idx: usize, arena: &mut [u64], scratch: &mut Vec<u64>) -> bool {
        assert!(
            arena.len() >= self.arena_len,
            "arena shorter than validated"
        );
        // SAFETY: every operand of every instruction was validated against
        // `arena_len` in `Program::new`, and the arena is at least that long.
        unsafe { exec(&self.instrs[idx], arena, scratch) }
    }

    /// Executes instructions `lo..hi` straight-line, ignoring change flags.
    ///
    /// # Panics
    ///
    /// As [`Program::exec_one`].
    pub fn run_range(&self, lo: usize, hi: usize, arena: &mut [u64], scratch: &mut Vec<u64>) {
        assert!(
            arena.len() >= self.arena_len,
            "arena shorter than validated"
        );
        for ins in &self.instrs[lo..hi] {
            // SAFETY: as `exec_one` — validated at construction.
            unsafe {
                exec(ins, arena, scratch);
            }
        }
    }

    /// Executes the whole program straight-line.
    ///
    /// # Panics
    ///
    /// As [`Program::exec_one`].
    pub fn run(&self, arena: &mut [u64], scratch: &mut Vec<u64>) {
        self.run_range(0, self.instrs.len(), arena, scratch);
    }
}

/// Executes one instruction. Returns whether the (final) destination
/// changed.
///
/// # Safety
///
/// Every offset in `ins` must be in bounds for `arena` — callers go
/// through [`Program`], whose constructor validates exactly that.
#[inline(always)]
unsafe fn exec(ins: &Instr, arena: &mut [u64], scratch: &mut Vec<u64>) -> bool {
    use Instr::*;
    // SAFETY throughout: offsets validated against the arena length.
    unsafe {
        match *ins {
            Copy1 { dst, a } => {
                let v = rd(arena, a);
                wr(arena, dst, v)
            }
            Const1 { dst, imm } => wr(arena, dst, imm),
            Not1 { dst, a, w } => {
                let v = !rd(arena, a) & mask(w);
                wr(arena, dst, v)
            }
            Neg1 { dst, a, w } => {
                let v = rd(arena, a).wrapping_neg() & mask(w);
                wr(arena, dst, v)
            }
            RedAnd1 { dst, a, w } => {
                let v = (rd(arena, a) == mask(w)) as u64;
                wr(arena, dst, v)
            }
            RedOr1 { dst, a } => {
                let v = (rd(arena, a) != 0) as u64;
                wr(arena, dst, v)
            }
            RedXor1 { dst, a } => {
                let v = (rd(arena, a).count_ones() & 1) as u64;
                wr(arena, dst, v)
            }
            EqZ1 { dst, a } => {
                let v = (rd(arena, a) == 0) as u64;
                wr(arena, dst, v)
            }
            And1 { dst, a, b } => {
                let v = rd(arena, a) & rd(arena, b);
                wr(arena, dst, v)
            }
            Or1 { dst, a, b } => {
                let v = rd(arena, a) | rd(arena, b);
                wr(arena, dst, v)
            }
            Xor1 { dst, a, b } => {
                let v = rd(arena, a) ^ rd(arena, b);
                wr(arena, dst, v)
            }
            Add1 { dst, a, b, w } => {
                let v = rd(arena, a).wrapping_add(rd(arena, b)) & mask(w);
                wr(arena, dst, v)
            }
            Sub1 { dst, a, b, w } => {
                let v = rd(arena, a).wrapping_sub(rd(arena, b)) & mask(w);
                wr(arena, dst, v)
            }
            Mul1 { dst, a, b, w } => {
                let v = rd(arena, a).wrapping_mul(rd(arena, b)) & mask(w);
                wr(arena, dst, v)
            }
            UDiv1 { dst, a, b, w } => {
                let v = rd(arena, a).checked_div(rd(arena, b)).unwrap_or(mask(w));
                wr(arena, dst, v)
            }
            URem1 { dst, a, b } => {
                let av = rd(arena, a);
                let v = av.checked_rem(rd(arena, b)).unwrap_or(av);
                wr(arena, dst, v)
            }
            SDiv1 { dst, a, b, aw, bw } => {
                let (av, bv) = (rd(arena, a), rd(arena, b));
                let v = if bv == 0 {
                    mask(aw)
                } else {
                    (sx(av, aw).wrapping_div(sx(bv, bw)) as u64) & mask(aw)
                };
                wr(arena, dst, v)
            }
            SRem1 { dst, a, b, aw, bw } => {
                let (av, bv) = (rd(arena, a), rd(arena, b));
                let v = if bv == 0 {
                    av
                } else {
                    (sx(av, aw).wrapping_rem(sx(bv, bw)) as u64) & mask(aw)
                };
                wr(arena, dst, v)
            }
            Shl1 { dst, a, b, w } => {
                let amt = rd(arena, b);
                let v = if amt >= w as u64 {
                    0
                } else {
                    (rd(arena, a) << amt) & mask(w)
                };
                wr(arena, dst, v)
            }
            LShr1 { dst, a, b, w } => {
                let amt = rd(arena, b);
                let v = if amt >= w as u64 {
                    0
                } else {
                    rd(arena, a) >> amt
                };
                wr(arena, dst, v)
            }
            AShr1 { dst, a, b, w } => {
                let amt = rd(arena, b).min(63);
                let v = ((sx(rd(arena, a), w) >> amt) as u64) & mask(w);
                wr(arena, dst, v)
            }
            Eq1 { dst, a, b } => {
                let v = (rd(arena, a) == rd(arena, b)) as u64;
                wr(arena, dst, v)
            }
            Ne1 { dst, a, b } => {
                let v = (rd(arena, a) != rd(arena, b)) as u64;
                wr(arena, dst, v)
            }
            Ult1 { dst, a, b } => {
                let v = (rd(arena, a) < rd(arena, b)) as u64;
                wr(arena, dst, v)
            }
            Ule1 { dst, a, b } => {
                let v = (rd(arena, a) <= rd(arena, b)) as u64;
                wr(arena, dst, v)
            }
            Slt1 { dst, a, b, aw, bw } => {
                let v = (sx(rd(arena, a), aw) < sx(rd(arena, b), bw)) as u64;
                wr(arena, dst, v)
            }
            Sle1 { dst, a, b, aw, bw } => {
                let v = (sx(rd(arena, a), aw) <= sx(rd(arena, b), bw)) as u64;
                wr(arena, dst, v)
            }
            Mux1 { dst, sel, t, f } => {
                let src = if rd(arena, sel) & 1 == 1 { t } else { f };
                let v = rd(arena, src);
                wr(arena, dst, v)
            }
            Slice1 { dst, a, sh, w } => {
                let v = (rd(arena, a) >> sh) & mask(w);
                wr(arena, dst, v)
            }
            Sext1 { dst, a, aw, ow } => {
                let v = (sx(rd(arena, a), aw) as u64) & mask(ow);
                wr(arena, dst, v)
            }
            Concat1 { dst, a, b, sh } => {
                let v = (rd(arena, a) << sh) | rd(arena, b);
                wr(arena, dst, v)
            }
            AddC1 { dst, a, imm, w } => {
                let v = rd(arena, a).wrapping_add(imm) & mask(w);
                wr(arena, dst, v)
            }
            SubC1 { dst, a, imm, w } => {
                let v = rd(arena, a).wrapping_sub(imm) & mask(w);
                wr(arena, dst, v)
            }
            RSubC1 { dst, a, imm, w } => {
                let v = imm.wrapping_sub(rd(arena, a)) & mask(w);
                wr(arena, dst, v)
            }
            MulC1 { dst, a, imm, w } => {
                let v = rd(arena, a).wrapping_mul(imm) & mask(w);
                wr(arena, dst, v)
            }
            AndC1 { dst, a, imm } => {
                let v = rd(arena, a) & imm;
                wr(arena, dst, v)
            }
            OrC1 { dst, a, imm } => {
                let v = rd(arena, a) | imm;
                wr(arena, dst, v)
            }
            XorC1 { dst, a, imm } => {
                let v = rd(arena, a) ^ imm;
                wr(arena, dst, v)
            }
            EqC1 { dst, a, imm } => {
                let v = (rd(arena, a) == imm) as u64;
                wr(arena, dst, v)
            }
            NeC1 { dst, a, imm } => {
                let v = (rd(arena, a) != imm) as u64;
                wr(arena, dst, v)
            }
            ShlC1 { dst, a, sh, w } => {
                let v = (rd(arena, a) << sh) & mask(w);
                wr(arena, dst, v)
            }
            LShrC1 { dst, a, sh } => {
                let v = rd(arena, a) >> sh;
                wr(arena, dst, v)
            }
            AShrC1 { dst, a, sh, w } => {
                let v = ((sx(rd(arena, a), w) >> sh) as u64) & mask(w);
                wr(arena, dst, v)
            }
            CmpMux1 {
                kind,
                a,
                b,
                aw,
                bw,
                dst_c,
                t,
                f,
                dst,
            } => {
                let c = cmp1(kind, rd(arena, a), aw, rd(arena, b), bw);
                wr(arena, dst_c, c);
                let v = rd(arena, if c == 1 { t } else { f });
                wr(arena, dst, v)
            }
            AddSlice1 {
                a,
                b,
                aw,
                dst_a,
                sh,
                ow,
                dst,
            } => {
                let sum = rd(arena, a).wrapping_add(rd(arena, b)) & mask(aw);
                wr(arena, dst_a, sum);
                let v = (sum >> sh) & mask(ow);
                wr(arena, dst, v)
            }
            MulCAdd1 {
                a,
                imm,
                dst_p,
                b,
                dst,
                w,
            } => {
                let p = rd(arena, a).wrapping_mul(imm) & mask(w);
                wr(arena, dst_p, p);
                let v = p.wrapping_add(rd(arena, b)) & mask(w);
                wr(arena, dst, v)
            }
            ShlCAdd1 {
                a,
                sh,
                dst_p,
                b,
                dst,
                w,
            } => {
                let p = (rd(arena, a) << sh) & mask(w);
                wr(arena, dst_p, p);
                let v = p.wrapping_add(rd(arena, b)) & mask(w);
                wr(arena, dst, v)
            }
            NBin {
                op,
                dst,
                a,
                b,
                aw,
                bw,
                ow,
            } => exec_nbin(op, dst, a, b, aw, bw, ow, arena, scratch),
            NUn { op, dst, a, aw, ow } => exec_nun(op, dst, a, aw, ow, arena, scratch),
            NMux { dst, sel, t, f, l } => {
                let src = if rd(arena, sel) & 1 == 1 { t } else { f };
                sized(scratch, l as usize);
                scratch.copy_from_slice(&arena[src as usize..][..l as usize]);
                write_diff(&mut arena[dst as usize..][..l as usize], scratch)
            }
            NSlice { dst, a, aw, lo, ow } => {
                let (al, ol) = (limbs_for(aw as u32), limbs_for(ow as u32));
                sized(scratch, ol);
                let hi = lo as u32 + ow as u32 - 1;
                limbs::slice(scratch, &arena[a as usize..][..al], hi, lo as u32);
                write_diff(&mut arena[dst as usize..][..ol], scratch)
            }
            NConcat {
                dst,
                a,
                aw,
                b,
                bw,
                ow,
            } => {
                let (al, bl, ol) = (
                    limbs_for(aw as u32),
                    limbs_for(bw as u32),
                    limbs_for(ow as u32),
                );
                sized(scratch, ol);
                limbs::concat(
                    scratch,
                    &arena[a as usize..][..al],
                    aw as u32,
                    &arena[b as usize..][..bl],
                    bw as u32,
                );
                write_diff(&mut arena[dst as usize..][..ol], scratch)
            }
            NZext { dst, a, aw, ow } => {
                let (al, ol) = (limbs_for(aw as u32), limbs_for(ow as u32));
                sized(scratch, ol);
                limbs::zext(scratch, &arena[a as usize..][..al]);
                write_diff(&mut arena[dst as usize..][..ol], scratch)
            }
            NSext { dst, a, aw, ow } => {
                let (al, ol) = (limbs_for(aw as u32), limbs_for(ow as u32));
                sized(scratch, ol);
                limbs::sext(scratch, &arena[a as usize..][..al], aw as u32, ow as u32);
                write_diff(&mut arena[dst as usize..][..ol], scratch)
            }
            NCopy { dst, a, l } => {
                sized(scratch, l as usize);
                scratch.copy_from_slice(&arena[a as usize..][..l as usize]);
                write_diff(&mut arena[dst as usize..][..l as usize], scratch)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_nbin(
    op: NBinOp,
    dst: u32,
    a: u32,
    b: u32,
    aw: u16,
    bw: u16,
    ow: u16,
    arena: &mut [u64],
    scratch: &mut Vec<u64>,
) -> bool {
    let (al, bl, ol) = (
        limbs_for(aw as u32),
        limbs_for(bw as u32),
        limbs_for(ow as u32),
    );
    let av = &arena[a as usize..][..al];
    let bv = &arena[b as usize..][..bl];
    let one = |x: bool| x as u64;
    match op {
        NBinOp::And | NBinOp::Or | NBinOp::Xor | NBinOp::Add | NBinOp::Sub => {
            sized(scratch, ol);
            match op {
                NBinOp::And => limbs::and(scratch, av, bv),
                NBinOp::Or => limbs::or(scratch, av, bv),
                NBinOp::Xor => limbs::xor(scratch, av, bv),
                NBinOp::Add => limbs::add(scratch, av, bv, ow as u32),
                NBinOp::Sub => limbs::sub(scratch, av, bv, ow as u32),
                _ => unreachable!(),
            }
            write_diff(&mut arena[dst as usize..][..ol], scratch)
        }
        NBinOp::Eq => {
            let v = one(av == bv);
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NBinOp::Ne => {
            let v = one(av != bv);
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NBinOp::Ult => {
            let v = one(limbs::ult(av, bv));
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NBinOp::Ule => {
            let v = one(!limbs::ult(bv, av));
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NBinOp::Slt => {
            let v = one(limbs::slt(av, bv, aw as u32));
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NBinOp::Sle => {
            let v = one(!limbs::slt(bv, av, aw as u32));
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        // The rare wide hard ops go through the Bv oracle — deliberately
        // identical to the reference interpreter's semantics.
        NBinOp::Mul
        | NBinOp::UDiv
        | NBinOp::URem
        | NBinOp::SDiv
        | NBinOp::SRem
        | NBinOp::Shl
        | NBinOp::LShr
        | NBinOp::AShr => {
            let av = Bv::from_limbs(aw as u32, av);
            let bv = Bv::from_limbs(bw as u32, bv);
            let r = match op {
                NBinOp::Mul => av.wrapping_mul(&bv),
                NBinOp::UDiv => av.udiv(&bv),
                NBinOp::URem => av.urem(&bv),
                NBinOp::SDiv => av.sdiv(&bv),
                NBinOp::SRem => av.srem(&bv),
                NBinOp::Shl => av.shl_bv(&bv),
                NBinOp::LShr => av.lshr_bv(&bv),
                NBinOp::AShr => av.ashr_bv(&bv),
                _ => unreachable!(),
            };
            write_diff(&mut arena[dst as usize..][..ol], r.limbs())
        }
    }
}

fn exec_nun(
    op: NUnOp,
    dst: u32,
    a: u32,
    aw: u16,
    ow: u16,
    arena: &mut [u64],
    scratch: &mut Vec<u64>,
) -> bool {
    let al = limbs_for(aw as u32);
    let ol = limbs_for(ow as u32);
    let av = &arena[a as usize..][..al];
    match op {
        NUnOp::Not => {
            sized(scratch, ol);
            limbs::not(scratch, av, ow as u32);
            write_diff(&mut arena[dst as usize..][..ol], scratch)
        }
        NUnOp::Neg => {
            sized(scratch, ol);
            limbs::neg(scratch, av, ow as u32);
            write_diff(&mut arena[dst as usize..][..ol], scratch)
        }
        NUnOp::RedAnd => {
            let v = limbs::is_ones(av, aw as u32) as u64;
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NUnOp::RedOr => {
            let v = !limbs::is_zero(av) as u64;
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
        NUnOp::RedXor => {
            let v = limbs::red_xor(av) as u64;
            write_diff(&mut arena[dst as usize..][..1], &[v])
        }
    }
}

/// Validates one instruction against the arena length. Returns the error
/// message on failure.
fn validate(ins: &Instr, arena_len: usize) -> Result<(), String> {
    use Instr::*;
    let limb = |off: u32, what: &str| -> Result<(), String> {
        if (off as usize) < arena_len {
            Ok(())
        } else {
            Err(format!("{what} offset {off} outside arena of {arena_len}"))
        }
    };
    let span_l = |off: u32, l: usize, what: &str| -> Result<(), String> {
        if l == 0 {
            return Err(format!("{what} has zero width"));
        }
        if (off as usize) + l <= arena_len {
            Ok(())
        } else {
            Err(format!(
                "{what} span {off}+{l} outside arena of {arena_len}"
            ))
        }
    };
    let span = |off: u32, w: u16, what: &str| -> Result<(), String> {
        span_l(off, if w == 0 { 0 } else { limbs_for(w as u32) }, what)
    };
    let w1 = |w: u8, what: &str| -> Result<(), String> {
        if (1..=64).contains(&w) {
            Ok(())
        } else {
            Err(format!("{what} width {w} not in 1..=64"))
        }
    };
    match *ins {
        Copy1 { dst, a } | RedOr1 { dst, a } | RedXor1 { dst, a } | EqZ1 { dst, a } => {
            limb(dst, "dst")?;
            limb(a, "a")
        }
        Const1 { dst, .. } => limb(dst, "dst"),
        Not1 { dst, a, w } | Neg1 { dst, a, w } | RedAnd1 { dst, a, w } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            w1(w, "op")
        }
        And1 { dst, a, b }
        | Or1 { dst, a, b }
        | Xor1 { dst, a, b }
        | URem1 { dst, a, b }
        | Eq1 { dst, a, b }
        | Ne1 { dst, a, b }
        | Ult1 { dst, a, b }
        | Ule1 { dst, a, b }
        | Concat1 { dst, a, b, .. } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            limb(b, "b")
        }
        Add1 { dst, a, b, w }
        | Sub1 { dst, a, b, w }
        | Mul1 { dst, a, b, w }
        | UDiv1 { dst, a, b, w }
        | Shl1 { dst, a, b, w }
        | LShr1 { dst, a, b, w }
        | AShr1 { dst, a, b, w } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            limb(b, "b")?;
            w1(w, "op")
        }
        SDiv1 { dst, a, b, aw, bw }
        | SRem1 { dst, a, b, aw, bw }
        | Slt1 { dst, a, b, aw, bw }
        | Sle1 { dst, a, b, aw, bw } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            limb(b, "b")?;
            w1(aw, "lhs")?;
            w1(bw, "rhs")
        }
        Mux1 { dst, sel, t, f } => {
            limb(dst, "dst")?;
            limb(sel, "sel")?;
            limb(t, "t")?;
            limb(f, "f")
        }
        Slice1 { dst, a, sh, w } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            w1(w, "slice")?;
            if sh as u32 + w as u32 <= 64 {
                Ok(())
            } else {
                Err(format!("slice sh {sh} + width {w} exceeds 64"))
            }
        }
        Sext1 { dst, a, aw, ow } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            w1(aw, "src")?;
            w1(ow, "dst")?;
            if aw <= ow {
                Ok(())
            } else {
                Err(format!("sext narrows {aw} -> {ow}"))
            }
        }
        AddC1 { dst, a, w, .. }
        | SubC1 { dst, a, w, .. }
        | RSubC1 { dst, a, w, .. }
        | MulC1 { dst, a, w, .. } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            w1(w, "op")
        }
        AndC1 { dst, a, .. }
        | OrC1 { dst, a, .. }
        | XorC1 { dst, a, .. }
        | EqC1 { dst, a, .. }
        | NeC1 { dst, a, .. }
        | LShrC1 { dst, a, .. } => {
            limb(dst, "dst")?;
            limb(a, "a")
        }
        ShlC1 { dst, a, sh, w } | AShrC1 { dst, a, sh, w } => {
            limb(dst, "dst")?;
            limb(a, "a")?;
            w1(w, "op")?;
            if sh < 64 {
                Ok(())
            } else {
                Err(format!("const shift {sh} not below 64"))
            }
        }
        CmpMux1 {
            a,
            b,
            aw,
            bw,
            dst_c,
            t,
            f,
            dst,
            ..
        } => {
            limb(a, "a")?;
            limb(b, "b")?;
            limb(dst_c, "dst_c")?;
            limb(t, "t")?;
            limb(f, "f")?;
            limb(dst, "dst")?;
            w1(aw, "lhs")?;
            w1(bw, "rhs")
        }
        AddSlice1 {
            a,
            b,
            aw,
            dst_a,
            sh,
            ow,
            dst,
        } => {
            limb(a, "a")?;
            limb(b, "b")?;
            limb(dst_a, "dst_a")?;
            limb(dst, "dst")?;
            w1(aw, "add")?;
            w1(ow, "slice")?;
            if sh as u32 + ow as u32 <= aw as u32 {
                Ok(())
            } else {
                Err(format!("slice sh {sh} + width {ow} exceeds add width {aw}"))
            }
        }
        MulCAdd1 {
            a,
            dst_p,
            b,
            dst,
            w,
            ..
        } => {
            limb(a, "a")?;
            limb(b, "b")?;
            limb(dst_p, "dst_p")?;
            limb(dst, "dst")?;
            w1(w, "op")
        }
        ShlCAdd1 {
            a,
            sh,
            dst_p,
            b,
            dst,
            w,
        } => {
            limb(a, "a")?;
            limb(b, "b")?;
            limb(dst_p, "dst_p")?;
            limb(dst, "dst")?;
            w1(w, "op")?;
            if sh < w {
                Ok(())
            } else {
                Err(format!("fused shift {sh} not below width {w}"))
            }
        }
        NBin {
            dst,
            a,
            b,
            aw,
            bw,
            ow,
            ..
        } => {
            span(a, aw, "a")?;
            span(b, bw, "b")?;
            span(dst, ow, "dst")
        }
        NUn { dst, a, aw, ow, .. } => {
            span(a, aw, "a")?;
            span(dst, ow, "dst")
        }
        NMux { dst, sel, t, f, l } => {
            limb(sel, "sel")?;
            span_l(t, l as usize, "t")?;
            span_l(f, l as usize, "f")?;
            span_l(dst, l as usize, "dst")
        }
        NSlice { dst, a, aw, lo, ow } => {
            span(a, aw, "a")?;
            span(dst, ow, "dst")?;
            if lo as u32 + ow as u32 <= aw as u32 {
                Ok(())
            } else {
                Err(format!("slice [{lo}+{ow}] exceeds source width {aw}"))
            }
        }
        NConcat {
            dst,
            a,
            aw,
            b,
            bw,
            ow,
        } => {
            span(a, aw, "a")?;
            span(b, bw, "b")?;
            span(dst, ow, "dst")?;
            if aw as u32 + bw as u32 == ow as u32 {
                Ok(())
            } else {
                Err(format!("concat widths {aw}+{bw} != {ow}"))
            }
        }
        NZext { dst, a, aw, ow } | NSext { dst, a, aw, ow } => {
            span(a, aw, "a")?;
            span(dst, ow, "dst")?;
            if aw <= ow {
                Ok(())
            } else {
                Err(format!("extension narrows {aw} -> {ow}"))
            }
        }
        NCopy { dst, a, l } => {
            span_l(a, l as usize, "a")?;
            span_l(dst, l as usize, "dst")
        }
    }
}

#[cfg(test)]
mod tests;
