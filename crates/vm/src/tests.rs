//! Differential tests: every instruction against the `Bv` oracle, plus
//! validation rejection cases.

use super::*;
use dfv_bits::SplitMix64;

fn arena_of(vals: &[u64]) -> Vec<u64> {
    vals.to_vec()
}

fn one_instr(ins: Instr, arena_len: usize) -> Program {
    Program::new(vec![ins], arena_len).expect("valid instr")
}

fn run1(ins: Instr, arena: &mut [u64]) -> bool {
    let p = one_instr(ins, arena.len());
    let mut scratch = Vec::new();
    p.exec_one(0, arena, &mut scratch)
}

/// Oracle for a single-limb binary op via `Bv` (the reference semantics
/// the RTL interpreter uses for wide values).
fn bv_bin(op: NBinOp, a: u64, aw: u32, b: u64, bw: u32) -> u64 {
    let av = Bv::from_u64(aw, a);
    let bv = Bv::from_u64(bw, b);
    let r = match op {
        NBinOp::Add => av.wrapping_add(&bv),
        NBinOp::Sub => av.wrapping_sub(&bv),
        NBinOp::Mul => av.wrapping_mul(&bv),
        NBinOp::UDiv => av.udiv(&bv),
        NBinOp::URem => av.urem(&bv),
        NBinOp::SDiv => av.sdiv(&bv),
        NBinOp::SRem => av.srem(&bv),
        NBinOp::And => av.and(&bv),
        NBinOp::Or => av.or(&bv),
        NBinOp::Xor => av.xor(&bv),
        NBinOp::Shl => av.shl_bv(&bv),
        NBinOp::LShr => av.lshr_bv(&bv),
        NBinOp::AShr => av.ashr_bv(&bv),
        NBinOp::Eq => Bv::from_bool(av.limbs() == bv.limbs()),
        NBinOp::Ne => Bv::from_bool(av.limbs() != bv.limbs()),
        NBinOp::Ult => Bv::from_bool(av.ult(&bv)),
        NBinOp::Ule => Bv::from_bool(!bv.ult(&av)),
        NBinOp::Slt => Bv::from_bool(av.slt(&bv)),
        NBinOp::Sle => Bv::from_bool(!bv.slt(&av)),
    };
    r.to_u64()
}

const SAME_W: [NBinOp; 13] = [
    NBinOp::Add,
    NBinOp::Sub,
    NBinOp::Mul,
    NBinOp::UDiv,
    NBinOp::URem,
    NBinOp::SDiv,
    NBinOp::SRem,
    NBinOp::And,
    NBinOp::Or,
    NBinOp::Xor,
    NBinOp::Eq,
    NBinOp::Ne,
    NBinOp::Ult,
];

fn instr_for(op: NBinOp, w: u8) -> Instr {
    let (dst, a, b) = (2u32, 0u32, 1u32);
    match op {
        NBinOp::Add => Instr::Add1 { dst, a, b, w },
        NBinOp::Sub => Instr::Sub1 { dst, a, b, w },
        NBinOp::Mul => Instr::Mul1 { dst, a, b, w },
        NBinOp::UDiv => Instr::UDiv1 { dst, a, b, w },
        NBinOp::URem => Instr::URem1 { dst, a, b },
        NBinOp::SDiv => Instr::SDiv1 {
            dst,
            a,
            b,
            aw: w,
            bw: w,
        },
        NBinOp::SRem => Instr::SRem1 {
            dst,
            a,
            b,
            aw: w,
            bw: w,
        },
        NBinOp::And => Instr::And1 { dst, a, b },
        NBinOp::Or => Instr::Or1 { dst, a, b },
        NBinOp::Xor => Instr::Xor1 { dst, a, b },
        NBinOp::Shl => Instr::Shl1 { dst, a, b, w },
        NBinOp::LShr => Instr::LShr1 { dst, a, b, w },
        NBinOp::AShr => Instr::AShr1 { dst, a, b, w },
        NBinOp::Eq => Instr::Eq1 { dst, a, b },
        NBinOp::Ne => Instr::Ne1 { dst, a, b },
        NBinOp::Ult => Instr::Ult1 { dst, a, b },
        NBinOp::Ule => Instr::Ule1 { dst, a, b },
        NBinOp::Slt => Instr::Slt1 {
            dst,
            a,
            b,
            aw: w,
            bw: w,
        },
        NBinOp::Sle => Instr::Sle1 {
            dst,
            a,
            b,
            aw: w,
            bw: w,
        },
    }
}

#[test]
fn single_limb_bins_match_bv_oracle() {
    let mut rng = SplitMix64::new(0x1BAD_B002);
    for &w in &[1u8, 2, 7, 8, 31, 32, 33, 63, 64] {
        for _ in 0..200 {
            let a = rng.bits(w as u32);
            let b = rng.bits(w as u32);
            for op in SAME_W
                .iter()
                .chain([NBinOp::Ule, NBinOp::Slt, NBinOp::Sle].iter())
            {
                let mut arena = arena_of(&[a, b, 0xDEAD]);
                run1(instr_for(*op, w), &mut arena);
                assert_eq!(
                    arena[2],
                    bv_bin(*op, a, w as u32, b, w as u32),
                    "op {op:?} w {w} a {a:#x} b {b:#x}"
                );
            }
            // Division by zero paths.
            for op in [NBinOp::UDiv, NBinOp::URem, NBinOp::SDiv, NBinOp::SRem] {
                let mut arena = arena_of(&[a, 0, 0]);
                run1(instr_for(op, w), &mut arena);
                assert_eq!(
                    arena[2],
                    bv_bin(op, a, w as u32, 0, w as u32),
                    "{op:?}/0 w {w}"
                );
            }
        }
    }
}

#[test]
fn single_limb_shifts_match_bv_oracle_incl_oversize_amounts() {
    let mut rng = SplitMix64::new(0x51F7);
    for &w in &[1u8, 7, 32, 63, 64] {
        for amt in 0..=(w as u64 + 3) {
            let a = rng.bits(w as u32);
            for op in [NBinOp::Shl, NBinOp::LShr, NBinOp::AShr] {
                let mut arena = arena_of(&[a, amt, 0]);
                run1(instr_for(op, w), &mut arena);
                assert_eq!(
                    arena[2],
                    bv_bin(op, a, w as u32, amt, w as u32),
                    "{op:?} w {w} amt {amt}"
                );
            }
        }
    }
}

#[test]
fn single_limb_unary_and_structural_match_bv_oracle() {
    let mut rng = SplitMix64::new(0x0DD5);
    for &w in &[1u8, 5, 17, 63, 64] {
        for _ in 0..100 {
            let a = rng.bits(w as u32);
            let av = Bv::from_u64(w as u32, a);

            let mut ar = arena_of(&[a, 0]);
            run1(Instr::Not1 { dst: 1, a: 0, w }, &mut ar);
            assert_eq!(ar[1], av.not().to_u64());

            let mut ar = arena_of(&[a, 0]);
            run1(Instr::Neg1 { dst: 1, a: 0, w }, &mut ar);
            assert_eq!(ar[1], av.wrapping_neg().to_u64());

            let mut ar = arena_of(&[a, 0]);
            run1(Instr::RedAnd1 { dst: 1, a: 0, w }, &mut ar);
            assert_eq!(ar[1], av.reduce_and() as u64);

            let mut ar = arena_of(&[a, 0]);
            run1(Instr::RedOr1 { dst: 1, a: 0 }, &mut ar);
            assert_eq!(ar[1], av.reduce_or() as u64);

            let mut ar = arena_of(&[a, 0]);
            run1(Instr::RedXor1 { dst: 1, a: 0 }, &mut ar);
            assert_eq!(ar[1], av.reduce_xor() as u64);

            let mut ar = arena_of(&[a, 0]);
            run1(Instr::EqZ1 { dst: 1, a: 0 }, &mut ar);
            assert_eq!(ar[1], av.is_zero() as u64);

            // Slice: every (lo, width) pair that fits in the value.
            let lo = (rng.next_u64() % w as u64) as u8;
            let sw = 1 + (rng.next_u64() % (w as u64 - lo as u64)) as u8;
            let mut ar = arena_of(&[a, 0]);
            run1(
                Instr::Slice1 {
                    dst: 1,
                    a: 0,
                    sh: lo,
                    w: sw,
                },
                &mut ar,
            );
            assert_eq!(
                ar[1],
                av.slice(lo as u32 + sw as u32 - 1, lo as u32).to_u64(),
                "slice w {w} lo {lo} sw {sw}"
            );

            // Sext to a wider single-limb width.
            let ow = w + (rng.next_u64() % (64 - w as u64 + 1)) as u8;
            let mut ar = arena_of(&[a, 0]);
            run1(
                Instr::Sext1 {
                    dst: 1,
                    a: 0,
                    aw: w,
                    ow,
                },
                &mut ar,
            );
            assert_eq!(ar[1], av.sext(ow as u32).to_u64(), "sext {w} -> {ow}");
        }
    }
    // Concat within one limb.
    let mut ar = arena_of(&[0xAB, 0xF, 0]);
    run1(
        Instr::Concat1 {
            dst: 2,
            a: 0,
            b: 1,
            sh: 4,
        },
        &mut ar,
    );
    assert_eq!(
        ar[2],
        Bv::from_u64(8, 0xAB).concat(&Bv::from_u64(4, 0xF)).to_u64()
    );
    // Mux picks by the select LSB.
    for sel in [0u64, 1, 2, 3] {
        let mut ar = arena_of(&[sel, 11, 22, 0]);
        run1(
            Instr::Mux1 {
                dst: 3,
                sel: 0,
                t: 1,
                f: 2,
            },
            &mut ar,
        );
        assert_eq!(ar[3], if sel & 1 == 1 { 11 } else { 22 });
    }
}

#[test]
fn const_forms_match_their_two_operand_twins() {
    let mut rng = SplitMix64::new(0xC0457);
    for &w in &[1u8, 9, 40, 64] {
        for _ in 0..100 {
            let a = rng.bits(w as u32);
            let c = rng.bits(w as u32);
            let cases: Vec<(Instr, u64)> = vec![
                (
                    Instr::AddC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                        w,
                    },
                    bv_bin(NBinOp::Add, a, w as u32, c, w as u32),
                ),
                (
                    Instr::SubC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                        w,
                    },
                    bv_bin(NBinOp::Sub, a, w as u32, c, w as u32),
                ),
                (
                    Instr::RSubC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                        w,
                    },
                    bv_bin(NBinOp::Sub, c, w as u32, a, w as u32),
                ),
                (
                    Instr::MulC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                        w,
                    },
                    bv_bin(NBinOp::Mul, a, w as u32, c, w as u32),
                ),
                (
                    Instr::AndC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                    },
                    a & c,
                ),
                (
                    Instr::OrC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                    },
                    a | c,
                ),
                (
                    Instr::XorC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                    },
                    a ^ c,
                ),
                (
                    Instr::EqC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                    },
                    (a == c) as u64,
                ),
                (
                    Instr::NeC1 {
                        dst: 1,
                        a: 0,
                        imm: c,
                    },
                    (a != c) as u64,
                ),
            ];
            for (ins, want) in cases {
                let mut ar = arena_of(&[a, 0]);
                run1(ins, &mut ar);
                assert_eq!(ar[1], want, "{ins:?}");
            }
            let sh = (rng.next_u64() % w as u64) as u8;
            let shift_cases: Vec<(Instr, u64)> = vec![
                (
                    Instr::ShlC1 {
                        dst: 1,
                        a: 0,
                        sh,
                        w,
                    },
                    bv_bin(NBinOp::Shl, a, w as u32, sh as u64, w as u32),
                ),
                (
                    Instr::LShrC1 { dst: 1, a: 0, sh },
                    bv_bin(NBinOp::LShr, a, w as u32, sh as u64, w as u32),
                ),
                (
                    Instr::AShrC1 {
                        dst: 1,
                        a: 0,
                        sh,
                        w,
                    },
                    bv_bin(NBinOp::AShr, a, w as u32, sh as u64, w as u32),
                ),
            ];
            for (ins, want) in shift_cases {
                let mut ar = arena_of(&[a, 0]);
                run1(ins, &mut ar);
                assert_eq!(ar[1], want, "{ins:?} sh {sh}");
            }
        }
    }
}

#[test]
fn fused_pairs_write_both_destinations() {
    let mut rng = SplitMix64::new(0x000F_05ED);
    for _ in 0..200 {
        let w = 1 + (rng.next_u64() % 64) as u8;
        let a = rng.bits(w as u32);
        let b = rng.bits(w as u32);
        let (t, f) = (rng.next_u64(), rng.next_u64());
        for kind in [Cmp::Eq, Cmp::Ne, Cmp::Ult, Cmp::Ule, Cmp::Slt, Cmp::Sle] {
            // arena: a b t f dst_c dst
            let mut ar = arena_of(&[a, b, t, f, 99, 99]);
            run1(
                Instr::CmpMux1 {
                    kind,
                    a: 0,
                    b: 1,
                    aw: w,
                    bw: w,
                    dst_c: 4,
                    t: 2,
                    f: 3,
                    dst: 5,
                },
                &mut ar,
            );
            let c = cmp1(kind, a, w, b, w);
            assert_eq!(ar[4], c, "fused compare slot {kind:?} w {w}");
            assert_eq!(ar[5], if c == 1 { t } else { f }, "fused mux out {kind:?}");
        }

        let sh = (rng.next_u64() % w as u64) as u8;
        let ow = 1 + (rng.next_u64() % (w - sh) as u64) as u8;
        // arena: a b dst_a dst
        let mut ar = arena_of(&[a, b, 99, 99]);
        run1(
            Instr::AddSlice1 {
                a: 0,
                b: 1,
                aw: w,
                dst_a: 2,
                sh,
                ow,
                dst: 3,
            },
            &mut ar,
        );
        let sum = bv_bin(NBinOp::Add, a, w as u32, b, w as u32);
        assert_eq!(ar[2], sum, "fused add slot");
        assert_eq!(ar[3], (sum >> sh) & mask(ow), "fused slice out");

        // Fused multiply-accumulate: p = (a*imm)&mask; dst = (p+b)&mask.
        let imm = rng.bits(w as u32);
        // arena: a b dst_p dst
        let mut ar = arena_of(&[a, b, 99, 99]);
        run1(
            Instr::MulCAdd1 {
                a: 0,
                imm,
                dst_p: 2,
                b: 1,
                dst: 3,
                w,
            },
            &mut ar,
        );
        let p = a.wrapping_mul(imm) & mask(w);
        assert_eq!(ar[2], p, "fused mul slot w {w}");
        assert_eq!(ar[3], p.wrapping_add(b) & mask(w), "fused mac out w {w}");

        // Fused shift-accumulate: p = (a<<sh)&mask; dst = (p+b)&mask.
        let sh = (rng.next_u64() % w as u64) as u8;
        let mut ar = arena_of(&[a, b, 99, 99]);
        run1(
            Instr::ShlCAdd1 {
                a: 0,
                sh,
                dst_p: 2,
                b: 1,
                dst: 3,
                w,
            },
            &mut ar,
        );
        let p = (a << sh) & mask(w);
        assert_eq!(ar[2], p, "fused shl slot w {w} sh {sh}");
        assert_eq!(
            ar[3],
            p.wrapping_add(b) & mask(w),
            "fused sac out w {w} sh {sh}"
        );
    }
}

#[test]
fn aliased_dst_is_safe_for_single_limb_ops() {
    // x = x + x, x = x - x, x = x * x in place — the SLM front-end
    // compiles `x = x + 1`-style updates to dst == a.
    let mut ar = arena_of(&[7, 3]);
    run1(
        Instr::Add1 {
            dst: 0,
            a: 0,
            b: 1,
            w: 8,
        },
        &mut ar,
    );
    assert_eq!(ar[0], 10);
    run1(
        Instr::Sub1 {
            dst: 0,
            a: 0,
            b: 0,
            w: 8,
        },
        &mut ar,
    );
    assert_eq!(ar[0], 0);
    let mut ar = arena_of(&[5]);
    run1(
        Instr::MulC1 {
            dst: 0,
            a: 0,
            imm: 5,
            w: 8,
        },
        &mut ar,
    );
    assert_eq!(ar[0], 25);
}

#[test]
fn change_flag_is_compare_before_write() {
    let mut ar = arena_of(&[1, 2, 0]);
    assert!(run1(
        Instr::Add1 {
            dst: 2,
            a: 0,
            b: 1,
            w: 8
        },
        &mut ar
    ));
    assert!(!run1(
        Instr::Add1 {
            dst: 2,
            a: 0,
            b: 1,
            w: 8
        },
        &mut ar
    ));
    // Fused forms report the FINAL destination's change only.
    let mut ar = arena_of(&[4, 4, 10, 20, 9, 10]);
    let ins = Instr::CmpMux1 {
        kind: Cmp::Eq,
        a: 0,
        b: 1,
        aw: 8,
        bw: 8,
        dst_c: 4,
        t: 2,
        f: 3,
        dst: 5,
    };
    assert!(
        !run1(ins, &mut ar),
        "mux output unchanged, compare slot did change"
    );
    assert_eq!(ar[4], 1, "compare slot still written");
}

#[test]
fn multi_limb_ops_match_bv_oracle_across_width_boundaries() {
    let mut rng = SplitMix64::new(0xB16_B16);
    let mut scratch = Vec::new();
    // The issue's width ladder: 65, 127, 128, 200 (single-limb widths are
    // covered by the `*1` tests above).
    for &w in &[65u16, 127, 128, 200] {
        let l = limbs_for(w as u32);
        for _ in 0..40 {
            let av: Vec<u64> = (0..l).map(|_| rng.next_u64()).collect();
            let bv: Vec<u64> = (0..l).map(|_| rng.next_u64()).collect();
            let a = Bv::from_limbs(w as u32, &av);
            let b = Bv::from_limbs(w as u32, &bv);
            let all = [
                NBinOp::Add,
                NBinOp::Sub,
                NBinOp::Mul,
                NBinOp::UDiv,
                NBinOp::URem,
                NBinOp::SDiv,
                NBinOp::SRem,
                NBinOp::And,
                NBinOp::Or,
                NBinOp::Xor,
                NBinOp::Shl,
                NBinOp::LShr,
                NBinOp::AShr,
                NBinOp::Eq,
                NBinOp::Ne,
                NBinOp::Ult,
                NBinOp::Ule,
                NBinOp::Slt,
                NBinOp::Sle,
            ];
            for op in all {
                let cmp = matches!(
                    op,
                    NBinOp::Eq | NBinOp::Ne | NBinOp::Ult | NBinOp::Ule | NBinOp::Slt | NBinOp::Sle
                );
                let ow = if cmp { 1 } else { w };
                let ol = limbs_for(ow as u32);
                let mut arena = vec![0u64; 3 * l];
                arena[..l].copy_from_slice(a.limbs());
                arena[l..2 * l].copy_from_slice(b.limbs());
                let p = one_instr(
                    Instr::NBin {
                        op,
                        dst: (2 * l) as u32,
                        a: 0,
                        b: l as u32,
                        aw: w,
                        bw: w,
                        ow,
                    },
                    3 * l,
                );
                p.exec_one(0, &mut arena, &mut scratch);
                let want = match op {
                    NBinOp::Add => a.wrapping_add(&b),
                    NBinOp::Sub => a.wrapping_sub(&b),
                    NBinOp::Mul => a.wrapping_mul(&b),
                    NBinOp::UDiv => a.udiv(&b),
                    NBinOp::URem => a.urem(&b),
                    NBinOp::SDiv => a.sdiv(&b),
                    NBinOp::SRem => a.srem(&b),
                    NBinOp::And => a.and(&b),
                    NBinOp::Or => a.or(&b),
                    NBinOp::Xor => a.xor(&b),
                    NBinOp::Shl => a.shl_bv(&b),
                    NBinOp::LShr => a.lshr_bv(&b),
                    NBinOp::AShr => a.ashr_bv(&b),
                    NBinOp::Eq => Bv::from_bool(a.limbs() == b.limbs()),
                    NBinOp::Ne => Bv::from_bool(a.limbs() != b.limbs()),
                    NBinOp::Ult => Bv::from_bool(a.ult(&b)),
                    NBinOp::Ule => Bv::from_bool(!b.ult(&a)),
                    NBinOp::Slt => Bv::from_bool(a.slt(&b)),
                    NBinOp::Sle => Bv::from_bool(!b.slt(&a)),
                };
                assert_eq!(&arena[2 * l..2 * l + ol], want.limbs(), "{op:?} w {w}");
            }

            // Unary.
            for op in [
                NUnOp::Not,
                NUnOp::Neg,
                NUnOp::RedAnd,
                NUnOp::RedOr,
                NUnOp::RedXor,
            ] {
                let red = !matches!(op, NUnOp::Not | NUnOp::Neg);
                let ow = if red { 1 } else { w };
                let ol = limbs_for(ow as u32);
                let mut arena = vec![0u64; 2 * l];
                arena[..l].copy_from_slice(a.limbs());
                let p = one_instr(
                    Instr::NUn {
                        op,
                        dst: l as u32,
                        a: 0,
                        aw: w,
                        ow,
                    },
                    2 * l,
                );
                p.exec_one(0, &mut arena, &mut scratch);
                let want = match op {
                    NUnOp::Not => a.not(),
                    NUnOp::Neg => a.wrapping_neg(),
                    NUnOp::RedAnd => Bv::from_bool(a.reduce_and()),
                    NUnOp::RedOr => Bv::from_bool(a.reduce_or()),
                    NUnOp::RedXor => Bv::from_bool(a.reduce_xor()),
                };
                assert_eq!(&arena[l..l + ol], want.limbs(), "{op:?} w {w}");
            }

            // Slice / zext / sext / concat / mux / copy.
            let lo = (rng.next_u64() % w as u64) as u16;
            let ow = 1 + (rng.next_u64() % (w - lo) as u64) as u16;
            let ol = limbs_for(ow as u32);
            let mut arena = vec![0u64; 2 * l];
            arena[..l].copy_from_slice(a.limbs());
            let p = one_instr(
                Instr::NSlice {
                    dst: l as u32,
                    a: 0,
                    aw: w,
                    lo,
                    ow,
                },
                2 * l,
            );
            p.exec_one(0, &mut arena, &mut scratch);
            assert_eq!(
                &arena[l..l + ol],
                a.slice(lo as u32 + ow as u32 - 1, lo as u32).limbs(),
                "nslice w {w} lo {lo} ow {ow}"
            );

            let xw = w + 64;
            let xl = limbs_for(xw as u32);
            let mut arena = vec![0u64; l + 2 * xl];
            arena[..l].copy_from_slice(a.limbs());
            let pz = one_instr(
                Instr::NZext {
                    dst: l as u32,
                    a: 0,
                    aw: w,
                    ow: xw,
                },
                l + 2 * xl,
            );
            let ps = one_instr(
                Instr::NSext {
                    dst: (l + xl) as u32,
                    a: 0,
                    aw: w,
                    ow: xw,
                },
                l + 2 * xl,
            );
            pz.exec_one(0, &mut arena, &mut scratch);
            ps.exec_one(0, &mut arena, &mut scratch);
            assert_eq!(&arena[l..l + xl], a.zext(xw as u32).limbs(), "nzext w {w}");
            assert_eq!(
                &arena[l + xl..l + 2 * xl],
                a.sext(xw as u32).limbs(),
                "nsext w {w}"
            );

            let cw = w + w;
            let cl = limbs_for(cw as u32);
            let mut arena = vec![0u64; 2 * l + cl];
            arena[..l].copy_from_slice(a.limbs());
            arena[l..2 * l].copy_from_slice(b.limbs());
            let p = one_instr(
                Instr::NConcat {
                    dst: (2 * l) as u32,
                    a: 0,
                    aw: w,
                    b: l as u32,
                    bw: w,
                    ow: cw,
                },
                2 * l + cl,
            );
            p.exec_one(0, &mut arena, &mut scratch);
            assert_eq!(
                &arena[2 * l..2 * l + cl],
                a.concat(&b).limbs(),
                "nconcat w {w}"
            );

            for sel in [0u64, 1] {
                let mut arena = vec![0u64; 1 + 3 * l];
                arena[0] = sel;
                arena[1..1 + l].copy_from_slice(a.limbs());
                arena[1 + l..1 + 2 * l].copy_from_slice(b.limbs());
                let p = one_instr(
                    Instr::NMux {
                        dst: (1 + 2 * l) as u32,
                        sel: 0,
                        t: 1,
                        f: (1 + l) as u32,
                        l: l as u16,
                    },
                    1 + 3 * l,
                );
                p.exec_one(0, &mut arena, &mut scratch);
                let want = if sel == 1 { a.limbs() } else { b.limbs() };
                assert_eq!(&arena[1 + 2 * l..1 + 3 * l], want, "nmux w {w} sel {sel}");
            }

            let mut arena = vec![0u64; 2 * l];
            arena[..l].copy_from_slice(a.limbs());
            let p = one_instr(
                Instr::NCopy {
                    dst: l as u32,
                    a: 0,
                    l: l as u16,
                },
                2 * l,
            );
            assert!(p.exec_one(0, &mut arena, &mut scratch) || a.is_zero());
            assert_eq!(&arena[l..2 * l], a.limbs(), "ncopy w {w}");
        }
    }
}

#[test]
fn wide_shift_amounts_at_and_beyond_width_are_zero_or_signfill() {
    let mut scratch = Vec::new();
    for &w in &[65u16, 128, 200] {
        let l = limbs_for(w as u32);
        let a = Bv::ones(w as u32);
        for amt in [w as u64 - 1, w as u64, w as u64 + 7, 1 << 20] {
            let b = Bv::from_u64(w as u32, amt);
            for op in [NBinOp::Shl, NBinOp::LShr, NBinOp::AShr] {
                let mut arena = vec![0u64; 3 * l];
                arena[..l].copy_from_slice(a.limbs());
                arena[l..2 * l].copy_from_slice(b.limbs());
                let p = one_instr(
                    Instr::NBin {
                        op,
                        dst: (2 * l) as u32,
                        a: 0,
                        b: l as u32,
                        aw: w,
                        bw: w,
                        ow: w,
                    },
                    3 * l,
                );
                p.exec_one(0, &mut arena, &mut scratch);
                let want = match op {
                    NBinOp::Shl => a.shl_bv(&b),
                    NBinOp::LShr => a.lshr_bv(&b),
                    NBinOp::AShr => a.ashr_bv(&b),
                    _ => unreachable!(),
                };
                assert_eq!(&arena[2 * l..3 * l], want.limbs(), "{op:?} w {w} amt {amt}");
            }
        }
    }
}

#[test]
fn validation_rejects_bad_programs() {
    // Out-of-range operand.
    let e = Program::new(vec![Instr::Copy1 { dst: 4, a: 0 }], 4).unwrap_err();
    assert!(e.to_string().contains("outside arena"), "{e}");
    // Zero width.
    assert!(Program::new(
        vec![Instr::Add1 {
            dst: 0,
            a: 1,
            b: 2,
            w: 0
        }],
        3
    )
    .is_err());
    // Width over 64 in a single-limb op.
    assert!(Program::new(
        vec![Instr::Add1 {
            dst: 0,
            a: 1,
            b: 2,
            w: 65
        }],
        3
    )
    .is_err());
    // Slice past the limb.
    assert!(Program::new(
        vec![Instr::Slice1 {
            dst: 0,
            a: 1,
            sh: 60,
            w: 8
        }],
        2
    )
    .is_err());
    // Narrowing "extension".
    assert!(Program::new(
        vec![Instr::Sext1 {
            dst: 0,
            a: 1,
            aw: 32,
            ow: 8
        }],
        2
    )
    .is_err());
    // Multi-limb span that pokes past the arena end.
    assert!(Program::new(vec![Instr::NCopy { dst: 2, a: 0, l: 2 }], 3).is_err());
    // Fused shift-accumulate with the shift at (not below) the width.
    assert!(Program::new(
        vec![Instr::ShlCAdd1 {
            a: 0,
            sh: 8,
            dst_p: 1,
            b: 2,
            dst: 3,
            w: 8
        }],
        4
    )
    .is_err());
    // Concat width mismatch.
    assert!(Program::new(
        vec![Instr::NConcat {
            dst: 4,
            a: 0,
            aw: 65,
            b: 2,
            bw: 64,
            ow: 128
        }],
        7
    )
    .is_err());
    // Error names the instruction index.
    let e = Program::new(
        vec![
            Instr::Const1 { dst: 0, imm: 1 },
            Instr::Copy1 { dst: 9, a: 0 },
        ],
        2,
    )
    .unwrap_err();
    assert_eq!(e.instr, 1);
}

#[test]
fn run_range_executes_straight_line_blocks() {
    // dst2 = (a + b) & 0xff; dst3 = dst2 * 3 — as a two-instr block.
    let p = Program::new(
        vec![
            Instr::Add1 {
                dst: 2,
                a: 0,
                b: 1,
                w: 8,
            },
            Instr::MulC1 {
                dst: 3,
                a: 2,
                imm: 3,
                w: 8,
            },
        ],
        4,
    )
    .unwrap();
    let mut arena = vec![200, 100, 0, 0];
    let mut scratch = Vec::new();
    p.run_range(0, 2, &mut arena, &mut scratch);
    assert_eq!(arena[2], (200 + 100) & 0xff);
    assert_eq!(arena[3], (((200 + 100) & 0xff) * 3) & 0xff);
    // run() covers the whole program.
    let mut arena2 = vec![200, 100, 0, 0];
    p.run(&mut arena2, &mut scratch);
    assert_eq!(arena, arena2);
}

#[test]
#[should_panic(expected = "arena shorter than validated")]
fn exec_refuses_short_arena() {
    let p = Program::new(vec![Instr::Const1 { dst: 3, imm: 1 }], 4).unwrap();
    let mut arena = vec![0u64; 2];
    p.exec_one(0, &mut arena, &mut Vec::new());
}
