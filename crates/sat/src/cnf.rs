//! A standalone CNF formula type with DIMACS I/O and a brute-force
//! reference solver for cross-validation in tests and benches.

use std::fmt;
use std::fmt::Write as _;

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// The formula is too large for exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceError {
    /// How many variables the formula has.
    pub num_vars: usize,
    /// The enumeration cap (currently 24 variables).
    pub limit: usize,
}

impl fmt::Display for BruteForceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "brute force limited to {} variables, formula has {}",
            self.limit, self.num_vars
        )
    }
}

impl std::error::Error for BruteForceError {}

/// A CNF formula independent of any solver instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(l.var().index() < self.num_vars, "unallocated variable");
        }
        self.clauses.push(c);
    }

    /// Loads the formula into a fresh [`Solver`] and solves it.
    pub fn solve(&self) -> (SolveResult, Solver) {
        let mut s = Solver::new();
        s.new_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c);
        }
        let r = s.solve();
        (r, s)
    }

    /// Exhaustive satisfiability check — exponential; only for
    /// cross-validating the CDCL solver on small instances in tests.
    ///
    /// # Errors
    ///
    /// Returns [`BruteForceError`] if the formula has more than 24
    /// variables, instead of attempting a 2^n enumeration.
    pub fn brute_force_sat(&self) -> Result<bool, BruteForceError> {
        const LIMIT: usize = 24;
        if self.num_vars > LIMIT {
            return Err(BruteForceError {
                num_vars: self.num_vars,
                limit: LIMIT,
            });
        }
        'outer: for bits in 0u64..(1 << self.num_vars) {
            for c in &self.clauses {
                let sat = c.iter().any(|l| {
                    let val = (bits >> l.var().index()) & 1 == 1;
                    val != l.is_negated()
                });
                if !sat {
                    continue 'outer;
                }
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Evaluates the formula under a (total) assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] != l.is_negated())
        })
    }

    /// Serializes to DIMACS CNF.
    pub fn to_dimacs(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let n = l.var().index() as i64 + 1;
                let _ = write!(s, "{} ", if l.is_negated() { -n } else { n });
            }
            let _ = writeln!(s, "0");
        }
        s
    }

    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_dimacs(text: &str) -> Result<Cnf, String> {
        let mut cnf = Cnf::new();
        let mut declared_vars = 0usize;
        let mut current: Vec<Lit> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p cnf") {
                let mut it = rest.split_whitespace();
                declared_vars = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("line {}: bad problem line", ln + 1))?;
                while cnf.num_vars < declared_vars {
                    cnf.new_var();
                }
                continue;
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok
                    .parse()
                    .map_err(|_| format!("line {}: bad literal {tok:?}", ln + 1))?;
                if n == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let idx = (n.unsigned_abs() - 1) as usize;
                    if idx >= declared_vars {
                        return Err(format!("line {}: variable {} out of range", ln + 1, n));
                    }
                    current.push(Var(idx as u32).lit(n > 0));
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.negative()]);
        cnf.add_clause([a.negative()]);
        let text = cnf.to_dimacs();
        assert_eq!(text, "p cnf 2 2\n1 -2 0\n-1 0\n");
        let back = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(Cnf::from_dimacs("p cnf x y\n").is_err());
        assert!(Cnf::from_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(Cnf::from_dimacs("p cnf 1 1\nfoo 0\n").is_err());
    }

    #[test]
    fn brute_force_agrees_on_tiny_instances() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        assert_eq!(cnf.brute_force_sat(), Ok(true));
        let (r, _) = cnf.solve();
        assert_eq!(r, SolveResult::Sat);
        cnf.add_clause([a.positive(), b.negative()]);
        cnf.add_clause([a.negative(), b.positive()]);
        assert_eq!(cnf.brute_force_sat(), Ok(false));
        let (r, _) = cnf.solve();
        assert_eq!(r, SolveResult::Unsat);
    }

    #[test]
    fn brute_force_rejects_large_formulas() {
        let mut cnf = Cnf::new();
        for _ in 0..25 {
            cnf.new_var();
        }
        let err = cnf.brute_force_sat().unwrap_err();
        assert_eq!(err.num_vars, 25);
        assert_eq!(err.limit, 24);
        assert!(err.to_string().contains("25"));
    }

    #[test]
    fn eval_checks_assignments() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.positive()]);
        assert!(cnf.eval(&[true, false]));
        assert!(!cnf.eval(&[false, false]));
    }
}
