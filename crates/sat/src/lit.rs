//! Variables and literals.

use std::fmt;
use std::ops;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw 0-based index.
    ///
    /// Both [`crate::Solver`] and [`crate::Cnf`] allocate variables densely
    /// from 0, so indices are interchangeable between them; using an index
    /// that was never allocated in the target solver is an error that
    /// [`crate::Solver::add_clause`] will catch.
    pub fn from_index(i: usize) -> Var {
        Var(i as u32)
    }

    /// The raw index of this variable (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given polarity (`true` =
    /// positive).
    pub fn lit(self, polarity: bool) -> Lit {
        if polarity {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` where sign 1 means negated, so a literal
/// indexes watch lists directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The raw index (`2 * var + sign`), used for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(3);
        assert_eq!(v.positive().index(), 6);
        assert_eq!(v.negative().index(), 7);
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
        assert!(v.negative().is_negated());
        assert_eq!(v.negative().var(), v);
        assert_eq!(v.positive().to_string(), "x3");
        assert_eq!(v.negative().to_string(), "-x3");
    }
}
