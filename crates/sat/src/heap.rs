//! An indexed max-heap over variable activities (the VSIDS order).

use crate::lit::Var;

/// Max-heap of variables keyed by an external activity array, supporting
/// `decrease/increase key` via [`VarHeap::update`] and membership queries.
#[derive(Debug, Clone, Default)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    #[cfg(test)]
    pub fn new() -> Self {
        VarHeap::default()
    }

    pub fn grow_to(&mut self, nvars: usize) {
        if self.pos.len() < nvars {
            self.pos.resize(nvars, ABSENT);
        }
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow_to(v.index() + 1);
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = ABSENT;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        for i in 0..4 {
            h.insert(Var(i), &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&act))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(h.is_empty());
    }

    #[test]
    fn update_moves_var_up() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &act);
        }
        act[0] = 10.0;
        h.update(Var(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var(0)));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let act = vec![1.0];
        let mut h = VarHeap::new();
        h.insert(Var(0), &act);
        h.insert(Var(0), &act);
        assert_eq!(h.pop_max(&act), Some(Var(0)));
        assert_eq!(h.pop_max(&act), None);
    }
}
