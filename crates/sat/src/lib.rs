//! A CDCL SAT solver built from scratch as the decision-procedure substrate
//! for sequential equivalence checking (`dfv-sec`).
//!
//! The DAC 2007 paper this workspace reproduces relies on a commercial
//! sequential equivalence checker; this crate supplies the reasoning engine
//! underneath our from-scratch replacement. Features:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict-driven clause learning with non-chronological
//!   backjumping,
//! * VSIDS decision heuristics with phase saving,
//! * Luby-sequence restarts,
//! * activity-based learnt-clause database reduction,
//! * **incremental solving under assumptions** — learnt clauses persist
//!   across [`Solver::solve_with`] calls, which is what makes the paper's
//!   recommended *incremental* SLM/RTL equivalence runs (§4.1) cheap,
//! * **budgeted solving** — [`Solver::solve_budgeted`] caps conflicts,
//!   propagations, and wall-clock time per call, answering
//!   [`SolveResult::Unknown`] instead of hanging on a pathological
//!   instance; clauses learnt before exhaustion survive for retries.
//!
//! # Example
//!
//! ```
//! use dfv_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let x = s.new_var();
//! let y = s.new_var();
//! s.add_clause(&[x.positive(), y.positive()]);
//! s.add_clause(&[x.negative()]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(y), Some(true));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod budget;
mod cnf;
mod heap;
mod lit;
mod solver;

pub use budget::{Budget, ExhaustedReason};
pub use cnf::{BruteForceError, Cnf};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
