//! Resource budgets for bounded solver invocations.
//!
//! A verification campaign cannot afford one pathological block wedging the
//! whole run, so every potentially-exponential engine call takes a
//! [`Budget`]: a cap on conflicts, on propagations, and/or on wall-clock
//! time. When any cap trips, the solver returns
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) with the
//! [`ExhaustedReason`] instead of running on — the caller decides whether to
//! retry with a bigger budget, fall back to simulation, or give up.

use std::fmt;
use std::time::{Duration, Instant};

/// Why a budgeted solve stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustedReason {
    /// The conflict cap was reached.
    Conflicts,
    /// The propagation cap was reached.
    Propagations,
    /// The wall-clock deadline (or timeout) passed.
    Deadline,
}

impl fmt::Display for ExhaustedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExhaustedReason::Conflicts => "conflict budget exhausted",
            ExhaustedReason::Propagations => "propagation budget exhausted",
            ExhaustedReason::Deadline => "deadline exceeded",
        })
    }
}

/// A resource budget for one solver call (or a family of calls sharing a
/// deadline).
///
/// All limits are optional; [`Budget::unlimited`] (also the `Default`)
/// never exhausts. Conflict and propagation caps are *per call* — they
/// measure work done inside the budgeted call, not cumulative solver
/// statistics. The deadline is an absolute [`Instant`], so one `Budget`
/// value can be shared across many calls to bound a whole phase; `timeout`
/// is relative to each call's start, whichever of the two trips first wins.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use dfv_sat::Budget;
///
/// let b = Budget::unlimited()
///     .with_conflicts(10_000)
///     .with_timeout(Duration::from_millis(50));
/// assert_eq!(b.max_conflicts, Some(10_000));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum conflicts for this call.
    pub max_conflicts: Option<u64>,
    /// Maximum unit propagations for this call.
    pub max_propagations: Option<u64>,
    /// Absolute wall-clock cutoff (shared across calls).
    pub deadline: Option<Instant>,
    /// Relative wall-clock cutoff, measured from the start of each call.
    pub timeout: Option<Duration>,
}

impl Budget {
    /// A budget with no limits: the solve runs to completion.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the number of conflicts.
    pub fn with_conflicts(mut self, n: u64) -> Self {
        self.max_conflicts = Some(n);
        self
    }

    /// Caps the number of unit propagations.
    pub fn with_propagations(mut self, n: u64) -> Self {
        self.max_propagations = Some(n);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a per-call timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// True when no limit is set at all (the solve cannot exhaust).
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_propagations.is_none()
            && self.deadline.is_none()
            && self.timeout.is_none()
    }

    /// The effective absolute cutoff for a call starting `now`: the earlier
    /// of `deadline` and `now + timeout`.
    pub(crate) fn cutoff(&self, now: Instant) -> Option<Instant> {
        match (self.deadline, self.timeout.map(|t| now + t)) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (d, t) => d.or(t),
        }
    }

    /// True if the deadline/timeout has already passed at `now` for a call
    /// that started at `now` (i.e. the budget allows no time at all).
    pub fn already_expired(&self, now: Instant) -> bool {
        self.cutoff(now).is_some_and(|c| now >= c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_has_no_cutoff() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.cutoff(Instant::now()), None);
    }

    #[test]
    fn cutoff_takes_the_earlier_bound() {
        let now = Instant::now();
        let b = Budget::unlimited()
            .with_deadline(now + Duration::from_secs(10))
            .with_timeout(Duration::from_secs(1));
        assert_eq!(b.cutoff(now), Some(now + Duration::from_secs(1)));

        let b = Budget::unlimited()
            .with_deadline(now + Duration::from_millis(5))
            .with_timeout(Duration::from_secs(1));
        assert_eq!(b.cutoff(now), Some(now + Duration::from_millis(5)));
    }

    #[test]
    fn expired_deadline_detected() {
        let now = Instant::now();
        let b = Budget::unlimited().with_deadline(now);
        assert!(b.already_expired(now));
        assert!(!Budget::unlimited().already_expired(now));
    }

    #[test]
    fn reason_display() {
        assert_eq!(
            ExhaustedReason::Conflicts.to_string(),
            "conflict budget exhausted"
        );
        assert_eq!(ExhaustedReason::Deadline.to_string(), "deadline exceeded");
    }
}
