//! The CDCL solver: watched-literal propagation, 1UIP conflict analysis,
//! VSIDS decisions with phase saving, Luby restarts, activity-based learnt
//! clause reduction, and incremental solving under assumptions.

use std::time::Instant;

use dfv_obs::{ObsHook, SharedRecorder};

use crate::budget::{Budget, ExhaustedReason};
use crate::heap::VarHeap;
use crate::lit::{Lit, Var};

/// The outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// A [`Budget`] ran out before the search finished. Only
    /// [`Solver::solve_budgeted`] produces this; the solver stays fully
    /// usable (learnt clauses are kept), so a retry with a larger budget
    /// resumes from a stronger clause database.
    Unknown(ExhaustedReason),
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: usize,
    /// Learnt clause reductions performed.
    pub reductions: u64,
}

impl SolverStats {
    /// The work done since `baseline` (an earlier snapshot of the same
    /// solver): cumulative counters are subtracted, while `learnts` — a
    /// point-in-time gauge, not a counter — carries the current value.
    /// Useful for attributing cost to an individual solve phase (e.g. the
    /// SAT-sweeping proofs inside one equivalence check).
    pub fn since(&self, baseline: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts - baseline.conflicts,
            decisions: self.decisions - baseline.decisions,
            propagations: self.propagations - baseline.propagations,
            restarts: self.restarts - baseline.restarts,
            learnts: self.learnts,
            reductions: self.reductions - baseline.reductions,
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

const NO_REASON: u32 = u32::MAX;

/// A CDCL SAT solver.
///
/// # Example
///
/// ```
/// use dfv_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// // (a | b) & (!a | b) & (a | !b)
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative(), b.positive()]);
/// s.add_clause(&[a.positive(), b.negative()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.value(a), Some(true));
/// assert_eq!(s.value(b), Some(true));
/// // Adding (!a | !b) makes it unsatisfiable.
/// s.add_clause(&[a.negative(), b.negative()]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// For each literal index, the clauses to inspect when that literal
    /// becomes **true** (i.e. clauses watching its negation).
    watches: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    phase: Vec<bool>,
    reason: Vec<u32>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    seen: Vec<bool>,
    stats: SolverStats,
    ok: bool,
    model: Vec<Option<bool>>,
    learnt_count: usize,
    obs: ObsHook,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(None);
        self.phase.push(false);
        self.reason.push(NO_REASON);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnts = self.learnt_count;
        s
    }

    fn value_lit(&self, l: Lit) -> Option<bool> {
        self.assign[l.var().index()].map(|b| b != l.is_negated())
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. Returns `false` if the solver is already known
    /// unsatisfiable (at level 0).
    ///
    /// Duplicate literals are removed; a tautological clause (containing
    /// both `x` and `!x`) is silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is mid-solve at a nonzero decision
    /// level (clauses may only be added between solve calls) or if a
    /// literal's variable was not created by this solver.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause at nonzero level");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            assert!(
                l.var().index() < self.num_vars(),
                "literal from foreign solver"
            );
            if sorted.contains(&!l) {
                return true; // tautology
            }
            match self.value_lit(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => continue,   // literal is dead
                None => c.push(l),
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(c, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let id = self.clauses.len() as u32;
        self.watches[(!lits[0]).index()].push(id);
        self.watches[(!lits[1]).index()].push(id);
        if learnt {
            self.learnt_count += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        id
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(!l.is_negated());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause id, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = Vec::with_capacity(ws.len());
            let mut conflict = None;
            let mut it = ws.drain(..);
            for cid in it.by_ref() {
                let false_lit = !p;
                // Normalize: watched false literal at position 1.
                {
                    let c = &mut self.clauses[cid as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cid as usize].lits[0];
                if self.value_lit(first) == Some(true) {
                    kept.push(cid);
                    continue;
                }
                // Look for a replacement watch.
                let replacement = {
                    let c = &self.clauses[cid as usize];
                    c.lits[2..]
                        .iter()
                        .position(|&l| self.value_lit(l) != Some(false))
                };
                if let Some(k) = replacement {
                    let c = &mut self.clauses[cid as usize];
                    c.lits.swap(1, k + 2);
                    let new_watch = c.lits[1];
                    self.watches[(!new_watch).index()].push(cid);
                    continue; // moved to another list
                }
                // Unit or conflicting on `first`.
                kept.push(cid);
                if self.value_lit(first) == Some(false) {
                    conflict = Some(cid);
                    break;
                }
                self.enqueue(first, cid);
            }
            kept.extend(it);
            self.watches[p.index()] = kept;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cid: u32) {
        let c = &mut self.clauses[cid as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// 1UIP conflict analysis. Returns the learnt clause (asserting literal
    /// first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize) {
        let current = self.decision_level() as u32;
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(confl);
            let lits = self.clauses[confl as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in &lits[skip..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on: most recent seen trail entry.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var().index()];
            debug_assert_ne!(confl, NO_REASON, "resolving on a decision");
        }
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump level: highest level among the non-asserting literals.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt)
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail nonempty");
            let v = l.var();
            self.phase[v.index()] = !l.is_negated();
            self.assign[v.index()] = None;
            self.reason[v.index()] = NO_REASON;
            self.order.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target);
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()].is_none() {
                return Some(v);
            }
        }
        None
    }

    /// Reduces the learnt-clause database, keeping the more active half.
    /// Clauses currently acting as reasons and binary clauses are kept.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut learnt_ids: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| self.clauses[i as usize].learnt)
            .collect();
        learnt_ids.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var().index()])
            .filter(|&r| r != NO_REASON)
            .collect();
        let drop_count = learnt_ids.len() / 2;
        let mut remove: Vec<bool> = vec![false; self.clauses.len()];
        for &cid in learnt_ids.iter().take(drop_count) {
            let c = &self.clauses[cid as usize];
            if c.lits.len() > 2 && !locked.contains(&cid) {
                remove[cid as usize] = true;
            }
        }
        // Compact, remapping ids in reasons and rebuilding watches.
        let mut remap: Vec<u32> = vec![NO_REASON; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len());
        for (i, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if remove[i] {
                continue;
            }
            remap[i] = new_clauses.len() as u32;
            new_clauses.push(c);
        }
        self.clauses = new_clauses;
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = remap[*r as usize];
                debug_assert_ne!(*r, NO_REASON, "locked clause removed");
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[(!c.lits[0]).index()].push(i as u32);
            self.watches[(!c.lits[1]).index()].push(i as u32);
        }
        self.learnt_count = self.clauses.iter().filter(|c| c.learnt).count();
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumptions (literals forced true for this
    /// call only). The solver remains usable afterwards — learnt clauses
    /// persist, which is what makes *incremental* equivalence-checking runs
    /// cheap (paper §4.1).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_budgeted(assumptions, &Budget::unlimited())
    }

    /// Solves under assumptions with a resource [`Budget`].
    ///
    /// Conflict and propagation caps count work done *in this call* (the
    /// cumulative [`SolverStats`] are snapshotted at entry). The wall clock
    /// is polled every 64 search steps so even millisecond-scale deadlines
    /// are honoured without a syscall per step. On exhaustion the solver
    /// returns [`SolveResult::Unknown`] and remains fully usable: clauses
    /// learnt so far are kept, so escalating retries resume from a stronger
    /// database rather than starting over.
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.obs.begin_span("sat.solve");
        self.model.clear();
        let start = self.stats;
        let cutoff = budget.cutoff(Instant::now());
        let mut clock_ticks = 0u32;
        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = 64 * luby(restart_idx);
        let mut max_learnts = (self.clauses.len() / 3).max(2000);
        let result = 'outer: loop {
            // Budget checks. Each loop pass is one conflict or one decision,
            // so counter caps are exact; the deadline is polled every 64
            // passes (and once up front, via clock_ticks starting high) to
            // amortize `Instant::now()`.
            if let Some(max) = budget.max_conflicts {
                if self.stats.conflicts - start.conflicts >= max {
                    break SolveResult::Unknown(ExhaustedReason::Conflicts);
                }
            }
            if let Some(max) = budget.max_propagations {
                if self.stats.propagations - start.propagations >= max {
                    break SolveResult::Unknown(ExhaustedReason::Propagations);
                }
            }
            if let Some(c) = cutoff {
                if clock_ticks == 0 {
                    if Instant::now() >= c {
                        break SolveResult::Unknown(ExhaustedReason::Deadline);
                    }
                    clock_ticks = 64;
                }
                clock_ticks -= 1;
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let asserting = learnt[0];
                    let cid = self.attach(learnt, true);
                    self.bump_clause(cid);
                    self.enqueue(asserting, cid);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.learnt_count > max_learnts {
                    self.reduce_db();
                    max_learnts += max_learnts / 10;
                }
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_until_restart = 64 * luby(restart_idx);
                    self.cancel_until(0);
                    continue;
                }
                // Re-establish assumptions after any backjump/restart.
                while self.decision_level() < assumptions.len() {
                    let a = assumptions[self.decision_level()];
                    match self.value_lit(a) {
                        Some(true) => self.trail_lim.push(self.trail.len()),
                        Some(false) => break 'outer SolveResult::Unsat,
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                }
                if self.qhead < self.trail.len() {
                    continue; // propagate newly enqueued assumptions
                }
                match self.pick_branch() {
                    None => {
                        self.model = self.assign.clone();
                        break SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = v.lit(self.phase[v.index()]);
                        self.enqueue(lit, NO_REASON);
                    }
                }
            }
        };
        self.cancel_until(0);
        // Observability: report this call's search work as counter deltas
        // (the cumulative stats were snapshotted at entry) plus a typed
        // outcome event. Nothing here carries wall-clock values.
        self.obs
            .add("sat.decisions", self.stats.decisions - start.decisions);
        self.obs.add(
            "sat.propagations",
            self.stats.propagations - start.propagations,
        );
        self.obs
            .add("sat.conflicts", self.stats.conflicts - start.conflicts);
        self.obs
            .add("sat.restarts", self.stats.restarts - start.restarts);
        self.obs.event("sat.result", || match result {
            SolveResult::Sat => "sat".to_string(),
            SolveResult::Unsat => "unsat".to_string(),
            SolveResult::Unknown(reason) => format!("unknown ({reason:?})"),
        });
        self.obs.end_span("sat.solve");
        result
    }

    /// Attaches a recorder; each solve call then reports `sat.*`
    /// counter deltas (decisions, propagations, conflicts, restarts)
    /// inside a `sat.solve` span, plus a `sat.result` outcome event.
    pub fn set_recorder(&mut self, rec: SharedRecorder) {
        self.obs.set(rec);
    }

    /// The model value of a variable after a [`SolveResult::Sat`] answer.
    /// Returns `None` before a successful solve (or for a variable created
    /// afterwards).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied().flatten()
    }

    /// The model value of a literal after a successful solve.
    pub fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b != l.is_negated())
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
fn luby(mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        s.new_vars(n)
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v), Some(false));
    }

    #[test]
    fn contradictory_units() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert!(!s.add_clause(&[v.negative()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn chain_implication() {
        // x0 & (x0 -> x1) & ... & (x_{n-1} -> x_n) forces all true.
        let mut s = Solver::new();
        let vs = lits(&mut s, 50);
        s.add_clause(&[vs[0].positive()]);
        for w in vs.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in &vs {
            assert_eq!(s.value(*v), Some(true));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes two rows at once
    fn pigeonhole_3_into_2_is_unsat() {
        // Classic small UNSAT instance exercising conflict analysis.
        let mut s = Solver::new();
        // p[i][j]: pigeon i in hole j.
        let p: Vec<Vec<Var>> = (0..3).map(|_| s.new_vars(2)).collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // j indexes two rows at once
    fn pigeonhole_5_into_4_is_unsat() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(n - 1)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..n - 1 {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve_with(&[a.negative()]), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
        // Contradictory assumption pair: UNSAT under assumptions only.
        s.add_clause(&[a.negative(), b.negative()]);
        assert_eq!(
            s.solve_with(&[a.positive(), b.positive()]),
            SolveResult::Unsat
        );
        // Still SAT without them.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_reuse_after_unsat_assumptions() {
        let mut s = Solver::new();
        let vs = lits(&mut s, 20);
        for w in vs.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        // Assume first true and last false: contradiction through the chain.
        assert_eq!(
            s.solve_with(&[vs[0].positive(), vs[19].negative()]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve_with(&[vs[0].positive()]), SolveResult::Sat);
        assert_eq!(s.value(vs[19]), Some(true));
    }

    #[test]
    fn tautology_and_duplicates_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.positive(), a.negative()])); // tautology
        assert!(s.add_clause(&[b.positive(), b.positive()])); // duplicate
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn model_is_a_real_model() {
        // Random-ish 3-SAT instance; verify the returned model satisfies it.
        let mut s = Solver::new();
        let vs = lits(&mut s, 12);
        let mut seed = 0x12345678u64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut clauses = Vec::new();
        for _ in 0..40 {
            let c: Vec<Lit> = (0..3)
                .map(|_| {
                    let v = vs[(rnd() % 12) as usize];
                    v.lit(rnd() % 2 == 0)
                })
                .collect();
            clauses.push(c.clone());
            s.add_clause(&c);
        }
        if s.solve() == SolveResult::Sat {
            for c in &clauses {
                assert!(
                    c.iter().any(|&l| s.lit_value(l) == Some(true)),
                    "model does not satisfy {c:?}"
                );
            }
        }
    }

    /// A pigeonhole instance (`n+1` pigeons into `n` holes) — UNSAT with a
    /// proof exponential in `n` for resolution, so a modest `n` reliably
    /// outlasts small conflict budgets.
    #[allow(clippy::needless_range_loop)] // j indexes two rows at once
    fn pigeonhole(s: &mut Solver, n: usize) {
        let p: Vec<Vec<Var>> = (0..n + 1).map(|_| s.new_vars(n)).collect();
        for row in &p {
            let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&clause);
        }
        for j in 0..n {
            for i1 in 0..n + 1 {
                for i2 in (i1 + 1)..n + 1 {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9);
        let before = s.stats().conflicts;
        let r = s.solve_budgeted(&[], &Budget::unlimited().with_conflicts(100));
        assert_eq!(r, SolveResult::Unknown(ExhaustedReason::Conflicts));
        assert_eq!(s.stats().conflicts - before, 100);
    }

    #[test]
    fn propagation_budget_yields_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 9);
        let r = s.solve_budgeted(&[], &Budget::unlimited().with_propagations(50));
        assert_eq!(r, SolveResult::Unknown(ExhaustedReason::Propagations));
    }

    #[test]
    fn deadline_budget_yields_unknown_quickly() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 11);
        let started = std::time::Instant::now();
        let budget = Budget::unlimited().with_timeout(std::time::Duration::from_millis(1));
        let r = s.solve_budgeted(&[], &budget);
        assert_eq!(r, SolveResult::Unknown(ExhaustedReason::Deadline));
        // "Bounded time": generous margin, but nowhere near a full PHP-11 run.
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn solver_stays_usable_after_exhaustion() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        let r = s.solve_budgeted(&[], &Budget::unlimited().with_conflicts(20));
        assert_eq!(r, SolveResult::Unknown(ExhaustedReason::Conflicts));
        // Retry unbudgeted: learnt clauses persisted, answer is definitive.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn easy_instance_finishes_inside_budget() {
        let mut s = Solver::new();
        let vs = lits(&mut s, 30);
        s.add_clause(&[vs[0].positive()]);
        for w in vs.windows(2) {
            s.add_clause(&[w[0].negative(), w[1].positive()]);
        }
        let budget = Budget::unlimited()
            .with_conflicts(1000)
            .with_timeout(std::time::Duration::from_secs(10));
        assert_eq!(s.solve_budgeted(&[], &budget), SolveResult::Sat);
        assert_eq!(s.value(vs[29]), Some(true));
    }

    #[test]
    fn unlimited_budget_matches_plain_solve() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        assert_eq!(
            s.solve_budgeted(&[], &Budget::unlimited()),
            SolveResult::Unsat
        );
    }

    #[test]
    fn recorder_sees_search_deltas_and_outcomes() {
        let rec = dfv_obs::MemoryRecorder::shared();
        let mut s = Solver::new();
        s.set_recorder(rec.clone());
        pigeonhole(&mut s, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        {
            let r = rec.lock().unwrap();
            let stats = s.stats();
            assert_eq!(r.counter("sat.conflicts"), stats.conflicts);
            assert_eq!(r.counter("sat.propagations"), stats.propagations);
            assert_eq!(r.events_of("sat.result"), vec!["unsat"]);
            // The work sits inside a sat.solve span.
            let names: Vec<_> = r
                .entries()
                .iter()
                .filter_map(|e| match e {
                    dfv_obs::ObsEntry::SpanBegin { name, .. } => Some(*name),
                    _ => None,
                })
                .collect();
            assert_eq!(names, vec!["sat.solve"]);
        }
        // A second call reports only its own (zero, post-Unsat) work.
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(
            rec.lock().unwrap().counter("sat.conflicts"),
            s.stats().conflicts
        );
    }

    #[test]
    fn solver_is_send_even_when_instrumented() {
        fn assert_send<T: Send>() {}
        assert_send::<Solver>();

        // An instrumented solve runs fine on a worker thread.
        let rec = dfv_obs::MemoryRecorder::shared();
        let handle: dfv_obs::SharedRecorder = rec.clone();
        std::thread::spawn(move || {
            let mut s = Solver::new();
            s.set_recorder(handle);
            pigeonhole(&mut s, 3);
            s.solve()
        })
        .join()
        .unwrap();
        assert_eq!(rec.lock().unwrap().events_of("sat.result"), vec!["unsat"]);
    }
}
