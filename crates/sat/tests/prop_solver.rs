//! Cross-validation of the CDCL solver against exhaustive enumeration on
//! random small formulas, including under assumptions.
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_sat::{Cnf, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomCnf {
    num_vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn random_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = RandomCnf> {
    (2..=max_vars).prop_flat_map(move |nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=4);
        proptest::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| RandomCnf {
            num_vars: nv,
            clauses,
        })
    })
}

fn build(rc: &RandomCnf) -> Cnf {
    let mut cnf = Cnf::new();
    let vars: Vec<Var> = (0..rc.num_vars).map(|_| cnf.new_var()).collect();
    for c in &rc.clauses {
        cnf.add_clause(c.iter().map(|&(v, pol)| vars[v].lit(pol)));
    }
    cnf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn cdcl_agrees_with_brute_force(rc in random_cnf(12, 60)) {
        let cnf = build(&rc);
        let expect = cnf.brute_force_sat().unwrap();
        let (result, solver) = cnf.solve();
        prop_assert_eq!(result == SolveResult::Sat, expect);
        if result == SolveResult::Sat {
            let assignment: Vec<bool> = (0..cnf.num_vars())
                .map(|i| solver.value(Var::from_index(i)).unwrap_or(false))
                .collect();
            prop_assert!(cnf.eval(&assignment), "returned model does not satisfy formula");
        }
    }

    #[test]
    fn assumptions_equal_added_units(rc in random_cnf(10, 40), pol0 in any::<bool>(), pol1 in any::<bool>()) {
        let cnf = build(&rc);
        let a0 = Var::from_index(0).lit(pol0);
        let a1 = Var::from_index(1).lit(pol1);
        // Solve with assumptions.
        let mut s1 = Solver::new();
        s1.new_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s1.add_clause(c);
        }
        let with_assumps = s1.solve_with(&[a0, a1]);
        // Solve with the same literals as unit clauses.
        let mut s2 = Solver::new();
        s2.new_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s2.add_clause(c);
        }
        s2.add_clause(&[a0]);
        s2.add_clause(&[a1]);
        let with_units = s2.solve();
        prop_assert_eq!(with_assumps, with_units);
        // The solver with assumptions must still agree with brute force
        // afterwards (no state corruption).
        let plain = s1.solve();
        prop_assert_eq!(plain == SolveResult::Sat, cnf.brute_force_sat().unwrap());
    }

    #[test]
    fn repeated_solves_are_stable(rc in random_cnf(10, 40)) {
        let cnf = build(&rc);
        let (first, mut solver) = cnf.solve();
        for _ in 0..3 {
            prop_assert_eq!(solver.solve(), first);
        }
    }
}

/// A deterministic hard-ish instance: pigeonhole 6→5 must be UNSAT and the
/// solver must survive clause-database reductions while proving it.
#[test]
fn pigeonhole_6_into_5() {
    let mut s = Solver::new();
    let n = 6;
    let p: Vec<Vec<Var>> = (0..n).map(|_| s.new_vars(n - 1)).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&clause);
    }
    for j in 0..n - 1 {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}
