//! The [`Recorder`] trait and its in-memory implementation.
//!
//! Engines report three kinds of instrumentation:
//!
//! - **spans** — named begin/end brackets around a unit of work
//!   (`sat.solve`, `slm.run`, …);
//! - **events** — one-off typed occurrences with a human-readable
//!   detail string (`sec.depth`, `cosim.fault`, …);
//! - **counters** — named monotonic tallies that only ever increase
//!   (`rtl.eval_passes`, `sat.conflicts`, …).
//!
//! Nothing here captures wall-clock time: entries are ordered by a
//! monotonic sequence number so recorded streams are reproducible
//! across runs of the same seeded workload.
//!
//! # Threading
//!
//! The shared handle is `Arc<Mutex<..>>`, so every instrumented engine
//! is [`Send`] and a proof stack can be dispatched onto worker threads
//! (the campaign scheduler in `dfv-core` relies on this). For parallel
//! runs that must stay byte-reproducible, give each worker its own
//! [`MemoryRecorder`] tagged with a worker id
//! ([`MemoryRecorder::with_worker`]) and combine the per-worker streams
//! afterwards with [`MemoryRecorder::merge_ordered`], keyed by the
//! deterministic work-item index — never by completion order.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Sink for structured instrumentation emitted by the engines.
///
/// Counter names and span/event kinds are `&'static str` by convention
/// (`"<crate>.<metric>"`), which keeps the hot paths allocation-free.
pub trait Recorder {
    /// Opens a named span. Spans may nest; pairing is by name and order.
    fn begin_span(&mut self, name: &'static str);
    /// Closes the most recent open span with this name.
    fn end_span(&mut self, name: &'static str);
    /// Adds `delta` to the named monotonic counter.
    fn counter_add(&mut self, name: &'static str, delta: u64);
    /// Records a one-off event of the given kind with a detail string.
    fn event(&mut self, kind: &'static str, detail: String);
}

/// Shared, dynamically dispatched recorder handle.
///
/// `Arc<Mutex<..>>` keeps every engine that holds one [`Send`], so
/// instrumented proof stacks can run on scheduler worker threads. A
/// poisoned mutex (a panicking thread mid-record) is recovered, not
/// propagated: losing one entry is better than cascading the panic
/// through every other worker's instrumentation.
pub type SharedRecorder = Arc<Mutex<dyn Recorder + Send>>;

/// Locks a recorder mutex, recovering from poisoning.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One recorded entry, ordered by its monotonic `seq` number. The
/// `worker` id records which per-worker recorder produced the entry
/// (0 for single-recorder runs); after a deterministic merge it is
/// provenance only — ordering comes from the renumbered `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEntry {
    /// A span opened.
    SpanBegin {
        /// Monotonic sequence number.
        seq: u64,
        /// Id of the recorder that produced the entry.
        worker: u32,
        /// Span name.
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Monotonic sequence number.
        seq: u64,
        /// Id of the recorder that produced the entry.
        worker: u32,
        /// Span name.
        name: &'static str,
    },
    /// A one-off event.
    Event {
        /// Monotonic sequence number.
        seq: u64,
        /// Id of the recorder that produced the entry.
        worker: u32,
        /// Event kind.
        kind: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl ObsEntry {
    /// The entry's sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            ObsEntry::SpanBegin { seq, .. }
            | ObsEntry::SpanEnd { seq, .. }
            | ObsEntry::Event { seq, .. } => seq,
        }
    }

    /// The id of the recorder that produced the entry.
    pub fn worker(&self) -> u32 {
        match *self {
            ObsEntry::SpanBegin { worker, .. }
            | ObsEntry::SpanEnd { worker, .. }
            | ObsEntry::Event { worker, .. } => worker,
        }
    }

    fn with_seq(mut self, new_seq: u64) -> ObsEntry {
        match &mut self {
            ObsEntry::SpanBegin { seq, .. }
            | ObsEntry::SpanEnd { seq, .. }
            | ObsEntry::Event { seq, .. } => *seq = new_seq,
        }
        self
    }
}

/// In-memory [`Recorder`] that keeps everything it is told, in order.
#[derive(Debug, Default, Clone)]
pub struct MemoryRecorder {
    seq: u64,
    worker: u32,
    entries: Vec<ObsEntry>,
    counters: BTreeMap<&'static str, u64>,
}

impl MemoryRecorder {
    /// Creates an empty recorder (worker id 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder whose entries carry `worker` as their
    /// producer id — one per scheduler worker in parallel runs.
    pub fn with_worker(worker: u32) -> Self {
        MemoryRecorder {
            worker,
            ..Self::default()
        }
    }

    /// Creates an empty recorder already wrapped for sharing with engines.
    pub fn shared() -> Arc<Mutex<MemoryRecorder>> {
        Arc::new(Mutex::new(MemoryRecorder::new()))
    }

    /// The worker id stamped on this recorder's entries.
    pub fn worker_id(&self) -> u32 {
        self.worker
    }

    /// All recorded entries in sequence order.
    pub fn entries(&self) -> &[ObsEntry] {
        &self.entries
    }

    /// The counters, in deterministic (sorted-by-name) order.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Current value of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All events of the given kind, in order.
    pub fn events_of(&self, kind: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                ObsEntry::Event {
                    kind: k, detail, ..
                } if *k == kind => Some(detail.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Merges per-worker recorder streams into one deterministic stream.
    ///
    /// Each part is keyed by the index of the *work item* it recorded
    /// (plan order), not by the worker that happened to execute it, so
    /// the merged stream is identical for every worker count and every
    /// completion interleaving: parts are ordered by `(key, seq)`,
    /// entries are renumbered with fresh global sequence numbers (their
    /// original worker ids are kept as provenance), and counters are
    /// summed into one map.
    pub fn merge_ordered(parts: impl IntoIterator<Item = (u64, MemoryRecorder)>) -> MemoryRecorder {
        let mut parts: Vec<(u64, MemoryRecorder)> = parts.into_iter().collect();
        parts.sort_by_key(|(key, _)| *key);
        let mut merged = MemoryRecorder::new();
        for (_, part) in parts {
            for entry in part.entries {
                let seq = merged.next_seq();
                merged.entries.push(entry.with_seq(seq));
            }
            for (name, value) in part.counters {
                *merged.counters.entry(name).or_insert(0) += value;
            }
        }
        merged
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

impl Recorder for MemoryRecorder {
    fn begin_span(&mut self, name: &'static str) {
        let seq = self.next_seq();
        let worker = self.worker;
        self.entries.push(ObsEntry::SpanBegin { seq, worker, name });
    }

    fn end_span(&mut self, name: &'static str) {
        let seq = self.next_seq();
        let worker = self.worker;
        self.entries.push(ObsEntry::SpanEnd { seq, worker, name });
    }

    fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn event(&mut self, kind: &'static str, detail: String) {
        let seq = self.next_seq();
        let worker = self.worker;
        self.entries.push(ObsEntry::Event {
            seq,
            worker,
            kind,
            detail,
        });
    }
}

/// Optional recorder attachment point embedded in engine structs.
///
/// An unset hook makes every operation a no-op, so instrumented hot
/// paths cost one branch when observability is off — attaching nothing
/// stays zero-cost on worker threads too. The newtype also gives
/// engines `Clone`/`Debug`/`Default` without exposing the
/// `Arc<Mutex<..>>` plumbing (a cloned engine shares its recorder).
#[derive(Clone, Default)]
pub struct ObsHook(Option<SharedRecorder>);

impl ObsHook {
    /// An unset hook; every operation is a no-op.
    pub fn none() -> Self {
        Self(None)
    }

    /// A hook already attached to `rec`.
    pub fn attached(rec: SharedRecorder) -> Self {
        Self(Some(rec))
    }

    /// Attaches a recorder to this hook.
    pub fn set(&mut self, rec: SharedRecorder) {
        self.0 = Some(rec);
    }

    /// Detaches any recorder.
    pub fn clear(&mut self) {
        self.0 = None;
    }

    /// Whether a recorder is attached.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// A clone of the attached recorder handle, if any — for forwarding
    /// the same sink into a nested engine.
    pub fn recorder(&self) -> Option<SharedRecorder> {
        self.0.clone()
    }

    /// Opens a span if a recorder is attached.
    pub fn begin_span(&self, name: &'static str) {
        if let Some(r) = &self.0 {
            lock(r).begin_span(name);
        }
    }

    /// Closes a span if a recorder is attached.
    pub fn end_span(&self, name: &'static str) {
        if let Some(r) = &self.0 {
            lock(r).end_span(name);
        }
    }

    /// Adds to a counter if a recorder is attached. Zero deltas are
    /// dropped so counters only materialize when work actually happened.
    pub fn add(&self, name: &'static str, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(r) = &self.0 {
            lock(r).counter_add(name, delta);
        }
    }

    /// Records an event if a recorder is attached. The detail closure
    /// only runs when one is, keeping formatting off the fast path.
    pub fn event(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Some(r) = &self.0 {
            lock(r).event(kind, detail());
        }
    }
}

impl fmt::Debug for ObsHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_set() {
            "ObsHook(attached)"
        } else {
            "ObsHook(unset)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_sequenced_and_counters_monotonic() {
        let mut r = MemoryRecorder::new();
        r.begin_span("a");
        r.counter_add("x", 3);
        r.event("k", "one".into());
        r.counter_add("x", 2);
        r.end_span("a");
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("absent"), 0);
        let seqs: Vec<u64> = r.entries().iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(r.events_of("k"), vec!["one"]);
    }

    #[test]
    fn unset_hook_is_noop_and_set_hook_forwards() {
        let hook = ObsHook::none();
        hook.add("x", 1);
        hook.event("k", || unreachable!("detail must not be built when unset"));
        assert!(!hook.is_set());

        let rec = MemoryRecorder::shared();
        let mut hook = ObsHook::none();
        hook.set(rec.clone());
        hook.begin_span("s");
        hook.add("x", 7);
        hook.add("x", 0); // dropped
        hook.event("k", || "d".into());
        hook.end_span("s");
        let r = rec.lock().unwrap();
        assert_eq!(r.counter("x"), 7);
        assert_eq!(r.entries().len(), 3);
        assert!(format!("{hook:?}").contains("attached"));
    }

    #[test]
    fn shared_recorder_coerces_to_dyn() {
        let rec = MemoryRecorder::shared();
        let dynrec: SharedRecorder = rec.clone();
        dynrec.lock().unwrap().counter_add("c", 1);
        assert_eq!(rec.lock().unwrap().counter("c"), 1);
    }

    #[test]
    fn handle_and_hook_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SharedRecorder>();
        assert_send::<ObsHook>();
        assert_send::<MemoryRecorder>();

        // And the handle actually works from a spawned thread.
        let rec = MemoryRecorder::shared();
        let handle: SharedRecorder = rec.clone();
        std::thread::spawn(move || {
            let hook = ObsHook::attached(handle);
            hook.add("threaded", 2);
        })
        .join()
        .unwrap();
        assert_eq!(rec.lock().unwrap().counter("threaded"), 2);
    }

    #[test]
    fn merge_is_keyed_by_work_item_not_completion_order() {
        // Worker 1 recorded items 2 and 0; worker 2 recorded item 1.
        // Parts arrive in completion order (1 finished before 0).
        let mut item2 = MemoryRecorder::with_worker(1);
        item2.event("k", "third".into());
        item2.counter_add("n", 1);
        let mut item0 = MemoryRecorder::with_worker(1);
        item0.begin_span("s");
        item0.event("k", "first".into());
        item0.end_span("s");
        item0.counter_add("n", 10);
        let mut item1 = MemoryRecorder::with_worker(2);
        item1.event("k", "second".into());
        item1.counter_add("n", 100);

        let merged = MemoryRecorder::merge_ordered([
            (2, item2.clone()),
            (1, item1.clone()),
            (0, item0.clone()),
        ]);
        assert_eq!(merged.events_of("k"), vec!["first", "second", "third"]);
        assert_eq!(merged.counter("n"), 111);
        // Fresh contiguous sequence numbers, provenance preserved.
        let seqs: Vec<u64> = merged.entries().iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, (0..merged.entries().len() as u64).collect::<Vec<_>>());
        assert_eq!(merged.entries()[0].worker(), 1);
        assert_eq!(merged.entries()[3].worker(), 2);

        // Any arrival order merges to the same stream.
        let again = MemoryRecorder::merge_ordered([(0, item0), (2, item2), (1, item1)]);
        assert_eq!(again.entries(), merged.entries());
        assert_eq!(again.counters(), merged.counters());
    }
}
