//! The [`Recorder`] trait and its in-memory implementation.
//!
//! Engines report three kinds of instrumentation:
//!
//! - **spans** — named begin/end brackets around a unit of work
//!   (`sat.solve`, `slm.run`, …);
//! - **events** — one-off typed occurrences with a human-readable
//!   detail string (`sec.depth`, `cosim.fault`, …);
//! - **counters** — named monotonic tallies that only ever increase
//!   (`rtl.eval_passes`, `sat.conflicts`, …).
//!
//! Nothing here captures wall-clock time: entries are ordered by a
//! monotonic sequence number so recorded streams are reproducible
//! across runs of the same seeded workload.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Sink for structured instrumentation emitted by the engines.
///
/// Counter names and span/event kinds are `&'static str` by convention
/// (`"<crate>.<metric>"`), which keeps the hot paths allocation-free.
pub trait Recorder {
    /// Opens a named span. Spans may nest; pairing is by name and order.
    fn begin_span(&mut self, name: &'static str);
    /// Closes the most recent open span with this name.
    fn end_span(&mut self, name: &'static str);
    /// Adds `delta` to the named monotonic counter.
    fn counter_add(&mut self, name: &'static str, delta: u64);
    /// Records a one-off event of the given kind with a detail string.
    fn event(&mut self, kind: &'static str, detail: String);
}

/// Shared, dynamically dispatched recorder handle.
///
/// The workspace is single-threaded by design, so `Rc<RefCell<..>>` is
/// the right sharing primitive; engines that hold one become `!Send`,
/// which nothing in the workspace requires.
pub type SharedRecorder = Rc<RefCell<dyn Recorder>>;

/// One recorded entry, ordered by its monotonic `seq` number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEntry {
    /// A span opened.
    SpanBegin {
        /// Monotonic sequence number.
        seq: u64,
        /// Span name.
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Monotonic sequence number.
        seq: u64,
        /// Span name.
        name: &'static str,
    },
    /// A one-off event.
    Event {
        /// Monotonic sequence number.
        seq: u64,
        /// Event kind.
        kind: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl ObsEntry {
    /// The entry's sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            ObsEntry::SpanBegin { seq, .. }
            | ObsEntry::SpanEnd { seq, .. }
            | ObsEntry::Event { seq, .. } => seq,
        }
    }
}

/// In-memory [`Recorder`] that keeps everything it is told, in order.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    seq: u64,
    entries: Vec<ObsEntry>,
    counters: BTreeMap<&'static str, u64>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder already wrapped for sharing with engines.
    pub fn shared() -> Rc<RefCell<MemoryRecorder>> {
        Rc::new(RefCell::new(MemoryRecorder::new()))
    }

    /// All recorded entries in sequence order.
    pub fn entries(&self) -> &[ObsEntry] {
        &self.entries
    }

    /// The counters, in deterministic (sorted-by-name) order.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Current value of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All events of the given kind, in order.
    pub fn events_of(&self, kind: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                ObsEntry::Event {
                    kind: k, detail, ..
                } if *k == kind => Some(detail.as_str()),
                _ => None,
            })
            .collect()
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

impl Recorder for MemoryRecorder {
    fn begin_span(&mut self, name: &'static str) {
        let seq = self.next_seq();
        self.entries.push(ObsEntry::SpanBegin { seq, name });
    }

    fn end_span(&mut self, name: &'static str) {
        let seq = self.next_seq();
        self.entries.push(ObsEntry::SpanEnd { seq, name });
    }

    fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn event(&mut self, kind: &'static str, detail: String) {
        let seq = self.next_seq();
        self.entries.push(ObsEntry::Event { seq, kind, detail });
    }
}

/// Optional recorder attachment point embedded in engine structs.
///
/// An unset hook makes every operation a no-op, so instrumented hot
/// paths cost one branch when observability is off. The newtype also
/// gives engines `Clone`/`Debug`/`Default` without exposing the
/// `Rc<RefCell<..>>` plumbing (a cloned engine shares its recorder).
#[derive(Clone, Default)]
pub struct ObsHook(Option<SharedRecorder>);

impl ObsHook {
    /// An unset hook; every operation is a no-op.
    pub fn none() -> Self {
        Self(None)
    }

    /// A hook already attached to `rec`.
    pub fn attached(rec: SharedRecorder) -> Self {
        Self(Some(rec))
    }

    /// Attaches a recorder to this hook.
    pub fn set(&mut self, rec: SharedRecorder) {
        self.0 = Some(rec);
    }

    /// Detaches any recorder.
    pub fn clear(&mut self) {
        self.0 = None;
    }

    /// Whether a recorder is attached.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// A clone of the attached recorder handle, if any — for forwarding
    /// the same sink into a nested engine.
    pub fn recorder(&self) -> Option<SharedRecorder> {
        self.0.clone()
    }

    /// Opens a span if a recorder is attached.
    pub fn begin_span(&self, name: &'static str) {
        if let Some(r) = &self.0 {
            r.borrow_mut().begin_span(name);
        }
    }

    /// Closes a span if a recorder is attached.
    pub fn end_span(&self, name: &'static str) {
        if let Some(r) = &self.0 {
            r.borrow_mut().end_span(name);
        }
    }

    /// Adds to a counter if a recorder is attached. Zero deltas are
    /// dropped so counters only materialize when work actually happened.
    pub fn add(&self, name: &'static str, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(r) = &self.0 {
            r.borrow_mut().counter_add(name, delta);
        }
    }

    /// Records an event if a recorder is attached. The detail closure
    /// only runs when one is, keeping formatting off the fast path.
    pub fn event(&self, kind: &'static str, detail: impl FnOnce() -> String) {
        if let Some(r) = &self.0 {
            r.borrow_mut().event(kind, detail());
        }
    }
}

impl fmt::Debug for ObsHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_set() {
            "ObsHook(attached)"
        } else {
            "ObsHook(unset)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_are_sequenced_and_counters_monotonic() {
        let mut r = MemoryRecorder::new();
        r.begin_span("a");
        r.counter_add("x", 3);
        r.event("k", "one".into());
        r.counter_add("x", 2);
        r.end_span("a");
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.counter("absent"), 0);
        let seqs: Vec<u64> = r.entries().iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(r.events_of("k"), vec!["one"]);
    }

    #[test]
    fn unset_hook_is_noop_and_set_hook_forwards() {
        let hook = ObsHook::none();
        hook.add("x", 1);
        hook.event("k", || unreachable!("detail must not be built when unset"));
        assert!(!hook.is_set());

        let rec = MemoryRecorder::shared();
        let mut hook = ObsHook::none();
        hook.set(rec.clone());
        hook.begin_span("s");
        hook.add("x", 7);
        hook.add("x", 0); // dropped
        hook.event("k", || "d".into());
        hook.end_span("s");
        let r = rec.borrow();
        assert_eq!(r.counter("x"), 7);
        assert_eq!(r.entries().len(), 3);
        assert!(format!("{hook:?}").contains("attached"));
    }

    #[test]
    fn shared_recorder_coerces_to_dyn() {
        let rec = MemoryRecorder::shared();
        let dynrec: SharedRecorder = rec.clone();
        dynrec.borrow_mut().counter_add("c", 1);
        assert_eq!(rec.borrow().counter("c"), 1);
    }
}
