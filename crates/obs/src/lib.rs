//! `dfv-obs` — the workspace's structured observability substrate.
//!
//! Every engine crate (kernel, RTL simulator, SAT solver, SEC driver,
//! co-simulation harness) funnels its instrumentation through the one
//! [`Recorder`] trait defined here, so a single in-memory sink sees a
//! coherent, deterministically ordered stream of spans, events, and
//! monotonic counters regardless of which engines participated in a run.
//!
//! Design rules, enforced by construction:
//!
//! - **No wall-clock values in recorded data.** Recorded entries carry a
//!   monotonic sequence number, never an `Instant` or timestamp, so two
//!   runs of the same seeded workload produce byte-identical streams.
//!   Wall time is measured only "at the edges" by [`RunReport::phase`],
//!   and is kept out of the canonical (byte-reproducible) JSON form.
//! - **Deterministic ordering.** Counters live in ordered maps; events
//!   are ordered by their sequence number; JSON objects preserve
//!   insertion order.
//!
//! The crate also hosts the format-level pieces the observability layer
//! needs and that more than one crate consumes: a dependency-free JSON
//! value type with writer and parser ([`json`]), a multi-scope VCD
//! writer and round-trip parser ([`vcd`]), and the cross-domain
//! [`WatchedTrace`]/[`first_divergence`] machinery the divergence
//! localizer is built on ([`divergence`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod json;
pub mod recorder;
pub mod report;
pub mod vcd;

pub use divergence::{combined_vcd, first_divergence, Divergence, WatchedTrace};
pub use json::{parse_json, Json};
pub use recorder::{MemoryRecorder, ObsEntry, ObsHook, Recorder, SharedRecorder};
pub use report::{Phase, RunReport};
pub use vcd::{parse_vcd, render_vcd, sanitize_id, ParsedVcd, VcdScope, VcdSignal};
