//! `dfv-obs` — the workspace's structured observability substrate.
//!
//! Every engine crate (kernel, RTL simulator, SAT solver, SEC driver,
//! co-simulation harness) funnels its instrumentation through the one
//! [`Recorder`] trait defined here, so a single in-memory sink sees a
//! coherent, deterministically ordered stream of spans, events, and
//! monotonic counters regardless of which engines participated in a run.
//!
//! Design rules, enforced by construction:
//!
//! - **No wall-clock values in recorded data.** Recorded entries carry a
//!   monotonic sequence number, never an `Instant` or timestamp, so two
//!   runs of the same seeded workload produce byte-identical streams.
//!   Wall time is measured only "at the edges" by [`RunReport::phase`],
//!   and is kept out of the canonical (byte-reproducible) JSON form.
//! - **Deterministic ordering.** Counters live in ordered maps; events
//!   are ordered by their sequence number; JSON objects preserve
//!   insertion order.
//!
//! The crate also hosts the format-level pieces the observability layer
//! needs and that more than one crate consumes: a dependency-free JSON
//! value type with writer and parser ([`json`]), a multi-scope VCD
//! writer and round-trip parser ([`vcd`]), and the cross-domain
//! [`WatchedTrace`]/[`first_divergence`] machinery the divergence
//! localizer is built on ([`divergence`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod json;
pub mod recorder;
pub mod report;
pub mod vcd;

/// Canonical names for cross-crate event kinds and counters.
///
/// Any engine may record ad-hoc kinds, but names that more than one crate
/// produces or consumes (the campaign runner emits them, reports and tests
/// assert on them) are declared here once so producers and consumers cannot
/// drift apart. All of them obey the substrate's determinism rules: detail
/// strings are canonicalized (no pointers, no backtraces, no wall-clock
/// values), so recorded streams stay byte-reproducible.
pub mod kinds {
    /// Event: a campaign work item panicked and was quarantined by the
    /// scheduler. Detail: `<block>: <canonicalized panic payload>`.
    pub const SCHED_PANIC: &str = "core.sched.panic";
    /// Event: a `DFV_WORKERS` override was unusable (zero, garbage, or
    /// out of range) and the scheduler fell back to the default.
    pub const SCHED_WORKERS_FALLBACK: &str = "core.sched.workers_fallback";
    /// Counter: blocks whose verdict was replayed from the campaign
    /// journal instead of being recomputed (checkpoint/resume).
    pub const JOURNAL_REPLAYED: &str = "core.journal.replayed";
    /// Counter: journal records dropped on load because their checksum
    /// failed (torn tail after a kill, or bit rot).
    pub const JOURNAL_DROPPED: &str = "core.journal.dropped";
    /// Counter: on-disk cache entries dropped on load because their
    /// per-entry checksum failed — the rest of the file was recovered.
    pub const CACHE_RECOVERED: &str = "core.cache.recovered";
    /// Counter: requests admitted by the `dfv-serve` daemon.
    pub const SERVE_ACCEPTED: &str = "serve.accepted";
    /// Counter: requests rejected with a typed `ServiceBusy` (admission
    /// queue or per-class limit full) or while draining.
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Counter: jobs that ran to completion (report produced, whether or
    /// not the client was still there to receive it).
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// Counter: jobs whose cancel latch fired (client disconnect, stalled
    /// wire, or an explicit cancel frame) before or during execution.
    pub const SERVE_CANCELLED: &str = "serve.cancelled";
    /// Counter: a client vanished or stopped draining its connection
    /// with output still owed to it — a completed job's report (or
    /// another non-sheddable frame) could not be delivered.
    pub const SERVE_CLIENT_LOST: &str = "serve.client_lost";
    /// Counter: protocol frames dropped or refused (bad magic, length
    /// over the cap, checksum mismatch, malformed payload).
    pub const SERVE_BAD_FRAME: &str = "serve.bad_frame";
    /// Counter: progress frames dropped because a client's bounded
    /// outbound queue was full (slow reader; reports are never dropped
    /// this way, only progress).
    pub const SERVE_PROGRESS_DROPPED: &str = "serve.progress_dropped";
}

pub use divergence::{combined_vcd, first_divergence, Divergence, WatchedTrace};
pub use json::{parse_json, Json};
pub use recorder::{MemoryRecorder, ObsEntry, ObsHook, Recorder, SharedRecorder};
pub use report::{Phase, RunReport};
pub use vcd::{parse_vcd, render_vcd, sanitize_id, ParsedVcd, VcdScope, VcdSignal};
