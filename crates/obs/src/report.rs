//! Machine-readable run reports.
//!
//! A [`RunReport`] gathers a run's counters (from a
//! [`MemoryRecorder`](crate::MemoryRecorder) or set directly), named
//! values, and per-phase wall times measured *at the edges* via
//! [`RunReport::phase`]. Rendering comes in two forms:
//!
//! - [`RunReport::canonical_json`] — deterministic: counters and
//!   values only, byte-identical across reruns of a seeded workload
//!   (this is what `scripts/check.sh` diffs);
//! - [`RunReport::full_json`] — adds the `timing` section with
//!   measured wall durations, which naturally varies run to run.

use crate::json::Json;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One timed phase of a run.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name.
    pub name: String,
    /// Wall time spent in the phase, measured at its edges.
    pub wall: Duration,
}

/// Counters, values, and edge-timed phases for one run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    name: String,
    counters: BTreeMap<String, u64>,
    values: Vec<(String, Json)>,
    phases: Vec<Phase>,
}

impl RunReport {
    /// Creates an empty report with the given run name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The run name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets one counter to a value (replacing any previous value).
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Merges counters from an iterator, summing into existing entries.
    pub fn add_counters<'a>(&mut self, counters: impl IntoIterator<Item = (&'a str, u64)>) {
        for (k, v) in counters {
            *self.counters.entry(k.to_string()).or_insert(0) += v;
        }
    }

    /// Current value of one counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a named value in the `values` section (insertion-ordered;
    /// re-setting a key overwrites in place).
    pub fn set_value(&mut self, key: impl Into<String>, value: Json) {
        let key = key.into();
        if let Some(slot) = self.values.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.values.push((key, value));
        }
    }

    /// Looks up a named value.
    pub fn value(&self, key: &str) -> Option<&Json> {
        self.values.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Runs `f` as a named phase, measuring wall time at its edges —
    /// the only place the observability layer touches the clock.
    pub fn phase<T>(&mut self, name: impl Into<String>, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push(Phase {
            name: name.into(),
            wall: start.elapsed(),
        });
        out
    }

    /// Records an externally measured phase duration.
    pub fn push_phase(&mut self, name: impl Into<String>, wall: Duration) {
        self.phases.push(Phase {
            name: name.into(),
            wall,
        });
    }

    /// The recorded phases, in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total wall time across phases.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// The report as a JSON value. With `include_timing` the `timing`
    /// section (wall times) is appended; without it the output is a
    /// pure function of counters and values.
    pub fn to_json(&self, include_timing: bool) -> Json {
        let mut pairs = vec![
            ("report".to_string(), Json::str(&self.name)),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            ("values".to_string(), Json::Obj(self.values.clone())),
        ];
        if include_timing {
            pairs.push((
                "timing".to_string(),
                Json::obj(vec![
                    (
                        "phases",
                        Json::Arr(
                            self.phases
                                .iter()
                                .map(|p| {
                                    Json::obj(vec![
                                        ("name", Json::str(&p.name)),
                                        ("wall_us", Json::UInt(p.wall.as_micros() as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("total_us", Json::UInt(self.total_wall().as_micros() as u64)),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// Deterministic JSON text: counters and values, no wall times.
    /// Byte-identical across reruns of the same seeded workload.
    pub fn canonical_json(&self) -> String {
        self.to_json(false).render()
    }

    /// Full JSON text including the measured `timing` section.
    pub fn full_json(&self) -> String {
        self.to_json(true).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;
    use crate::recorder::{MemoryRecorder, Recorder};

    #[test]
    fn canonical_json_excludes_timing_and_orders_counters() {
        let mut rep = RunReport::new("unit");
        rep.phase("work", || {
            // A deterministic counted busy-phase: the same amount of work
            // every run, no scheduler dependence.
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        });
        rep.set_counter("z.last", 1);
        rep.set_counter("a.first", 2);
        rep.set_value("seed", Json::UInt(42));
        let canon = rep.canonical_json();
        assert!(!canon.contains("timing"));
        let a = canon.find("a.first").unwrap();
        let z = canon.find("z.last").unwrap();
        assert!(a < z, "counters sorted by name");
        let parsed = parse_json(&canon).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("a.first"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("values")
                .and_then(|v| v.get("seed"))
                .and_then(Json::as_u64),
            Some(42)
        );
        let full = parse_json(&rep.full_json()).unwrap();
        assert!(full.get("timing").is_some());
    }

    #[test]
    fn counters_merge_from_recorder() {
        let mut rec = MemoryRecorder::new();
        rec.counter_add("sat.conflicts", 3);
        rec.counter_add("sat.conflicts", 4);
        let mut rep = RunReport::new("r");
        rep.add_counters(rec.counters().iter().map(|(k, v)| (*k, *v)));
        rep.add_counters([("sat.conflicts", 1)]);
        assert_eq!(rep.counter("sat.conflicts"), 8);
    }

    #[test]
    fn set_value_overwrites_in_place() {
        let mut rep = RunReport::new("r");
        rep.set_value("a", Json::UInt(1));
        rep.set_value("b", Json::UInt(2));
        rep.set_value("a", Json::UInt(3));
        let canon = rep.canonical_json();
        assert!(canon.find("\"a\":3").unwrap() < canon.find("\"b\":2").unwrap());
    }

    #[test]
    fn phase_returns_closure_result() {
        let mut rep = RunReport::new("r");
        let v = rep.phase("p", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(rep.phases().len(), 1);
        assert_eq!(rep.phases()[0].name, "p");
    }
}
