//! Minimal dependency-free JSON value type, writer, and parser.
//!
//! The workspace is offline by policy, so run reports cannot lean on
//! `serde`. This module implements exactly the subset the repo needs:
//! a value enum whose objects preserve insertion order (deterministic
//! output), a writer that renders integers exactly, and a
//! recursive-descent parser used by `scripts/check.sh`'s smoke test to
//! prove emitted reports are well formed.

use std::fmt;

/// A JSON value. Object keys keep insertion order so rendering is
/// deterministic — the writer performs no sorting of its own.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, rendered exactly.
    Int(i64),
    /// An unsigned integer, rendered exactly.
    UInt(u64),
    /// A finite float. Non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 if it is an integer (or integral float).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::UInt(u) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{f:?}` always keeps a decimal point or exponent,
                    // so the value re-parses as a float.
                    let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value.
///
/// Accepts the standard grammar (RFC 8259) minus `\uXXXX` surrogate
/// pairs, which the workspace never emits. Returns a message naming
/// the byte offset on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| format!("bad \\u at byte {}", self.pos))?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_exact_for_integers() {
        let v = Json::obj(vec![
            ("a", Json::UInt(u64::MAX)),
            ("b", Json::Int(i64::MIN)),
            ("c", Json::Float(1.5)),
        ]);
        assert_eq!(
            v.render(),
            format!("{{\"a\":{},\"b\":{},\"c\":1.5}}", u64::MAX, i64::MIN)
        );
    }

    #[test]
    fn round_trip_preserves_structure() {
        let v = Json::obj(vec![
            ("name", Json::str("e10 \"obs\"\n")),
            ("ok", Json::Bool(true)),
            ("n", Json::Null),
            (
                "xs",
                Json::Arr(vec![Json::UInt(0), Json::Int(-3), Json::Float(0.25)]),
            ),
            ("nested", Json::obj(vec![("k", Json::str("v"))])),
        ]);
        let text = v.render();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, v);
        // Rendering the parse result reproduces the bytes: order preserved.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"abc").is_err());
        assert!(parse_json("12 34").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse_json(r#"{"s":"a\tbA\"\\"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\tbA\"\\"));
    }

    #[test]
    fn accessors_work() {
        let v = parse_json(r#"{"u":7,"i":-2,"f":2.5,"a":[1]}"#).unwrap();
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("i").and_then(Json::as_f64), Some(-2.0));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert!(v.get("missing").is_none());
    }
}
