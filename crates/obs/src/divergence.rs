//! Cross-domain watched traces and first-divergence detection.
//!
//! A [`WatchedTrace`] is the common shape both sides of a comparison
//! are lowered into: the SLM side from golden/reference values, the
//! RTL side from `Simulator` watch lists. [`first_divergence`] walks
//! the two in lockstep and names the earliest mismatching step and
//! signal; [`combined_vcd`] renders both sides into one dump with
//! separate scopes so a viewer can eyeball the split point.

use crate::vcd::{render_vcd, VcdScope, VcdSignal};
use dfv_bits::Bv;

/// A cycle-indexed trace over a fixed set of named, sized signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchedTrace {
    names: Vec<String>,
    widths: Vec<u32>,
    /// `steps[k]` holds `(time, values)` for the k-th recorded step;
    /// `values` is parallel to `names`.
    steps: Vec<(u64, Vec<Bv>)>,
}

impl WatchedTrace {
    /// Creates an empty trace over the given signals. Panics if names
    /// and widths disagree in length.
    pub fn new(names: Vec<String>, widths: Vec<u32>) -> Self {
        assert_eq!(names.len(), widths.len(), "names/widths must be parallel");
        Self {
            names,
            widths,
            steps: Vec::new(),
        }
    }

    /// Signal names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Declared signal widths, parallel to [`Self::names`].
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps have been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends one step. Panics if the value count doesn't match the
    /// signal count or the time goes backwards.
    pub fn push(&mut self, time: u64, values: Vec<Bv>) {
        assert_eq!(values.len(), self.names.len(), "one value per signal");
        if let Some(&(prev, _)) = self.steps.last() {
            assert!(time >= prev, "times must be nondecreasing");
        }
        self.steps.push((time, values));
    }

    /// Column index of a signal by name.
    pub fn signal(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The value of column `sig` at step `step`.
    pub fn value(&self, step: usize, sig: usize) -> Option<&Bv> {
        self.steps.get(step).and_then(|(_, vs)| vs.get(sig))
    }

    /// Lowers the trace into one VCD scope with the given name.
    pub fn to_scope(&self, scope_name: &str) -> VcdScope {
        VcdScope {
            name: scope_name.to_string(),
            signals: self
                .names
                .iter()
                .zip(&self.widths)
                .enumerate()
                .map(|(i, (name, &width))| VcdSignal {
                    name: name.clone(),
                    width,
                    samples: self
                        .steps
                        .iter()
                        .map(|(t, vs)| (*t, vs[i].clone()))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The earliest point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Step index (cycle) of the first mismatch.
    pub step: usize,
    /// Trace time at that step (taken from the `actual` side).
    pub time: u64,
    /// Name of the offending signal.
    pub signal: String,
    /// Expected-side value.
    pub expected: Bv,
    /// Actual-side value.
    pub actual: Bv,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence at cycle {} (t={}): signal `{}` expected {} got {}",
            self.step, self.time, self.signal, self.expected, self.actual
        )
    }
}

/// Finds the first step/signal where the traces disagree.
///
/// Only signals present in *both* traces (matched by name) are
/// compared, so the RTL side may watch extra internals. Steps are
/// aligned by position; comparison stops at the shorter trace. Within
/// a step, the expected trace's signal order breaks ties.
pub fn first_divergence(expected: &WatchedTrace, actual: &WatchedTrace) -> Option<Divergence> {
    let pairs: Vec<(usize, usize)> = expected
        .names
        .iter()
        .enumerate()
        .filter_map(|(ei, name)| actual.signal(name).map(|ai| (ei, ai)))
        .collect();
    let steps = expected.len().min(actual.len());
    for k in 0..steps {
        for &(ei, ai) in &pairs {
            let ev = &expected.steps[k].1[ei];
            let av = &actual.steps[k].1[ai];
            if ev != av {
                return Some(Divergence {
                    step: k,
                    time: actual.steps[k].0,
                    signal: expected.names[ei].clone(),
                    expected: ev.clone(),
                    actual: av.clone(),
                });
            }
        }
    }
    None
}

/// Renders both sides into one VCD with separate scopes (default
/// names `slm` and `rtl`), so viewers show the two domains aligned on
/// a shared timeline.
pub fn combined_vcd(
    expected: &WatchedTrace,
    expected_scope: &str,
    actual: &WatchedTrace,
    actual_scope: &str,
) -> String {
    render_vcd(&[
        expected.to_scope(expected_scope),
        actual.to_scope(actual_scope),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcd::parse_vcd;

    fn bv(w: u32, v: u64) -> Bv {
        Bv::from_u64(w, v)
    }

    fn trace(vals: &[(u64, u64)]) -> WatchedTrace {
        let mut t = WatchedTrace::new(vec!["y".into()], vec![8]);
        for &(time, v) in vals {
            t.push(time, vec![bv(8, v)]);
        }
        t
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let a = trace(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn earliest_step_and_signal_order_win() {
        let mut e = WatchedTrace::new(vec!["a".into(), "b".into()], vec![4, 4]);
        let mut g = WatchedTrace::new(vec!["b".into(), "a".into()], vec![4, 4]);
        e.push(0, vec![bv(4, 1), bv(4, 2)]);
        g.push(0, vec![bv(4, 2), bv(4, 1)]); // same values, columns swapped
        e.push(5, vec![bv(4, 3), bv(4, 4)]);
        g.push(5, vec![bv(4, 9), bv(4, 8)]); // both signals wrong here
        let d = first_divergence(&e, &g).expect("diverges");
        assert_eq!(d.step, 1);
        assert_eq!(d.time, 5);
        assert_eq!(d.signal, "a", "expected-side order breaks the tie");
        assert_eq!(d.expected, bv(4, 3));
        assert_eq!(d.actual, bv(4, 8));
        assert!(d.to_string().contains("cycle 1"));
    }

    #[test]
    fn extra_actual_signals_are_ignored() {
        let e = trace(&[(0, 1), (1, 2)]);
        let mut g = WatchedTrace::new(vec!["y".into(), "debug".into()], vec![8, 1]);
        g.push(0, vec![bv(8, 1), bv(1, 0)]);
        g.push(1, vec![bv(8, 2), bv(1, 1)]);
        assert_eq!(first_divergence(&e, &g), None);
    }

    #[test]
    fn combined_vcd_has_both_scopes_and_initial_values() {
        let e = trace(&[(0, 1), (1, 2)]);
        let g = trace(&[(0, 1), (1, 7)]);
        let vcd = combined_vcd(&e, "slm", &g, "rtl");
        let parsed = parse_vcd(&vcd).expect("well-formed");
        assert!(parsed.var("slm", "y").is_some());
        assert!(parsed.var("rtl", "y").is_some());
        assert_eq!(parsed.dumpvars_len, 2, "both scopes dumped at t0");
    }
}
