//! Multi-scope VCD (Value Change Dump, IEEE 1800 §21.7) writer and a
//! small round-trip parser.
//!
//! The writer fixes the two format bugs the repo's original exporter
//! had: it emits the `$dumpvars … $end` initial-value block viewers
//! expect at time zero, and it takes every signal's width from its
//! *declaration* rather than guessing from the first trace sample.
//! Identifiers are sanitized against the full reserved set (`$`, `#`,
//! `[`, `]`, whitespace, non-printables), and the parser exists so
//! tests can prove a rendered dump survives a parse round trip.

use dfv_bits::Bv;

/// One declared signal and its sampled values.
#[derive(Debug, Clone)]
pub struct VcdSignal {
    /// Signal name (sanitized on render).
    pub name: String,
    /// Declared width in bits — authoritative, never inferred from samples.
    pub width: u32,
    /// `(time, value)` samples with nondecreasing times. Values are
    /// emitted change-only; the value at the earliest dump time goes
    /// into the `$dumpvars` block.
    pub samples: Vec<(u64, Bv)>,
}

/// A named scope grouping signals (e.g. `slm` vs `rtl` sides).
#[derive(Debug, Clone)]
pub struct VcdScope {
    /// Scope (module) name.
    pub name: String,
    /// The scope's signals.
    pub signals: Vec<VcdSignal>,
}

/// Replaces every VCD-reserved or non-printable character with `_`.
///
/// `$var` identifiers are whitespace-delimited and `$`-keyword,
/// `#`-timestamp, and `[`/`]` bit-select syntax all collide with raw
/// names, so the whole set maps to underscores. Empty names become `_`.
pub fn sanitize_id(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || !c.is_ascii_graphic() || matches!(c, '$' | '#' | '[' | ']') {
                '_'
            } else {
                c
            }
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// Short identifier code for the `idx`-th variable: base-94 over the
/// printable ASCII range starting at `!`.
fn id_code(mut idx: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((b'!' + (idx % 94) as u8) as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
    }
    code
}

fn value_text(v: &Bv, id: &str) -> String {
    if v.width() == 1 {
        format!("{}{}", if v.bit(0) { '1' } else { '0' }, id)
    } else {
        let mut bits = String::with_capacity(v.width() as usize);
        for i in (0..v.width()).rev() {
            bits.push(if v.bit(i) { '1' } else { '0' });
        }
        format!("b{bits} {id}")
    }
}

fn unknown_text(width: u32, id: &str) -> String {
    if width == 1 {
        format!("x{id}")
    } else {
        format!("b{} {}", "x".repeat(width as usize), id)
    }
}

/// Renders scopes into VCD text.
///
/// The header declares every signal with its declared width; the first
/// timestamp carries a `$dumpvars … $end` block giving every variable
/// an initial value (`x` for signals whose first sample comes later);
/// subsequent timestamps carry value changes only. Output is a pure
/// function of the input — no clocks, no environment.
pub fn render_vcd(scopes: &[VcdScope]) -> String {
    let mut out = String::new();
    out.push_str("$date\n    (deterministic)\n$end\n");
    out.push_str("$version\n    dfv-obs vcd writer\n$end\n");
    out.push_str("$timescale\n    1ns\n$end\n");

    // Header: declared widths only.
    let mut idx = 0usize;
    let mut ids: Vec<Vec<String>> = Vec::with_capacity(scopes.len());
    for scope in scopes {
        out.push_str(&format!(
            "$scope module {} $end\n",
            sanitize_id(&scope.name)
        ));
        let mut scope_ids = Vec::with_capacity(scope.signals.len());
        for sig in &scope.signals {
            let id = id_code(idx);
            idx += 1;
            out.push_str(&format!(
                "$var wire {} {} {} $end\n",
                sig.width,
                id,
                sanitize_id(&sig.name)
            ));
            scope_ids.push(id);
        }
        out.push_str("$upscope $end\n");
        ids.push(scope_ids);
    }
    out.push_str("$enddefinitions $end\n");

    // Gather every (time, scope_idx, sig_idx) sample in one ordered walk.
    let mut times: Vec<u64> = scopes
        .iter()
        .flat_map(|s| s.signals.iter())
        .flat_map(|sig| sig.samples.iter().map(|(t, _)| *t))
        .collect();
    times.sort_unstable();
    times.dedup();

    let t0 = times.first().copied().unwrap_or(0);

    // Initial-value block at the earliest time (spec §21.7.2): every
    // declared variable gets a value; signals not yet sampled are `x`.
    out.push_str(&format!("#{t0}\n$dumpvars\n"));
    let mut last: Vec<Vec<Option<Bv>>> =
        scopes.iter().map(|s| vec![None; s.signals.len()]).collect();
    for (si, scope) in scopes.iter().enumerate() {
        for (gi, sig) in scope.signals.iter().enumerate() {
            let id = &ids[si][gi];
            match sig.samples.iter().find(|(t, _)| *t == t0) {
                Some((_, v)) => {
                    out.push_str(&value_text(v, id));
                    out.push('\n');
                    last[si][gi] = Some(v.clone());
                }
                None => {
                    out.push_str(&unknown_text(sig.width, id));
                    out.push('\n');
                }
            }
        }
    }
    out.push_str("$end\n");

    // Change-only emission for the remaining times.
    for &t in times.iter().skip(1) {
        let mut block = String::new();
        for (si, scope) in scopes.iter().enumerate() {
            for (gi, sig) in scope.signals.iter().enumerate() {
                for (st, v) in &sig.samples {
                    if *st != t {
                        continue;
                    }
                    if last[si][gi].as_ref() != Some(v) {
                        block.push_str(&value_text(v, &ids[si][gi]));
                        block.push('\n');
                        last[si][gi] = Some(v.clone());
                    }
                }
            }
        }
        if !block.is_empty() {
            out.push_str(&format!("#{t}\n"));
            out.push_str(&block);
        }
    }
    if let Some(&t_last) = times.last() {
        out.push_str(&format!("#{}\n", t_last + 1));
    }
    out
}

/// One `$var` declaration from a parsed VCD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedVar {
    /// Enclosing scope name.
    pub scope: String,
    /// Declared width.
    pub width: u32,
    /// Short identifier code.
    pub id: String,
    /// Declared name.
    pub name: String,
}

/// Result of parsing a VCD document.
#[derive(Debug, Clone, Default)]
pub struct ParsedVcd {
    /// Declared variables, in declaration order.
    pub vars: Vec<ParsedVar>,
    /// `(time, id, value)` changes in document order, where value is
    /// the raw token: `0`, `1`, `x`, or `b…` bit text without the id.
    pub changes: Vec<(u64, String, String)>,
    /// Number of value entries inside the `$dumpvars` block.
    pub dumpvars_len: usize,
}

impl ParsedVcd {
    /// Finds a declared variable by scope and name.
    pub fn var(&self, scope: &str, name: &str) -> Option<&ParsedVar> {
        self.vars
            .iter()
            .find(|v| v.scope == scope && v.name == name)
    }
}

/// Parses the subset of VCD the workspace's writers emit (scalar and
/// `b…` vector values, `x` unknowns, `$scope`/`$var` headers,
/// `$dumpvars` blocks). Returns an error naming what was malformed.
pub fn parse_vcd(text: &str) -> Result<ParsedVcd, String> {
    let mut parsed = ParsedVcd::default();
    let mut scope_stack: Vec<String> = Vec::new();
    let mut time: Option<u64> = None;
    let mut in_dumpvars = false;
    let mut header_done = false;

    let mut tokens = text.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        match tok {
            "$date" | "$version" | "$timescale" | "$comment" => {
                for t in tokens.by_ref() {
                    if t == "$end" {
                        break;
                    }
                }
            }
            "$scope" => {
                let kind = tokens.next().ok_or("truncated $scope")?;
                if kind != "module" {
                    return Err(format!("unsupported scope kind {kind}"));
                }
                let name = tokens.next().ok_or("truncated $scope")?;
                scope_stack.push(name.to_string());
                if tokens.next() != Some("$end") {
                    return Err("unterminated $scope".into());
                }
            }
            "$upscope" => {
                scope_stack.pop().ok_or("unbalanced $upscope")?;
                if tokens.next() != Some("$end") {
                    return Err("unterminated $upscope".into());
                }
            }
            "$var" => {
                let _kind = tokens.next().ok_or("truncated $var")?;
                let width: u32 = tokens
                    .next()
                    .ok_or("truncated $var")?
                    .parse()
                    .map_err(|_| "non-numeric $var width".to_string())?;
                let id = tokens.next().ok_or("truncated $var")?.to_string();
                let name = tokens.next().ok_or("truncated $var")?.to_string();
                // Bit-selects like `q [3:0]` would appear as an extra
                // token before $end; the writers never emit them.
                if tokens.next() != Some("$end") {
                    return Err(format!("malformed $var line for {name}"));
                }
                parsed.vars.push(ParsedVar {
                    scope: scope_stack.last().cloned().unwrap_or_default(),
                    width,
                    id,
                    name,
                });
            }
            "$enddefinitions" => {
                if tokens.next() != Some("$end") {
                    return Err("unterminated $enddefinitions".into());
                }
                header_done = true;
            }
            "$dumpvars" => {
                if !header_done {
                    return Err("$dumpvars before $enddefinitions".into());
                }
                in_dumpvars = true;
            }
            "$end" => {
                if !in_dumpvars {
                    return Err("stray $end".into());
                }
                in_dumpvars = false;
            }
            t if t.starts_with('#') => {
                let v: u64 = t[1..].parse().map_err(|_| format!("bad timestamp {t}"))?;
                time = Some(v);
            }
            t if t.starts_with('b') || t.starts_with('B') => {
                let bits = &t[1..];
                if bits.is_empty() || !bits.chars().all(|c| matches!(c, '0' | '1' | 'x' | 'X')) {
                    return Err(format!("bad vector value {t}"));
                }
                let id = tokens.next().ok_or("vector value missing id")?;
                let t_now = time.ok_or("value change before first timestamp")?;
                record_change(&mut parsed, t_now, id, bits, in_dumpvars)?;
            }
            t if matches!(t.chars().next(), Some('0' | '1' | 'x' | 'X' | 'z' | 'Z')) => {
                if t.len() < 2 {
                    return Err(format!("scalar value {t} missing id"));
                }
                let (val, id) = t.split_at(1);
                let t_now = time.ok_or("value change before first timestamp")?;
                record_change(&mut parsed, t_now, id, val, in_dumpvars)?;
            }
            t => return Err(format!("unrecognized token {t}")),
        }
    }
    if in_dumpvars {
        return Err("unterminated $dumpvars".into());
    }
    Ok(parsed)
}

fn record_change(
    parsed: &mut ParsedVcd,
    time: u64,
    id: &str,
    value: &str,
    in_dumpvars: bool,
) -> Result<(), String> {
    let var = parsed
        .vars
        .iter()
        .find(|v| v.id == id)
        .ok_or_else(|| format!("value change for undeclared id {id}"))?;
    // Scalar x/z shorthand legally applies to any width (left-extension),
    // so only multi-character bit texts are checked against the declaration.
    if value.len() > 1 && value.len() > var.width as usize {
        return Err(format!(
            "value {value} wider than declared {} for {}",
            var.width, var.name
        ));
    }
    if in_dumpvars {
        parsed.dumpvars_len += 1;
    }
    parsed
        .changes
        .push((time, id.to_string(), value.to_string()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(width: u32, v: u64) -> Bv {
        Bv::from_u64(width, v)
    }

    #[test]
    fn sanitize_replaces_full_reserved_set() {
        assert_eq!(sanitize_id("a b\tc"), "a_b_c");
        assert_eq!(sanitize_id("bus[3]"), "bus_3_");
        assert_eq!(sanitize_id("$top#x"), "_top_x");
        assert_eq!(sanitize_id("déjà"), "d_j_");
        assert_eq!(sanitize_id(""), "_");
    }

    #[test]
    fn render_emits_dumpvars_with_declared_widths() {
        let scopes = vec![VcdScope {
            name: "top".into(),
            signals: vec![
                VcdSignal {
                    name: "q".into(),
                    width: 4,
                    samples: vec![(0, bv(4, 0)), (1, bv(4, 5)), (2, bv(4, 5))],
                },
                VcdSignal {
                    name: "late".into(),
                    width: 1,
                    // First sample after t0: initial value must be x.
                    samples: vec![(2, bv(1, 1))],
                },
            ],
        }];
        let vcd = render_vcd(&scopes);
        assert!(vcd.contains("$var wire 4 ! q $end"));
        assert!(vcd.contains("$var wire 1 \" late $end"));
        let dump = "#0\n$dumpvars\nb0000 !\nx\"\n$end\n";
        assert!(vcd.contains(dump), "missing initial block in:\n{vcd}");
        // Change-only afterwards: t2 repeats q=5, so only `late` changes.
        assert!(vcd.contains("#1\nb0101 !\n"));
        assert!(vcd.contains("#2\n1\"\n"));
        assert!(!vcd.contains("#2\nb0101"));
    }

    #[test]
    fn empty_trace_still_declares_real_widths() {
        let scopes = vec![VcdScope {
            name: "top".into(),
            signals: vec![VcdSignal {
                name: "wide".into(),
                width: 18,
                samples: vec![],
            }],
        }];
        let vcd = render_vcd(&scopes);
        assert!(vcd.contains("$var wire 18 ! wide $end"));
        assert!(vcd.contains("$dumpvars\nbxxxxxxxxxxxxxxxxxx !\n$end"));
    }

    #[test]
    fn rendered_vcd_round_trips_through_parser() {
        let scopes = vec![
            VcdScope {
                name: "slm".into(),
                signals: vec![VcdSignal {
                    name: "y[0]".into(),
                    width: 8,
                    samples: vec![(0, bv(8, 1)), (3, bv(8, 9))],
                }],
            },
            VcdScope {
                name: "rtl".into(),
                signals: vec![VcdSignal {
                    name: "y".into(),
                    width: 8,
                    samples: vec![(0, bv(8, 1)), (3, bv(8, 255))],
                }],
            },
        ];
        let parsed = parse_vcd(&render_vcd(&scopes)).expect("round trip");
        assert_eq!(parsed.vars.len(), 2);
        let v0 = parsed.var("slm", "y_0_").expect("sanitized var present");
        assert_eq!(v0.width, 8);
        assert_eq!(parsed.var("rtl", "y").map(|v| v.width), Some(8));
        // Initial block covers every declared var.
        assert_eq!(parsed.dumpvars_len, 2);
        // Two later changes at t=3.
        assert_eq!(parsed.changes.iter().filter(|(t, _, _)| *t == 3).count(), 2);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_vcd("$var wire x ! q $end").is_err());
        assert!(parse_vcd("#0\n1!").is_err()); // change for undeclared id
        assert!(parse_vcd("$scope module a $end $upscope").is_err());
    }

    #[test]
    fn id_codes_cover_more_than_94_signals() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!\"");
        let scopes = vec![VcdScope {
            name: "wide".into(),
            signals: (0..100)
                .map(|i| VcdSignal {
                    name: format!("s{i}"),
                    width: 1,
                    samples: vec![(0, bv(1, (i % 2) as u64))],
                })
                .collect(),
        }];
        let parsed = parse_vcd(&render_vcd(&scopes)).expect("round trip");
        assert_eq!(parsed.vars.len(), 100);
        assert_eq!(parsed.dumpvars_len, 100);
    }
}
