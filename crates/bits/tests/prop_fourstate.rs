//! Soundness of four-state (X) propagation: for every completion of the
//! unknown bits of the operands, the concrete 2-state result must be
//! *covered* by the four-state result (agree on every bit the four-state
//! result claims to know).
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_bits::{Bv, Xv};
use proptest::prelude::*;

/// Builds a partial value from (value bits, known mask) seeds.
fn xv(width: u32, value: u64, known: u64) -> Xv {
    Xv::with_mask(&Bv::from_u64(width, value), &Bv::from_u64(width, known))
}

/// Completes an Xv's unknown bits from a fill pattern.
fn complete(x: &Xv, fill: u64) -> Bv {
    let w = x.width();
    let known = x.known_mask();
    let fill = Bv::from_u64(w, fill);
    x.value_bits().and(&known).or(&fill.and(&known.not()))
}

/// Checks the covering relation: wherever `x` claims a known bit, the
/// concrete result must agree.
fn covers(x: &Xv, concrete: &Bv) -> bool {
    let known = x.known_mask();
    x.value_bits().and(&known) == concrete.and(&known)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn binary_ops_are_sound(
        w in 1u32..=16,
        av in any::<u64>(), ak in any::<u64>(),
        bv in any::<u64>(), bk in any::<u64>(),
        fa in any::<u64>(), fb in any::<u64>(),
    ) {
        let a = xv(w, av, ak);
        let b = xv(w, bv, bk);
        let (ca, cb) = (complete(&a, fa), complete(&b, fb));
        prop_assert!(covers(&a.and(&b), &ca.and(&cb)), "and");
        prop_assert!(covers(&a.or(&b), &ca.or(&cb)), "or");
        prop_assert!(covers(&a.xor(&b), &ca.xor(&cb)), "xor");
        prop_assert!(covers(&a.not(), &ca.not()), "not");
        prop_assert!(covers(&a.add(&b), &ca.wrapping_add(&cb)), "add");
    }

    #[test]
    fn mux_is_sound(
        w in 1u32..=16,
        av in any::<u64>(), ak in any::<u64>(),
        bv in any::<u64>(), bk in any::<u64>(),
        sel_known in any::<bool>(), sel_val in any::<bool>(),
        fa in any::<u64>(), fb in any::<u64>(), fs in any::<bool>(),
    ) {
        let a = xv(w, av, ak);
        let b = xv(w, bv, bk);
        let s = if sel_known {
            Xv::from_bv(&Bv::from_bool(sel_val))
        } else {
            Xv::unknown(1)
        };
        let m = Xv::mux(&s, &a, &b);
        let concrete_sel = if sel_known { sel_val } else { fs };
        let concrete = if concrete_sel {
            complete(&a, fa)
        } else {
            complete(&b, fb)
        };
        prop_assert!(covers(&m, &concrete));
    }

    #[test]
    fn fully_known_ops_are_exact(w in 1u32..=16, av in any::<u64>(), bv in any::<u64>()) {
        let (a, b) = (Bv::from_u64(w, av), Bv::from_u64(w, bv));
        let (xa, xb) = (Xv::from_bv(&a), Xv::from_bv(&b));
        prop_assert_eq!(xa.add(&xb).try_to_bv().unwrap(), a.wrapping_add(&b));
        prop_assert_eq!(xa.and(&xb).try_to_bv().unwrap(), a.and(&b));
        prop_assert_eq!(xa.xor(&xb).try_to_bv().unwrap(), a.xor(&b));
    }
}
