//! Signed-arithmetic edge cases cross-checked against `i128` reference
//! semantics: `sdiv`/`srem`/`widening_smul`/`wrapping_neg` at MIN / -1,
//! width-1 operands, and the wrap of `-MIN`.
//!
//! Unlike `prop_bv.rs` these run offline: exhaustive enumeration for small
//! widths plus seeded `SplitMix64` sampling (with forced edge values) up
//! to width 64, where every operation still has an exact `i128` model.

use dfv_bits::{Bv, SplitMix64};

/// Truncates `v` to `w` bits and reinterprets as two's complement —
/// the reference for every modular operation below (`w <= 64`).
fn trunc_i(v: i128, w: u32) -> i128 {
    let m = 1i128 << w;
    let r = v.rem_euclid(m);
    if r >= m / 2 {
        r - m
    } else {
        r
    }
}

/// Builds the `w`-bit vector with the two's-complement encoding of `v`
/// (`w <= 128`; the `u128` cast preserves the low bit pattern).
fn bv_i128(w: u32, v: i128) -> Bv {
    Bv::from_u128(w, v as u128)
}

/// Reference signed division, truncating toward zero, with the crate's
/// hardware conventions: `x / 0` is all-ones and `MIN / -1` wraps to `MIN`.
fn ref_sdiv(a: i128, b: i128, w: u32) -> i128 {
    if b == 0 {
        trunc_i(-1, w) // all-ones pattern
    } else {
        trunc_i(a / b, w)
    }
}

/// Reference signed remainder (sign of the dividend); `x % 0` is `x`.
fn ref_srem(a: i128, b: i128, w: u32) -> i128 {
    if b == 0 {
        a
    } else {
        trunc_i(a % b, w)
    }
}

/// Checks all four signed operations on one `(a, b)` pair at width `w`.
fn check_pair(w: u32, a: i128, b: i128) {
    let av = bv_i128(w, a);
    let bv = bv_i128(w, b);

    let q = av.sdiv(&bv);
    assert_eq!(q, bv_i128(w, ref_sdiv(a, b, w)), "sdiv w={w} a={a} b={b}");
    let r = av.srem(&bv);
    assert_eq!(r, bv_i128(w, ref_srem(a, b, w)), "srem w={w} a={a} b={b}");
    if b != 0 {
        // Euclidean identity in the modular ring: q*b + r == a.
        let qb = q.wrapping_mul(&bv);
        assert_eq!(qb.wrapping_add(&r), av, "q*b+r w={w} a={a} b={b}");
    }

    // The full product always fits i128 for w <= 64.
    let p = av.widening_smul(&bv);
    assert_eq!(p.width(), 2 * w, "smul width w={w}");
    assert_eq!(p, bv_i128(2 * w, a * b), "smul w={w} a={a} b={b}");

    assert_eq!(
        av.wrapping_neg(),
        bv_i128(w, trunc_i(-a, w)),
        "neg w={w} a={a}"
    );
}

#[test]
fn exhaustive_small_widths() {
    for w in 1..=6u32 {
        let min = -(1i128 << (w - 1));
        let max = (1i128 << (w - 1)) - 1;
        for a in min..=max {
            for b in min..=max {
                check_pair(w, a, b);
            }
        }
    }
}

#[test]
fn min_and_minus_one_wrap_at_every_width() {
    for w in 1..=64u32 {
        let min = -(1i128 << (w - 1));
        let minv = bv_i128(w, min);
        let neg1 = bv_i128(w, -1);

        // -MIN has no representation: negation wraps back to MIN.
        assert_eq!(minv.wrapping_neg(), minv, "neg(MIN) w={w}");
        // MIN / -1 overflows the same way (the x86 #DE case, defined here).
        assert_eq!(minv.sdiv(&neg1), minv, "MIN/-1 w={w}");
        assert!(minv.srem(&neg1).is_zero(), "MIN%-1 w={w}");
        // But the widening product has room: -MIN fits in 2w bits.
        assert_eq!(
            minv.widening_smul(&neg1),
            bv_i128(2 * w, -min),
            "MIN*-1 w={w}"
        );
        // And the general reference covers the same pair.
        check_pair(w, min, -1);
    }
}

#[test]
fn width_one_operands() {
    // A 1-bit vector holds 0 or -1; exhaustive over all pairs (also hit
    // by `exhaustive_small_widths`, spelled out here for the corner
    // conventions).
    let zero = Bv::zero(1);
    let neg1 = Bv::ones(1);
    check_pair(1, 0, 0);
    check_pair(1, 0, -1);
    check_pair(1, -1, 0);
    check_pair(1, -1, -1);
    // -1 / -1 = +1, which does not fit in 1 bit: wraps to -1.
    assert_eq!(neg1.sdiv(&neg1), neg1);
    // ... but the 2-bit widening product represents it exactly.
    assert_eq!(neg1.widening_smul(&neg1).to_i64(), 1);
    // Division by zero: all-ones; remainder by zero: the dividend.
    assert_eq!(zero.sdiv(&zero), neg1);
    assert_eq!(neg1.srem(&zero), neg1);
    // MIN at width 1 *is* -1, so its negation wraps to itself.
    assert_eq!(neg1.wrapping_neg(), neg1);
}

#[test]
fn random_wide_widths_match_i128_reference() {
    let mut rng = SplitMix64::new(0xD1CE_5EED);
    let widths = [7u32, 8, 15, 16, 31, 32, 33, 48, 63, 64];
    for _ in 0..4000 {
        let w = widths[rng.below(widths.len() as u64) as usize];
        let min = -(1i128 << (w - 1));
        let max = (1i128 << (w - 1)) - 1;
        // Bias one operand in eight toward an edge value so MIN, -1, and 0
        // meet random partners at every width.
        let draw = |rng: &mut SplitMix64| match rng.below(8) {
            0 => min,
            1 => max,
            2 => -1,
            3 => 0,
            _ => trunc_i(rng.bits(w) as i128, w),
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert!((min..=max).contains(&a) && (min..=max).contains(&b));
        check_pair(w, a, b);
    }
}
