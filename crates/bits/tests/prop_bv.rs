//! Property-based tests: `Bv` must agree with native integer arithmetic on
//! widths up to 64, and ring/structural axioms must hold at any width.
// Gated: property-based tests depend on the external `proptest` crate,
// which offline builds cannot fetch. Enable with `--features proptest-tests`
// in an environment that can resolve crates.io dependencies.
#![cfg(feature = "proptest-tests")]

use dfv_bits::{Bv, Fx, OverflowMode, RoundingMode};
use proptest::prelude::*;

/// An arbitrary width in 1..=200 plus a value pattern.
fn bv_strategy() -> impl Strategy<Value = Bv> {
    (1u32..=200, proptest::collection::vec(any::<u64>(), 4)).prop_map(|(w, limbs)| {
        let mut v = Bv::zero(w);
        let mut out = v.clone();
        for (i, l) in limbs.iter().enumerate() {
            let base = (i * 64) as u32;
            if base >= w {
                break;
            }
            let hi = (base + 63).min(w - 1);
            let part = Bv::from_u64(hi - base + 1, *l);
            out = if base == 0 {
                part.zext(w)
            } else {
                out.or(&part.zext(w).shl(base))
            };
            v = out.clone();
        }
        v
    })
}

/// Pairs of equal-width vectors.
fn bv_pair() -> impl Strategy<Value = (Bv, Bv)> {
    bv_strategy().prop_flat_map(|a| {
        let w = a.width();
        (
            Just(a),
            proptest::collection::vec(any::<u64>(), 4).prop_map(move |limbs| {
                let mut v = Bv::zero(w);
                for (i, l) in limbs.iter().enumerate() {
                    let base = (i * 64) as u32;
                    if base >= w {
                        break;
                    }
                    let hi = (base + 63).min(w - 1);
                    v = v.or(&Bv::from_u64(hi - base + 1, *l).zext(w).shl(base));
                }
                v
            }),
        )
    })
}

proptest! {
    #[test]
    fn add_matches_u128(w in 1u32..=128, a in any::<u128>(), b in any::<u128>()) {
        let x = Bv::from_u128(w, a);
        let y = Bv::from_u128(w, b);
        let mask = if w == 128 { u128::MAX } else { (1u128 << w) - 1 };
        prop_assert_eq!(x.wrapping_add(&y).to_u128(), a.wrapping_add(b) & mask);
        prop_assert_eq!(x.wrapping_sub(&y).to_u128(), a.wrapping_sub(b) & mask);
    }

    #[test]
    fn mul_matches_u64(w in 1u32..=64, a in any::<u64>(), b in any::<u64>()) {
        let x = Bv::from_u64(w, a);
        let y = Bv::from_u64(w, b);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        prop_assert_eq!(x.wrapping_mul(&y).to_u64(), (a & mask).wrapping_mul(b & mask) & mask);
        prop_assert_eq!(
            x.widening_umul(&y).to_u128(),
            ((a & mask) as u128) * ((b & mask) as u128)
        );
    }

    #[test]
    fn div_matches_u64(w in 1u32..=64, a in any::<u64>(), b in any::<u64>()) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (am, bm) = (a & mask, b & mask);
        prop_assume!(bm != 0);
        let x = Bv::from_u64(w, am);
        let y = Bv::from_u64(w, bm);
        prop_assert_eq!(x.udiv(&y).to_u64(), am / bm);
        prop_assert_eq!(x.urem(&y).to_u64(), am % bm);
    }

    #[test]
    fn signed_ops_match_i64(w in 2u32..=64, a in any::<i64>(), b in any::<i64>()) {
        let x = Bv::from_i64(w, a);
        let y = Bv::from_i64(w, b);
        let (ax, bx) = (x.to_i64(), y.to_i64());
        prop_assume!(bx != 0);
        prop_assume!(!(ax == i64::MIN && bx == -1));
        // Quotient may overflow the w-bit range (MIN / -1); that case wraps,
        // so compare through a re-encode.
        let expect_q = Bv::from_i64(w, ax.wrapping_div(bx));
        let expect_r = Bv::from_i64(w, ax.wrapping_rem(bx));
        prop_assert_eq!(x.sdiv(&y), expect_q);
        prop_assert_eq!(x.srem(&y), expect_r);
        prop_assert_eq!(x.scmp(&y), ax.cmp(&bx));
    }

    #[test]
    fn ring_axioms_any_width((a, b) in bv_pair()) {
        let w = a.width();
        let zero = Bv::zero(w);
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        prop_assert_eq!(a.wrapping_mul(&b), b.wrapping_mul(&a));
        prop_assert_eq!(a.wrapping_add(&zero), a.clone());
        prop_assert_eq!(a.wrapping_sub(&a), zero.clone());
        prop_assert_eq!(a.wrapping_add(&a.wrapping_neg()), zero);
        prop_assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a.clone());
    }

    #[test]
    fn same_width_add_is_associative((a, b) in bv_pair(), c_seed in any::<u64>()) {
        // Modular addition at a FIXED width is associative; Fig 1's
        // non-associativity appears only when an intermediate is narrower.
        let c = Bv::from_u64(a.width(), c_seed);
        prop_assert_eq!(
            a.wrapping_add(&b).wrapping_add(&c),
            a.wrapping_add(&b.wrapping_add(&c))
        );
    }

    #[test]
    fn de_morgan((a, b) in bv_pair()) {
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        prop_assert_eq!(a.xor(&b), a.and(&b.not()).or(&a.not().and(&b)));
    }

    #[test]
    fn slice_concat_inverse(v in bv_strategy(), cut in any::<u32>()) {
        let w = v.width();
        prop_assume!(w >= 2);
        let cut = 1 + cut % (w - 1); // 1..w-1
        let hi = v.slice(w - 1, cut);
        let lo = v.slice(cut - 1, 0);
        prop_assert_eq!(hi.concat(&lo), v);
    }

    #[test]
    fn extension_preserves_value(v in bv_strategy(), extra in 0u32..100) {
        let z = v.zext(v.width() + extra);
        prop_assert_eq!(z.trunc(v.width()), v.clone());
        let s = v.sext(v.width() + extra);
        prop_assert_eq!(s.trunc(v.width()), v.clone());
        prop_assert_eq!(s.to_i64(), v.to_i64());
    }

    #[test]
    fn shifts_match_scaling(v in bv_strategy(), s in 0u32..64) {
        let w = v.width();
        let factor = Bv::from_u64(w, 1).shl(s.min(w - 1));
        if s < w {
            prop_assert_eq!(v.shl(s), v.wrapping_mul(&factor));
            prop_assert_eq!(v.lshr(s).shl(s), v.and(&Bv::ones(w).shl(s)));
        } else {
            prop_assert_eq!(v.shl(s), Bv::zero(w));
        }
    }

    #[test]
    fn ashr_matches_i64(w in 2u32..=64, a in any::<i64>(), s in 0u32..70) {
        let x = Bv::from_i64(w, a);
        let expect = if s >= w {
            if x.msb() { -1 } else { 0 }
        } else {
            // Emulate w-bit arithmetic shift in i64.
            x.to_i64() >> s
        };
        prop_assert_eq!(x.ashr(s).to_i64(), expect);
    }

    #[test]
    fn parse_display_roundtrip(v in bv_strategy()) {
        let s = v.to_string();
        prop_assert_eq!(s.parse::<Bv>().unwrap(), v.clone());
        let b = format!("{}'b{:b}", v.width(), v);
        prop_assert_eq!(b.parse::<Bv>().unwrap(), v);
    }

    #[test]
    fn count_ones_consistent(v in bv_strategy()) {
        let by_iter = v.iter_bits().filter(|&b| b).count() as u32;
        prop_assert_eq!(v.count_ones(), by_iter);
        prop_assert_eq!(v.not().count_ones(), v.width() - by_iter);
    }

    #[test]
    fn fx_add_exact(a in -1000i64..1000, b in -1000i64..1000, fa in 0u32..6, fb in 0u32..6) {
        let x = Fx::from_raw(Bv::from_i64(16, a), fa);
        let y = Fx::from_raw(Bv::from_i64(16, b), fb);
        let s = x.add(&y);
        let expect = (a as f64) * 2f64.powi(-(fa as i32)) + (b as f64) * 2f64.powi(-(fb as i32));
        prop_assert!((s.to_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn fx_saturate_brackets(v in -4096i64..4096) {
        let x = Fx::from_raw(Bv::from_i64(16, v), 0);
        let q = x.quantize(8, 0, RoundingMode::Truncate, OverflowMode::Saturate);
        let f = q.to_f64();
        prop_assert!((-128.0..=127.0).contains(&f));
        if (-128..=127).contains(&v) {
            prop_assert_eq!(f, v as f64);
        }
    }
}
