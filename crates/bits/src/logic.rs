//! Bitwise logic, shifts, reductions, and `std::ops` impls for [`Bv`].

use std::ops;

use crate::Bv;

impl Bv {
    /// Bitwise NOT.
    pub fn not(&self) -> Bv {
        let mut out = self.clone();
        for l in &mut out.limbs {
            *l = !*l;
        }
        out.mask_top();
        out
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and(&self, other: &Bv) -> Bv {
        self.zip(other, "and", |a, b| a & b)
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or(&self, other: &Bv) -> Bv {
        self.zip(other, "or", |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor(&self, other: &Bv) -> Bv {
        self.zip(other, "xor", |a, b| a ^ b)
    }

    fn zip(&self, other: &Bv, op: &str, f: impl Fn(u64, u64) -> u64) -> Bv {
        assert_eq!(
            self.width, other.width,
            "{op} requires equal widths ({} vs {})",
            self.width, other.width
        );
        let mut out = self.clone();
        for (l, &r) in out.limbs.iter_mut().zip(&other.limbs) {
            *l = f(*l, r);
        }
        out.mask_top();
        out
    }

    /// Logical shift left by a constant amount; bits shifted past the top
    /// are lost (the width does not change). Shifting by `>= width` yields
    /// zero, as in Verilog.
    pub fn shl(&self, amount: u32) -> Bv {
        if amount >= self.width {
            return Bv::zero(self.width);
        }
        let mut out = Bv::zero(self.width);
        let limb_shift = (amount / 64) as usize;
        let bit_shift = amount % 64;
        for i in (limb_shift..out.limbs.len()).rev() {
            let lo = self.limbs[i - limb_shift] << bit_shift;
            let hi = if bit_shift == 0 || i == limb_shift {
                0
            } else {
                self.limbs[i - limb_shift - 1] >> (64 - bit_shift)
            };
            out.limbs[i] = lo | hi;
        }
        out.mask_top();
        out
    }

    /// Logical shift right by a constant amount. Shifting by `>= width`
    /// yields zero.
    pub fn lshr(&self, amount: u32) -> Bv {
        if amount >= self.width {
            return Bv::zero(self.width);
        }
        self.slice(self.width - 1, amount).zext(self.width)
    }

    /// Arithmetic shift right by a constant amount (sign bit replicated).
    /// Shifting by `>= width` yields all-sign-bits.
    pub fn ashr(&self, amount: u32) -> Bv {
        if amount >= self.width {
            return if self.msb() {
                Bv::ones(self.width)
            } else {
                Bv::zero(self.width)
            };
        }
        self.slice(self.width - 1, amount).sext(self.width)
    }

    /// Logical shift left by a vector amount (Verilog `a << b` where `b` is a
    /// signal). Amounts at or above the width produce zero.
    pub fn shl_bv(&self, amount: &Bv) -> Bv {
        match amount.try_to_u64() {
            Some(a) if a < self.width as u64 => self.shl(a as u32),
            _ => Bv::zero(self.width),
        }
    }

    /// Logical shift right by a vector amount.
    pub fn lshr_bv(&self, amount: &Bv) -> Bv {
        match amount.try_to_u64() {
            Some(a) if a < self.width as u64 => self.lshr(a as u32),
            _ => Bv::zero(self.width),
        }
    }

    /// Arithmetic shift right by a vector amount.
    pub fn ashr_bv(&self, amount: &Bv) -> Bv {
        match amount.try_to_u64() {
            Some(a) if a < self.width as u64 => self.ashr(a as u32),
            _ => self.ashr(self.width),
        }
    }

    /// Reduction AND (`&x` in Verilog): true iff every bit is one.
    pub fn reduce_and(&self) -> bool {
        self.is_ones()
    }

    /// Reduction OR (`|x` in Verilog): true iff any bit is one.
    pub fn reduce_or(&self) -> bool {
        !self.is_zero()
    }

    /// Reduction XOR (`^x` in Verilog): the parity of the value.
    pub fn reduce_xor(&self) -> bool {
        self.count_ones() % 2 == 1
    }
}

macro_rules! binop_impls {
    ($trait_:ident, $method:ident, $inherent:ident) => {
        impl ops::$trait_ for &Bv {
            type Output = Bv;
            fn $method(self, rhs: &Bv) -> Bv {
                self.$inherent(rhs)
            }
        }
        impl ops::$trait_ for Bv {
            type Output = Bv;
            fn $method(self, rhs: Bv) -> Bv {
                self.$inherent(&rhs)
            }
        }
    };
}

binop_impls!(BitAnd, bitand, and);
binop_impls!(BitOr, bitor, or);
binop_impls!(BitXor, bitxor, xor);
binop_impls!(Add, add, wrapping_add);
binop_impls!(Sub, sub, wrapping_sub);
binop_impls!(Mul, mul, wrapping_mul);

impl ops::Not for &Bv {
    type Output = Bv;
    fn not(self) -> Bv {
        Bv::not(self)
    }
}

impl ops::Not for Bv {
    type Output = Bv;
    fn not(self) -> Bv {
        Bv::not(&self)
    }
}

impl ops::Neg for &Bv {
    type Output = Bv;
    fn neg(self) -> Bv {
        self.wrapping_neg()
    }
}

impl ops::Neg for Bv {
    type Output = Bv;
    fn neg(self) -> Bv {
        self.wrapping_neg()
    }
}

impl ops::Shl<u32> for &Bv {
    type Output = Bv;
    fn shl(self, amount: u32) -> Bv {
        Bv::shl(self, amount)
    }
}

impl ops::Shr<u32> for &Bv {
    type Output = Bv;
    fn shr(self, amount: u32) -> Bv {
        self.lshr(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_ops() {
        let a = Bv::from_u64(8, 0b1100_1010);
        let b = Bv::from_u64(8, 0b1010_0110);
        assert_eq!(a.and(&b).to_u64(), 0b1000_0010);
        assert_eq!(a.or(&b).to_u64(), 0b1110_1110);
        assert_eq!(a.xor(&b).to_u64(), 0b0110_1100);
        assert_eq!(a.not().to_u64(), 0b0011_0101);
    }

    #[test]
    fn operator_overloads() {
        let a = Bv::from_u64(8, 0xF0);
        let b = Bv::from_u64(8, 0x0F);
        assert_eq!((&a | &b).to_u64(), 0xFF);
        assert_eq!((&a & &b).to_u64(), 0);
        assert_eq!((&a ^ &a).to_u64(), 0);
        assert_eq!((!&b).to_u64(), 0xF0);
        assert_eq!((&a + &b).to_u64(), 0xFF);
        assert_eq!((-&Bv::from_u64(8, 1)).to_u64(), 0xFF);
        assert_eq!((&a >> 4).to_u64(), 0x0F);
        assert_eq!((&b << 4).to_u64(), 0xF0);
    }

    #[test]
    fn shl_drops_top_bits() {
        let v = Bv::from_u64(8, 0b1000_0001);
        assert_eq!(v.shl(1).to_u64(), 0b0000_0010);
        assert_eq!(v.shl(8).to_u64(), 0);
        assert_eq!(v.shl(0), v);
    }

    #[test]
    fn shl_across_limbs() {
        let v = Bv::from_u64(128, 1);
        assert!(v.shl(100).bit(100));
        assert_eq!(v.shl(100).count_ones(), 1);
        assert_eq!(v.shl(64).to_u128(), 1u128 << 64);
        assert_eq!(v.shl(128), Bv::zero(128));
    }

    #[test]
    fn shr_logical_vs_arith() {
        let v = Bv::from_i64(8, -64); // 0b1100_0000
        assert_eq!(v.lshr(4).to_u64(), 0b0000_1100);
        assert_eq!(v.ashr(4).to_i64(), -4);
        assert_eq!(v.ashr(100).to_i64(), -1);
        assert_eq!(v.lshr(100).to_u64(), 0);
        let pos = Bv::from_u64(8, 0x40);
        assert_eq!(pos.ashr(100), Bv::zero(8));
    }

    #[test]
    fn dynamic_shifts() {
        let v = Bv::from_u64(8, 1);
        assert_eq!(v.shl_bv(&Bv::from_u64(4, 3)).to_u64(), 8);
        assert_eq!(v.shl_bv(&Bv::from_u64(8, 200)).to_u64(), 0);
        let huge = Bv::ones(128); // amount that doesn't fit u64
        assert_eq!(v.shl_bv(&huge).to_u64(), 0);
        assert_eq!(Bv::from_i64(8, -2).ashr_bv(&huge).to_i64(), -1);
    }

    #[test]
    fn reductions() {
        assert!(Bv::ones(70).reduce_and());
        assert!(!Bv::from_u64(70, 1).reduce_and());
        assert!(Bv::from_u64(70, 2).reduce_or());
        assert!(!Bv::zero(70).reduce_or());
        assert!(Bv::from_u64(8, 0b0111).reduce_xor());
        assert!(!Bv::from_u64(8, 0b0110).reduce_xor());
    }

    #[test]
    fn shift_slice_identity() {
        let v = Bv::from_u128(100, 0x1234_5678_9ABC_DEF0_1234);
        let ones = Bv::ones(100);
        for s in [0u32, 1, 17, 63, 64, 65, 99] {
            // lshr-then-shl clears the low s bits; shl-then-lshr the high.
            assert_eq!(v.lshr(s).shl(s), v.and(&ones.shl(s)));
            assert_eq!(v.shl(s).lshr(s), v.and(&ones.lshr(s)));
        }
    }
}
