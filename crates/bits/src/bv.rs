//! The core [`Bv`] representation: constructors, accessors, structural ops.

/// An arbitrary-width bit vector with hardware (Verilog-like) semantics.
///
/// A `Bv` is a vector of `width` bits stored little-endian in 64-bit limbs.
/// Bits at positions `>= width` are always zero (a maintained invariant), so
/// structural equality is value equality *including the width*: `8'h01` and
/// `9'h001` are **not** equal.
///
/// Arithmetic is modular (wraps at `2^width`); signedness is an
/// interpretation chosen per operation (`scmp`, `ashr`, `sext`, ...), exactly
/// as in an HDL, rather than a property of the type.
///
/// # Example
///
/// ```
/// use dfv_bits::Bv;
///
/// let x = Bv::from_u64(12, 0xABC);
/// assert_eq!(x.slice(11, 8).to_u64(), 0xA);
/// assert_eq!(x.concat(&Bv::from_u64(4, 0xD)).to_u64(), 0xABCD);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bv {
    pub(crate) width: u32,
    /// Little-endian limbs; `limbs.len() == ceil(width / 64)`, excess bits 0.
    pub(crate) limbs: LimbVec,
}

pub(crate) fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Inline-or-heap limb storage. Single-limb values (width ≤ 64 — the
/// overwhelmingly common case in simulation harness traffic) live inline
/// with no heap allocation; wider values fall back to a `Vec`. The variant
/// is canonical by length (`len == 1` is always `One`), so the derived
/// equality and hash agree with slice equality for equal-width values.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum LimbVec {
    One([u64; 1]),
    Many(Vec<u64>),
}

impl LimbVec {
    #[inline]
    pub(crate) fn filled(fill: u64, n: usize) -> Self {
        if n == 1 {
            LimbVec::One([fill])
        } else {
            LimbVec::Many(vec![fill; n])
        }
    }

    #[inline]
    pub(crate) fn from_slice(s: &[u64]) -> Self {
        if s.len() == 1 {
            LimbVec::One([s[0]])
        } else {
            LimbVec::Many(s.to_vec())
        }
    }
}

impl std::ops::Deref for LimbVec {
    type Target = [u64];
    #[inline]
    fn deref(&self) -> &[u64] {
        match self {
            LimbVec::One(a) => a,
            LimbVec::Many(v) => v,
        }
    }
}

impl std::ops::DerefMut for LimbVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        match self {
            LimbVec::One(a) => a,
            LimbVec::Many(v) => v,
        }
    }
}

impl<'a> IntoIterator for &'a LimbVec {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &'a mut LimbVec {
    type Item = &'a mut u64;
    type IntoIter = std::slice::IterMut<'a, u64>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

impl Bv {
    /// Creates the zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "bit vector width must be at least 1");
        Bv {
            width,
            limbs: LimbVec::filled(0, limbs_for(width)),
        }
    }

    /// Creates the all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn ones(width: u32) -> Self {
        let mut v = Bv {
            width,
            limbs: LimbVec::filled(u64::MAX, limbs_for(width)),
        };
        assert!(width > 0, "bit vector width must be at least 1");
        v.mask_top();
        v
    }

    /// Creates a one-bit vector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Bv {
            width: 1,
            limbs: LimbVec::One([b as u64]),
        }
    }

    /// Creates a `width`-bit vector holding `value` truncated modulo
    /// `2^width` (zero-extended if `width > 64`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_u64(width: u32, value: u64) -> Self {
        let mut v = Bv::zero(width);
        v.limbs[0] = value;
        v.mask_top();
        v
    }

    /// Creates a `width`-bit vector holding `value` truncated modulo
    /// `2^width` (zero-extended above 128 bits).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_u128(width: u32, value: u128) -> Self {
        let mut v = Bv::zero(width);
        v.limbs[0] = value as u64;
        if v.limbs.len() > 1 {
            v.limbs[1] = (value >> 64) as u64;
        }
        v.mask_top();
        v
    }

    /// Creates a `width`-bit vector holding the two's-complement encoding of
    /// `value`, sign-extended (for `width > 64`) or truncated (for
    /// `width < 64`) as needed.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_i64(width: u32, value: i64) -> Self {
        let fill = if value < 0 { u64::MAX } else { 0 };
        let mut v = Bv {
            width,
            limbs: LimbVec::filled(fill, limbs_for(width)),
        };
        assert!(width > 0, "bit vector width must be at least 1");
        v.limbs[0] = value as u64;
        v.mask_top();
        v
    }

    /// Creates a vector from bits given LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits_lsb(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "bit vector width must be at least 1");
        let mut v = Bv::zero(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.limbs[i / 64] |= 1u64 << (i % 64);
            }
        }
        v
    }

    /// Creates a `width`-bit vector from raw little-endian limbs, masking
    /// any bits at or above `width`. The slice must hold exactly
    /// `ceil(width / 64)` limbs — the counterpart of [`Bv::limbs`], used by
    /// engines that keep values in flat limb arenas (see [`crate::limbs`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `limbs.len() != ceil(width / 64)`.
    pub fn from_limbs(width: u32, limbs: &[u64]) -> Self {
        assert!(width > 0, "bit vector width must be at least 1");
        assert_eq!(
            limbs.len(),
            limbs_for(width),
            "limb count {} does not match width {width}",
            limbs.len()
        );
        let mut v = Bv {
            width,
            limbs: LimbVec::from_slice(limbs),
        };
        v.mask_top();
        v
    }

    /// The raw little-endian limbs (`ceil(width / 64)` of them; bits at or
    /// above `width` are zero). The counterpart of [`Bv::from_limbs`].
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Re-establishes the invariant that bits above `width` are zero.
    pub(crate) fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    /// The width of this vector in bits. Always at least 1.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn with_bit(&self, i: u32, value: bool) -> Bv {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let mut v = self.clone();
        let mask = 1u64 << (i % 64);
        if value {
            v.limbs[(i / 64) as usize] |= mask;
        } else {
            v.limbs[(i / 64) as usize] &= !mask;
        }
        v
    }

    /// The most significant bit — the sign bit under a signed interpretation.
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Whether every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Whether every bit is one.
    pub fn is_ones(&self) -> bool {
        *self == Bv::ones(self.width)
    }

    /// The number of one bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }

    /// The value as a `u64`, if it fits (i.e. all bits above 63 are zero).
    pub fn try_to_u64(&self) -> Option<u64> {
        if self.limbs[1..].iter().all(|&l| l == 0) {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// The value as a `u64`, truncating any bits above 63.
    ///
    /// This is the common accessor for vectors known to be at most 64 bits
    /// wide; use [`Bv::try_to_u64`] when truncation would be a bug.
    pub fn to_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// The value as a `u128`, truncating any bits above 127.
    pub fn to_u128(&self) -> u128 {
        let lo = self.limbs[0] as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        (hi << 64) | lo
    }

    /// The value under a signed (two's-complement) interpretation, as `i64`.
    ///
    /// Bits above 63 are ignored except through the sign: the value is first
    /// sign-extended from `width` (for narrow vectors) and then truncated to
    /// 64 bits (for wide ones).
    pub fn to_i64(&self) -> i64 {
        if self.width >= 64 {
            self.limbs[0] as i64
        } else {
            let raw = self.limbs[0];
            let shift = 64 - self.width;
            ((raw << shift) as i64) >> shift
        }
    }

    /// Zero-extends (or returns a copy, if `new_width == width`).
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`; use [`Bv::trunc`] to narrow.
    pub fn zext(&self, new_width: u32) -> Bv {
        assert!(
            new_width >= self.width,
            "zext target width {new_width} narrower than {}",
            self.width
        );
        let mut v = Bv::zero(new_width);
        v.limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        v
    }

    /// Sign-extends (or returns a copy, if `new_width == width`).
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`; use [`Bv::trunc`] to narrow.
    pub fn sext(&self, new_width: u32) -> Bv {
        assert!(
            new_width >= self.width,
            "sext target width {new_width} narrower than {}",
            self.width
        );
        if !self.msb() {
            return self.zext(new_width);
        }
        let mut v = Bv::ones(new_width);
        // Copy the low limbs, then re-set the fill bits above `self.width`.
        for (i, &l) in self.limbs.iter().enumerate() {
            v.limbs[i] = l;
        }
        let start = self.width;
        for i in start..new_width.min(((self.limbs.len() as u32) * 64).min(new_width)) {
            v.limbs[(i / 64) as usize] |= 1u64 << (i % 64);
        }
        // Limbs beyond the original are already all-ones from `ones`.
        v.mask_top();
        v
    }

    /// Truncates to the low `new_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero or greater than `self.width()`.
    pub fn trunc(&self, new_width: u32) -> Bv {
        assert!(
            new_width <= self.width,
            "trunc target width {new_width} wider than {}",
            self.width
        );
        self.slice(new_width - 1, 0)
    }

    /// Resizes, zero-extending or truncating as needed.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn resize_zext(&self, new_width: u32) -> Bv {
        if new_width >= self.width {
            self.zext(new_width)
        } else {
            self.trunc(new_width)
        }
    }

    /// Resizes, sign-extending or truncating as needed.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn resize_sext(&self, new_width: u32) -> Bv {
        if new_width >= self.width {
            self.sext(new_width)
        } else {
            self.trunc(new_width)
        }
    }

    /// The inclusive part-select `self[hi:lo]`, a vector of width
    /// `hi - lo + 1` (Verilog `x[hi:lo]`).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    pub fn slice(&self, hi: u32, lo: u32) -> Bv {
        assert!(hi >= lo, "slice hi {hi} below lo {lo}");
        assert!(
            hi < self.width,
            "slice hi {hi} out of range for width {}",
            self.width
        );
        let out_width = hi - lo + 1;
        let mut v = Bv::zero(out_width);
        let limb_off = (lo / 64) as usize;
        let bit_off = lo % 64;
        for i in 0..v.limbs.len() {
            let lo_part = self.limbs.get(limb_off + i).copied().unwrap_or(0) >> bit_off;
            let hi_part = if bit_off == 0 {
                0
            } else {
                self.limbs.get(limb_off + i + 1).copied().unwrap_or(0) << (64 - bit_off)
            };
            v.limbs[i] = lo_part | hi_part;
        }
        v.mask_top();
        v
    }

    /// Concatenation with `self` as the **most** significant part —
    /// Verilog `{self, low}`.
    pub fn concat(&self, low: &Bv) -> Bv {
        let mut v = low.zext(self.width + low.width);
        for i in 0..self.width {
            if self.bit(i) {
                let pos = low.width + i;
                v.limbs[(pos / 64) as usize] |= 1u64 << (pos % 64);
            }
        }
        v
    }

    /// Replication — Verilog `{n{self}}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn repeat(&self, n: u32) -> Bv {
        assert!(n > 0, "replication count must be at least 1");
        let mut out = self.clone();
        for _ in 1..n {
            out = out.concat(self);
        }
        out
    }

    /// Iterates over the bits LSB-first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        let z = Bv::zero(130);
        assert_eq!(z.width(), 130);
        assert!(z.is_zero());
        let o = Bv::ones(130);
        assert!(o.is_ones());
        assert_eq!(o.count_ones(), 130);
        assert!(o.bit(129));
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_rejected() {
        let _ = Bv::zero(0);
    }

    #[test]
    fn from_u64_truncates() {
        let v = Bv::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), 0xF);
    }

    #[test]
    fn from_i64_sign_extends_wide() {
        let v = Bv::from_i64(100, -1);
        assert!(v.is_ones());
        assert_eq!(v.to_i64(), -1);
        let w = Bv::from_i64(100, -5);
        assert_eq!(w.to_i64(), -5);
    }

    #[test]
    fn from_i64_truncates_narrow() {
        let v = Bv::from_i64(4, -1);
        assert_eq!(v.to_u64(), 0xF);
        assert_eq!(v.to_i64(), -1);
    }

    #[test]
    fn width_is_part_of_identity() {
        assert_ne!(Bv::from_u64(8, 1), Bv::from_u64(9, 1));
        assert_eq!(Bv::from_u64(8, 1), Bv::from_u64(8, 1));
    }

    #[test]
    fn bit_accessors() {
        let v = Bv::from_u64(8, 0b1010_0001);
        assert!(v.bit(0));
        assert!(!v.bit(1));
        assert!(v.bit(7));
        assert!(v.msb());
        let w = v.with_bit(1, true).with_bit(0, false);
        assert_eq!(w.to_u64(), 0b1010_0010);
    }

    #[test]
    fn to_i64_narrow_and_wide() {
        assert_eq!(Bv::from_u64(8, 0x80).to_i64(), -128);
        assert_eq!(Bv::from_u64(8, 0x7F).to_i64(), 127);
        assert_eq!(Bv::from_i64(128, -42).to_i64(), -42);
    }

    #[test]
    fn try_to_u64_detects_overflow() {
        let big = Bv::ones(65);
        assert_eq!(big.try_to_u64(), None);
        assert_eq!(big.trunc(64).try_to_u64(), Some(u64::MAX));
    }

    #[test]
    fn zext_sext() {
        let v = Bv::from_u64(4, 0b1010);
        assert_eq!(v.zext(8).to_u64(), 0b0000_1010);
        assert_eq!(v.sext(8).to_u64(), 0b1111_1010);
        assert_eq!(v.sext(8).to_i64(), -6);
        let pos = Bv::from_u64(4, 0b0101);
        assert_eq!(pos.sext(8).to_u64(), 0b0101);
    }

    #[test]
    fn sext_across_limbs() {
        let v = Bv::from_i64(8, -3);
        let w = v.sext(200);
        assert_eq!(w.to_i64(), -3);
        assert_eq!(w.count_ones(), 200 - 2 + 1); // all ones except bits 0 and 1 pattern of -3 = ...11101
        assert!(w.bit(199));
    }

    #[test]
    fn slice_basic() {
        let v = Bv::from_u64(16, 0xABCD);
        assert_eq!(v.slice(15, 12).to_u64(), 0xA);
        assert_eq!(v.slice(11, 8).to_u64(), 0xB);
        assert_eq!(v.slice(7, 0).to_u64(), 0xCD);
        assert_eq!(v.slice(15, 0), v);
        assert_eq!(v.slice(3, 3).width(), 1);
    }

    #[test]
    fn slice_across_limbs() {
        let v = Bv::from_u128(128, 0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
        assert_eq!(v.slice(95, 32).to_u64(), 0x89AB_CDEF_0011_2233);
        assert_eq!(v.slice(127, 64).to_u64(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range() {
        let _ = Bv::zero(8).slice(8, 0);
    }

    #[test]
    fn concat_order_matches_verilog() {
        let a = Bv::from_u64(4, 0xA);
        let b = Bv::from_u64(8, 0xBC);
        let v = a.concat(&b); // {a, b}
        assert_eq!(v.width(), 12);
        assert_eq!(v.to_u64(), 0xABC);
    }

    #[test]
    fn concat_slice_roundtrip() {
        let v = Bv::from_u128(96, 0x1234_5678_9ABC_DEF0_1357_9BDF);
        let hi = v.slice(95, 40);
        let lo = v.slice(39, 0);
        assert_eq!(hi.concat(&lo), v);
    }

    #[test]
    fn repeat_builds_patterns() {
        let v = Bv::from_u64(2, 0b10);
        assert_eq!(v.repeat(4).to_u64(), 0b1010_1010);
        assert_eq!(v.repeat(1), v);
    }

    #[test]
    fn iter_bits_lsb_first() {
        let v = Bv::from_u64(4, 0b0011);
        let bits: Vec<bool> = v.iter_bits().collect();
        assert_eq!(bits, vec![true, true, false, false]);
        assert_eq!(Bv::from_bits_lsb(&bits), v);
    }
}
