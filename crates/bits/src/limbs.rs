//! Allocation-free operations on raw limb slices.
//!
//! A value of width `w` is `ceil(w / 64)` little-endian `u64` limbs with
//! every bit at or above `w` zero — exactly the [`Bv`](crate::Bv)
//! representation, but borrowed from a caller-owned arena instead of an
//! owned `Vec`. Simulation engines that keep all signal values in one
//! flat arena use these helpers to evaluate multi-limb operators in
//! place, without a heap allocation per operation; [`Bv`](crate::Bv)
//! itself remains the semantic oracle (every helper here is
//! differential-tested against it).
//!
//! All functions require `dst.len() == ceil(width / 64)` (and the
//! matching invariant for operands) and re-establish the excess-bit
//! invariant on the destination. Operand aliasing with `dst` is allowed
//! only where documented.

/// The number of limbs a `width`-bit value occupies.
pub fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Masks bits at or above `width` in the top limb of `dst`.
pub fn mask_top(dst: &mut [u64], width: u32) {
    let rem = width % 64;
    if rem != 0 {
        let last = dst.len() - 1;
        dst[last] &= (1u64 << rem) - 1;
    }
}

/// Copies `src` into `dst` (same width; slices must be equal length).
pub fn copy(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

/// Whether every limb is zero.
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Whether all `width` bits are one.
pub fn is_ones(a: &[u64], width: u32) -> bool {
    let rem = width % 64;
    let full = if rem == 0 { a.len() } else { a.len() - 1 };
    a[..full].iter().all(|&l| l == u64::MAX) && (rem == 0 || a[a.len() - 1] == (1u64 << rem) - 1)
}

/// The parity (reduction XOR) of all bits.
pub fn red_xor(a: &[u64]) -> bool {
    a.iter().map(|l| l.count_ones()).sum::<u32>() % 2 == 1
}

/// The most significant (sign) bit of a `width`-bit value.
pub fn msb(a: &[u64], width: u32) -> bool {
    let i = width - 1;
    (a[(i / 64) as usize] >> (i % 64)) & 1 == 1
}

/// `dst = a & b` (equal widths; `a`/`b` may alias `dst`).
pub fn and(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for i in 0..dst.len() {
        dst[i] = a[i] & b[i];
    }
}

/// `dst = a | b` (equal widths; `a`/`b` may alias `dst`).
pub fn or(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for i in 0..dst.len() {
        dst[i] = a[i] | b[i];
    }
}

/// `dst = a ^ b` (equal widths; `a`/`b` may alias `dst`).
pub fn xor(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for i in 0..dst.len() {
        dst[i] = a[i] ^ b[i];
    }
}

/// `dst = !a` at the given width (`a` may alias `dst`).
pub fn not(dst: &mut [u64], a: &[u64], width: u32) {
    for i in 0..dst.len() {
        dst[i] = !a[i];
    }
    mask_top(dst, width);
}

/// `dst = (a + b) mod 2^width` (equal widths; `a`/`b` may alias `dst`).
pub fn add(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
    let mut carry = 0u64;
    for i in 0..dst.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        dst[i] = s2;
        carry = (c1 | c2) as u64;
    }
    mask_top(dst, width);
}

/// `dst = (a - b) mod 2^width` (equal widths; `a`/`b` may alias `dst`).
pub fn sub(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
    let mut borrow = 0u64;
    for i in 0..dst.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        dst[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    mask_top(dst, width);
}

/// `dst = (-a) mod 2^width` (`a` may alias `dst`).
pub fn neg(dst: &mut [u64], a: &[u64], width: u32) {
    let mut carry = 1u64;
    for i in 0..dst.len() {
        let (s, c) = (!a[i]).overflowing_add(carry);
        dst[i] = s;
        carry = c as u64;
    }
    mask_top(dst, width);
}

/// Unsigned `a < b` (equal widths).
pub fn ult(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// Signed (two's-complement) `a < b` at the given width (equal widths).
pub fn slt(a: &[u64], b: &[u64], width: u32) -> bool {
    match (msb(a, width), msb(b, width)) {
        (true, false) => true,
        (false, true) => false,
        _ => ult(a, b),
    }
}

/// Zero-extends `src` (of `src_width`) into `dst` (of a width at least
/// `src_width`; `dst` may be longer than `src`).
pub fn zext(dst: &mut [u64], src: &[u64]) {
    dst[..src.len()].copy_from_slice(src);
    dst[src.len()..].fill(0);
}

/// Sign-extends `src` (of `src_width`) into `dst` (of `dst_width >=
/// src_width`).
pub fn sext(dst: &mut [u64], src: &[u64], src_width: u32, dst_width: u32) {
    if !msb(src, src_width) {
        zext(dst, src);
        return;
    }
    dst[..src.len()].copy_from_slice(src);
    // Fill bits src_width.. with ones: the partial top limb of src, then
    // whole limbs above it.
    let rem = src_width % 64;
    if rem != 0 {
        dst[src.len() - 1] |= !((1u64 << rem) - 1);
    }
    dst[src.len()..].fill(u64::MAX);
    mask_top(dst, dst_width);
}

/// The inclusive part-select `src[hi:lo]` into `dst` (of width
/// `hi - lo + 1`).
pub fn slice(dst: &mut [u64], src: &[u64], hi: u32, lo: u32) {
    let out_width = hi - lo + 1;
    let limb_off = (lo / 64) as usize;
    let bit_off = lo % 64;
    for (i, d) in dst.iter_mut().enumerate() {
        let lo_part = src.get(limb_off + i).copied().unwrap_or(0) >> bit_off;
        let hi_part = if bit_off == 0 {
            0
        } else {
            src.get(limb_off + i + 1).copied().unwrap_or(0) << (64 - bit_off)
        };
        *d = lo_part | hi_part;
    }
    mask_top(dst, out_width);
}

/// Concatenation `{hi, lo}` into `dst` (of width `hi_width + lo_width`;
/// `hi` becomes the most significant bits).
pub fn concat(dst: &mut [u64], hi: &[u64], hi_width: u32, lo: &[u64], lo_width: u32) {
    zext(dst, lo);
    let limb_off = (lo_width / 64) as usize;
    let bit_off = lo_width % 64;
    for (i, &h) in hi.iter().enumerate() {
        dst[limb_off + i] |= h << bit_off;
        if bit_off != 0 && limb_off + i + 1 < dst.len() {
            dst[limb_off + i + 1] |= h >> (64 - bit_off);
        }
    }
    mask_top(dst, hi_width + lo_width);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bv, SplitMix64};

    fn random_bv(rng: &mut SplitMix64, width: u32) -> Bv {
        let bits: Vec<bool> = (0..width).map(|_| rng.next_u64() & 1 == 1).collect();
        Bv::from_bits_lsb(&bits)
    }

    const WIDTHS: [u32; 8] = [1, 7, 63, 64, 65, 127, 128, 200];

    #[test]
    fn binary_ops_match_bv_oracle() {
        let mut rng = SplitMix64::new(0xB175);
        for &w in &WIDTHS {
            for _ in 0..50 {
                let a = random_bv(&mut rng, w);
                let b = random_bv(&mut rng, w);
                let mut dst = vec![0u64; limbs_for(w)];
                for (f, oracle) in [
                    (and as fn(&mut [u64], &[u64], &[u64]), a.and(&b)),
                    (or, a.or(&b)),
                    (xor, a.xor(&b)),
                ] {
                    f(&mut dst, a.limbs(), b.limbs());
                    assert_eq!(Bv::from_limbs(w, &dst), oracle, "w={w}");
                }
                add(&mut dst, a.limbs(), b.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.wrapping_add(&b), "add w={w}");
                sub(&mut dst, a.limbs(), b.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.wrapping_sub(&b), "sub w={w}");
                assert_eq!(ult(a.limbs(), b.limbs()), a.ult(&b), "ult w={w}");
                assert_eq!(slt(a.limbs(), b.limbs(), w), a.slt(&b), "slt w={w}");
            }
        }
    }

    #[test]
    fn unary_ops_match_bv_oracle() {
        let mut rng = SplitMix64::new(0xCAFE);
        for &w in &WIDTHS {
            for _ in 0..50 {
                let a = random_bv(&mut rng, w);
                let mut dst = vec![0u64; limbs_for(w)];
                not(&mut dst, a.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.not(), "not w={w}");
                neg(&mut dst, a.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.wrapping_neg(), "neg w={w}");
                assert_eq!(is_zero(a.limbs()), a.is_zero());
                assert_eq!(is_ones(a.limbs(), w), a.is_ones());
                assert_eq!(red_xor(a.limbs()), a.reduce_xor());
                assert_eq!(msb(a.limbs(), w), a.msb());
            }
        }
    }

    #[test]
    fn extend_slice_concat_match_bv_oracle() {
        let mut rng = SplitMix64::new(0x5EED);
        for &w in &WIDTHS {
            for _ in 0..50 {
                let a = random_bv(&mut rng, w);
                let wide = w + 1 + (rng.next_u64() % 130) as u32;
                let mut dst = vec![0u64; limbs_for(wide)];
                zext(&mut dst, a.limbs());
                assert_eq!(Bv::from_limbs(wide, &dst), a.zext(wide), "zext {w}->{wide}");
                sext(&mut dst, a.limbs(), w, wide);
                assert_eq!(Bv::from_limbs(wide, &dst), a.sext(wide), "sext {w}->{wide}");

                let hi = (rng.next_u64() % w as u64) as u32;
                let lo = (rng.next_u64() % (hi + 1) as u64) as u32;
                let mut dst = vec![0u64; limbs_for(hi - lo + 1)];
                slice(&mut dst, a.limbs(), hi, lo);
                assert_eq!(
                    Bv::from_limbs(hi - lo + 1, &dst),
                    a.slice(hi, lo),
                    "slice {w}[{hi}:{lo}]"
                );

                let b = random_bv(&mut rng, wide);
                let mut dst = vec![0u64; limbs_for(w + wide)];
                concat(&mut dst, a.limbs(), w, b.limbs(), wide);
                assert_eq!(
                    Bv::from_limbs(w + wide, &dst),
                    a.concat(&b),
                    "concat {w}+{wide}"
                );
            }
        }
    }

    #[test]
    fn from_limbs_round_trips_and_masks() {
        let v = Bv::from_limbs(7, &[0xFFFF]);
        assert_eq!(v, Bv::ones(7));
        let w = Bv::from_u128(100, 0x0123_4567_89AB_CDEF_0011_2233);
        assert_eq!(Bv::from_limbs(100, w.limbs()), w);
    }
}
