//! Allocation-free operations on raw limb slices.
//!
//! A value of width `w` is `ceil(w / 64)` little-endian `u64` limbs with
//! every bit at or above `w` zero — exactly the [`Bv`](crate::Bv)
//! representation, but borrowed from a caller-owned arena instead of an
//! owned `Vec`. Simulation engines that keep all signal values in one
//! flat arena use these helpers to evaluate multi-limb operators in
//! place, without a heap allocation per operation; [`Bv`](crate::Bv)
//! itself remains the semantic oracle (every helper here is
//! differential-tested against it).
//!
//! All functions require `dst.len() == ceil(width / 64)` (and the
//! matching invariant for operands) and re-establish the excess-bit
//! invariant on the destination. Every precondition is checked with a
//! `debug_assert!` so a violating caller fails loudly in test builds;
//! release builds additionally index through [`limbs_for`] (never
//! through `slice.len()`) so an over-long slice cannot silently shift
//! which limb gets masked or compared. Operand aliasing with `dst` is
//! allowed only where documented on each helper — the batched lane
//! engine hands out disjoint sub-slices of one arena, so the contract
//! must be explicit per function.

/// The number of limbs a `width`-bit value occupies. Zero-width values
/// occupy zero limbs.
pub fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Masks bits at or above `width` in the top limb of `dst`.
///
/// Contract: `dst.len() == limbs_for(width)`. `width == 0` (empty `dst`)
/// is a no-op. Aliasing: unary in-place by construction.
pub fn mask_top(dst: &mut [u64], width: u32) {
    debug_assert_eq!(dst.len(), limbs_for(width), "mask_top: dst/width mismatch");
    let rem = width % 64;
    if rem != 0 {
        // Index via limbs_for, not dst.len(): on a (contract-violating)
        // over-long slice the top *value* limb must be masked, not the
        // slice's last limb.
        dst[limbs_for(width) - 1] &= (1u64 << rem) - 1;
    }
}

/// Copies `src` into `dst` (same width; slices must be equal length).
///
/// Aliasing: `src` must not alias `dst` (distinct borrows).
pub fn copy(dst: &mut [u64], src: &[u64]) {
    dst.copy_from_slice(src);
}

/// Whether every limb is zero. Vacuously true for an empty slice
/// (a zero-width value).
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Whether all `width` bits are one. Vacuously true for `width == 0`.
///
/// Contract: `a.len() == limbs_for(width)`. Only the `width` value bits
/// are inspected — computed from `width`, never from `a.len()`, so an
/// over-long slice cannot make a full value look partial.
pub fn is_ones(a: &[u64], width: u32) -> bool {
    debug_assert_eq!(a.len(), limbs_for(width), "is_ones: a/width mismatch");
    if width == 0 {
        return true;
    }
    let rem = width % 64;
    let n = limbs_for(width);
    let full = if rem == 0 { n } else { n - 1 };
    a[..full].iter().all(|&l| l == u64::MAX) && (rem == 0 || a[n - 1] == (1u64 << rem) - 1)
}

/// The parity (reduction XOR) of all bits.
pub fn red_xor(a: &[u64]) -> bool {
    a.iter().map(|l| l.count_ones()).sum::<u32>() % 2 == 1
}

/// The most significant (sign) bit of a `width`-bit value.
///
/// Contract: `width > 0` and `a.len() == limbs_for(width)`. A zero-width
/// value has no sign bit; release builds return `false` instead of
/// underflowing `width - 1` into an out-of-bounds index.
pub fn msb(a: &[u64], width: u32) -> bool {
    debug_assert!(width > 0, "msb: zero-width value has no sign bit");
    debug_assert_eq!(a.len(), limbs_for(width), "msb: a/width mismatch");
    if width == 0 {
        return false;
    }
    let i = width - 1;
    (a[(i / 64) as usize] >> (i % 64)) & 1 == 1
}

/// `dst = a & b` (equal widths; `a`/`b` may alias `dst`).
pub fn and(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len());
    for i in 0..dst.len() {
        dst[i] = a[i] & b[i];
    }
}

/// `dst = a | b` (equal widths; `a`/`b` may alias `dst`).
pub fn or(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len());
    for i in 0..dst.len() {
        dst[i] = a[i] | b[i];
    }
}

/// `dst = a ^ b` (equal widths; `a`/`b` may alias `dst`).
pub fn xor(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len());
    for i in 0..dst.len() {
        dst[i] = a[i] ^ b[i];
    }
}

/// `dst = !a` at the given width (`a` may alias `dst`).
pub fn not(dst: &mut [u64], a: &[u64], width: u32) {
    debug_assert!(a.len() == dst.len() && dst.len() == limbs_for(width));
    for i in 0..dst.len() {
        dst[i] = !a[i];
    }
    mask_top(dst, width);
}

/// `dst = (a + b) mod 2^width` (equal widths; `a`/`b` may alias `dst`).
pub fn add(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len() && dst.len() == limbs_for(width));
    let mut carry = 0u64;
    for i in 0..dst.len() {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        dst[i] = s2;
        carry = (c1 | c2) as u64;
    }
    mask_top(dst, width);
}

/// `dst = (a - b) mod 2^width` (equal widths; `a`/`b` may alias `dst`).
pub fn sub(dst: &mut [u64], a: &[u64], b: &[u64], width: u32) {
    debug_assert!(a.len() == dst.len() && b.len() == dst.len() && dst.len() == limbs_for(width));
    let mut borrow = 0u64;
    for i in 0..dst.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        dst[i] = d2;
        borrow = (b1 | b2) as u64;
    }
    mask_top(dst, width);
}

/// `dst = (-a) mod 2^width` (`a` may alias `dst`).
pub fn neg(dst: &mut [u64], a: &[u64], width: u32) {
    debug_assert!(a.len() == dst.len() && dst.len() == limbs_for(width));
    let mut carry = 1u64;
    for i in 0..dst.len() {
        let (s, c) = (!a[i]).overflowing_add(carry);
        dst[i] = s;
        carry = c as u64;
    }
    mask_top(dst, width);
}

/// Unsigned `a < b` (equal widths).
pub fn ult(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

/// Signed (two's-complement) `a < b` at the given width (equal widths).
pub fn slt(a: &[u64], b: &[u64], width: u32) -> bool {
    match (msb(a, width), msb(b, width)) {
        (true, false) => true,
        (false, true) => false,
        _ => ult(a, b),
    }
}

/// Zero-extends `src` (of `src_width`) into `dst` (of a width at least
/// `src_width`; `dst` may be longer than `src`).
///
/// Aliasing: `src` must not alias `dst` (distinct borrows).
pub fn zext(dst: &mut [u64], src: &[u64]) {
    debug_assert!(dst.len() >= src.len());
    dst[..src.len()].copy_from_slice(src);
    dst[src.len()..].fill(0);
}

/// Sign-extends `src` (of `src_width`) into `dst` (of `dst_width >=
/// src_width`).
///
/// Aliasing: `src` must not alias `dst` (distinct borrows).
pub fn sext(dst: &mut [u64], src: &[u64], src_width: u32, dst_width: u32) {
    debug_assert!(dst_width >= src_width && src_width > 0);
    debug_assert!(src.len() == limbs_for(src_width) && dst.len() == limbs_for(dst_width));
    if !msb(src, src_width) {
        zext(dst, src);
        return;
    }
    dst[..src.len()].copy_from_slice(src);
    // Fill bits src_width.. with ones: the partial top limb of src, then
    // whole limbs above it.
    let rem = src_width % 64;
    if rem != 0 {
        dst[src.len() - 1] |= !((1u64 << rem) - 1);
    }
    dst[src.len()..].fill(u64::MAX);
    mask_top(dst, dst_width);
}

/// The inclusive part-select `src[hi:lo]` into `dst` (of width
/// `hi - lo + 1`).
///
/// Aliasing: `src` must not alias `dst` (distinct borrows).
pub fn slice(dst: &mut [u64], src: &[u64], hi: u32, lo: u32) {
    debug_assert!(hi >= lo);
    debug_assert_eq!(dst.len(), limbs_for(hi - lo + 1));
    let out_width = hi - lo + 1;
    let limb_off = (lo / 64) as usize;
    let bit_off = lo % 64;
    for (i, d) in dst.iter_mut().enumerate() {
        let lo_part = src.get(limb_off + i).copied().unwrap_or(0) >> bit_off;
        let hi_part = if bit_off == 0 {
            0
        } else {
            src.get(limb_off + i + 1).copied().unwrap_or(0) << (64 - bit_off)
        };
        *d = lo_part | hi_part;
    }
    mask_top(dst, out_width);
}

/// Concatenation `{hi, lo}` into `dst` (of width `hi_width + lo_width`;
/// `hi` becomes the most significant bits).
///
/// Aliasing: `hi`/`lo` must not alias `dst` (distinct borrows).
pub fn concat(dst: &mut [u64], hi: &[u64], hi_width: u32, lo: &[u64], lo_width: u32) {
    debug_assert!(hi.len() == limbs_for(hi_width) && lo.len() == limbs_for(lo_width));
    debug_assert_eq!(dst.len(), limbs_for(hi_width + lo_width));
    zext(dst, lo);
    let limb_off = (lo_width / 64) as usize;
    let bit_off = lo_width % 64;
    for (i, &h) in hi.iter().enumerate() {
        dst[limb_off + i] |= h << bit_off;
        if bit_off != 0 && limb_off + i + 1 < dst.len() {
            dst[limb_off + i + 1] |= h >> (64 - bit_off);
        }
    }
    mask_top(dst, hi_width + lo_width);
}

// ---------------------------------------------------------------------
// Lane-transposed ("bit-sliced") scenario groups.
//
// A lane group packs LANES independent scenarios of one `width`-bit
// signal into `width` limbs: limb `i` holds bit `i` of the signal, one
// bit per scenario lane (`slices[i] >> lane & 1`). Bitwise operators
// then evaluate all 64 scenarios with one limb op per signal bit — the
// batched-simulation representation (ROADMAP: "evaluate 64 scenarios
// per instruction").

/// The number of scenario lanes a lane-transposed group packs: one per
/// bit of a `u64` limb.
pub const LANES: usize = 64;

/// In-place 64×64 bit-matrix transpose: afterwards, bit `j` of `m[i]`
/// is what bit `i` of `m[j]` was. Self-inverse. This is the bridge
/// between value form (one `u64` per lane) and lane form (one `u64` per
/// bit position); Hacker's Delight §7-3 generalized to 64×64.
pub fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32u32;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((m[k] >> j) ^ m[k + j as usize]) & mask;
            m[k] ^= t << j;
            m[k + j as usize] ^= t;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Writes value-form `src` (`limbs_for(width)` limbs) into lane `lane`
/// of the lane group `slices` (`width` limbs). Bits of `src` at or
/// above `width` must be zero (the usual excess-bit invariant).
///
/// Aliasing: `src` must not alias `slices` (distinct borrows).
pub fn lane_insert(slices: &mut [u64], width: u32, lane: usize, src: &[u64]) {
    debug_assert!(lane < LANES);
    debug_assert_eq!(slices.len(), width as usize);
    debug_assert_eq!(src.len(), limbs_for(width));
    let m = 1u64 << lane;
    for (i, s) in slices.iter_mut().enumerate() {
        let bit = (src[i / 64] >> (i % 64)) & 1;
        *s = (*s & !m) | (bit << lane);
    }
}

/// Reads lane `lane` of the lane group `slices` (`width` limbs) into
/// value-form `dst` (`limbs_for(width)` limbs; excess bits zeroed).
///
/// Aliasing: `slices` must not alias `dst` (distinct borrows).
pub fn lane_extract(slices: &[u64], width: u32, lane: usize, dst: &mut [u64]) {
    debug_assert!(lane < LANES);
    debug_assert_eq!(slices.len(), width as usize);
    debug_assert_eq!(dst.len(), limbs_for(width));
    dst.fill(0);
    for (i, s) in slices.iter().enumerate() {
        dst[i / 64] |= ((s >> lane) & 1) << (i % 64);
    }
}

/// Broadcasts value-form `src` into every lane of the group `slices`:
/// each bit slice becomes all-ones or all-zeros.
///
/// Aliasing: `src` must not alias `slices` (distinct borrows).
pub fn lane_splat(slices: &mut [u64], width: u32, src: &[u64]) {
    debug_assert_eq!(slices.len(), width as usize);
    debug_assert_eq!(src.len(), limbs_for(width));
    for (i, s) in slices.iter_mut().enumerate() {
        *s = if (src[i / 64] >> (i % 64)) & 1 == 1 {
            u64::MAX
        } else {
            0
        };
    }
}

/// Packs all 64 lanes at once: `lanes_flat` holds the per-lane values
/// lane-major (`LANES * limbs_for(width)` limbs, lane `l`'s value at
/// `lanes_flat[l * limbs_for(width)..]`), `dst` is the lane group
/// (`width` limbs). One 64×64 transpose per 64-bit chunk — ~64× faster
/// than 64 [`lane_insert`]s.
///
/// Aliasing: `lanes_flat` must not alias `dst` (distinct borrows).
pub fn lane_pack(dst: &mut [u64], width: u32, lanes_flat: &[u64]) {
    let stride = limbs_for(width);
    debug_assert_eq!(dst.len(), width as usize);
    debug_assert_eq!(lanes_flat.len(), LANES * stride);
    let mut block = [0u64; 64];
    for chunk in 0..stride {
        for lane in 0..LANES {
            block[lane] = lanes_flat[lane * stride + chunk];
        }
        transpose64(&mut block);
        let base = chunk * 64;
        let n = (width as usize - base).min(64);
        dst[base..base + n].copy_from_slice(&block[..n]);
    }
}

/// Unpacks all 64 lanes at once: the inverse of [`lane_pack`]
/// (same layout contract; excess bits of each lane value come out
/// zero).
///
/// Aliasing: `src` must not alias `lanes_flat` (distinct borrows).
pub fn lane_unpack(src: &[u64], width: u32, lanes_flat: &mut [u64]) {
    let stride = limbs_for(width);
    debug_assert_eq!(src.len(), width as usize);
    debug_assert_eq!(lanes_flat.len(), LANES * stride);
    let mut block = [0u64; 64];
    for chunk in 0..stride {
        let base = chunk * 64;
        let n = (width as usize - base).min(64);
        block[..n].copy_from_slice(&src[base..base + n]);
        block[n..].fill(0);
        transpose64(&mut block);
        for lane in 0..LANES {
            lanes_flat[lane * stride + chunk] = block[lane];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bv, SplitMix64};

    fn random_bv(rng: &mut SplitMix64, width: u32) -> Bv {
        let bits: Vec<bool> = (0..width).map(|_| rng.next_u64() & 1 == 1).collect();
        Bv::from_bits_lsb(&bits)
    }

    const WIDTHS: [u32; 8] = [1, 7, 63, 64, 65, 127, 128, 200];

    #[test]
    fn binary_ops_match_bv_oracle() {
        let mut rng = SplitMix64::new(0xB175);
        for &w in &WIDTHS {
            for _ in 0..50 {
                let a = random_bv(&mut rng, w);
                let b = random_bv(&mut rng, w);
                let mut dst = vec![0u64; limbs_for(w)];
                for (f, oracle) in [
                    (and as fn(&mut [u64], &[u64], &[u64]), a.and(&b)),
                    (or, a.or(&b)),
                    (xor, a.xor(&b)),
                ] {
                    f(&mut dst, a.limbs(), b.limbs());
                    assert_eq!(Bv::from_limbs(w, &dst), oracle, "w={w}");
                }
                add(&mut dst, a.limbs(), b.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.wrapping_add(&b), "add w={w}");
                sub(&mut dst, a.limbs(), b.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.wrapping_sub(&b), "sub w={w}");
                assert_eq!(ult(a.limbs(), b.limbs()), a.ult(&b), "ult w={w}");
                assert_eq!(slt(a.limbs(), b.limbs(), w), a.slt(&b), "slt w={w}");
            }
        }
    }

    #[test]
    fn unary_ops_match_bv_oracle() {
        let mut rng = SplitMix64::new(0xCAFE);
        for &w in &WIDTHS {
            for _ in 0..50 {
                let a = random_bv(&mut rng, w);
                let mut dst = vec![0u64; limbs_for(w)];
                not(&mut dst, a.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.not(), "not w={w}");
                neg(&mut dst, a.limbs(), w);
                assert_eq!(Bv::from_limbs(w, &dst), a.wrapping_neg(), "neg w={w}");
                assert_eq!(is_zero(a.limbs()), a.is_zero());
                assert_eq!(is_ones(a.limbs(), w), a.is_ones());
                assert_eq!(red_xor(a.limbs()), a.reduce_xor());
                assert_eq!(msb(a.limbs(), w), a.msb());
            }
        }
    }

    #[test]
    fn extend_slice_concat_match_bv_oracle() {
        let mut rng = SplitMix64::new(0x5EED);
        for &w in &WIDTHS {
            for _ in 0..50 {
                let a = random_bv(&mut rng, w);
                let wide = w + 1 + (rng.next_u64() % 130) as u32;
                let mut dst = vec![0u64; limbs_for(wide)];
                zext(&mut dst, a.limbs());
                assert_eq!(Bv::from_limbs(wide, &dst), a.zext(wide), "zext {w}->{wide}");
                sext(&mut dst, a.limbs(), w, wide);
                assert_eq!(Bv::from_limbs(wide, &dst), a.sext(wide), "sext {w}->{wide}");

                let hi = (rng.next_u64() % w as u64) as u32;
                let lo = (rng.next_u64() % (hi + 1) as u64) as u32;
                let mut dst = vec![0u64; limbs_for(hi - lo + 1)];
                slice(&mut dst, a.limbs(), hi, lo);
                assert_eq!(
                    Bv::from_limbs(hi - lo + 1, &dst),
                    a.slice(hi, lo),
                    "slice {w}[{hi}:{lo}]"
                );

                let b = random_bv(&mut rng, wide);
                let mut dst = vec![0u64; limbs_for(w + wide)];
                concat(&mut dst, a.limbs(), w, b.limbs(), wide);
                assert_eq!(
                    Bv::from_limbs(w + wide, &dst),
                    a.concat(&b),
                    "concat {w}+{wide}"
                );
            }
        }
    }

    #[test]
    fn zero_width_edge_cases_do_not_panic() {
        // width == 0: empty slices, vacuous results, no underflow.
        let mut empty: [u64; 0] = [];
        mask_top(&mut empty, 0);
        assert!(is_zero(&empty));
        assert!(is_ones(&empty, 0));
        assert!(!red_xor(&empty));
        assert_eq!(limbs_for(0), 0);
    }

    #[test]
    #[should_panic(expected = "msb: zero-width value has no sign bit")]
    fn msb_of_zero_width_asserts_in_debug() {
        let empty: [u64; 0] = [];
        let _ = msb(&empty, 0);
    }

    #[test]
    #[should_panic(expected = "is_ones: a/width mismatch")]
    fn is_ones_rejects_overlong_slice_in_debug() {
        // A slice longer than limbs_for(width) used to be silently
        // misinterpreted (the top-limb check landed on the wrong limb).
        let _ = is_ones(&[u64::MAX, 0xDEAD], 64);
    }

    #[test]
    #[should_panic(expected = "mask_top: dst/width mismatch")]
    fn mask_top_rejects_overlong_slice_in_debug() {
        let mut v = [u64::MAX, u64::MAX];
        mask_top(&mut v, 7);
    }

    #[test]
    fn transpose64_is_the_bit_matrix_transpose() {
        let mut rng = SplitMix64::new(0x7A95);
        let mut m: [u64; 64] = std::array::from_fn(|_| rng.next_u64());
        let orig = m;
        transpose64(&mut m);
        for (i, &row) in m.iter().enumerate() {
            for (j, &orig_row) in orig.iter().enumerate() {
                assert_eq!(
                    (row >> j) & 1,
                    (orig_row >> i) & 1,
                    "transposed bit ({i},{j})"
                );
            }
        }
        // Self-inverse.
        transpose64(&mut m);
        assert_eq!(m, orig);
    }

    #[test]
    fn lane_insert_extract_round_trip() {
        let mut rng = SplitMix64::new(0x1A7E5);
        for &w in &WIDTHS {
            let vals: Vec<Bv> = (0..LANES).map(|_| random_bv(&mut rng, w)).collect();
            let mut group = vec![0u64; w as usize];
            for (lane, v) in vals.iter().enumerate() {
                lane_insert(&mut group, w, lane, v.limbs());
            }
            let mut out = vec![0u64; limbs_for(w)];
            for (lane, v) in vals.iter().enumerate() {
                lane_extract(&group, w, lane, &mut out);
                assert_eq!(Bv::from_limbs(w, &out), *v, "w={w} lane={lane}");
            }
            // Per-bit view: slice i holds bit i across lanes.
            for (i, s) in group.iter().enumerate() {
                for (lane, v) in vals.iter().enumerate() {
                    assert_eq!((s >> lane) & 1 == 1, v.bit(i as u32), "bit {i} lane {lane}");
                }
            }
        }
    }

    #[test]
    fn lane_pack_unpack_match_per_lane_helpers() {
        let mut rng = SplitMix64::new(0x9ACC);
        for &w in &WIDTHS {
            let stride = limbs_for(w);
            let vals: Vec<Bv> = (0..LANES).map(|_| random_bv(&mut rng, w)).collect();
            let mut flat = vec![0u64; LANES * stride];
            for (lane, v) in vals.iter().enumerate() {
                flat[lane * stride..][..stride].copy_from_slice(v.limbs());
            }
            let mut packed = vec![0u64; w as usize];
            lane_pack(&mut packed, w, &flat);
            let mut by_insert = vec![0u64; w as usize];
            for (lane, v) in vals.iter().enumerate() {
                lane_insert(&mut by_insert, w, lane, v.limbs());
            }
            assert_eq!(packed, by_insert, "w={w}");
            let mut unflat = vec![0u64; LANES * stride];
            lane_unpack(&packed, w, &mut unflat);
            assert_eq!(unflat, flat, "w={w}");
        }
    }

    #[test]
    fn lane_splat_broadcasts() {
        let v = Bv::from_u64(9, 0b1_0110_1001);
        let mut group = vec![0u64; 9];
        lane_splat(&mut group, 9, v.limbs());
        for lane in [0usize, 17, 63] {
            let mut out = vec![0u64; 1];
            lane_extract(&group, 9, lane, &mut out);
            assert_eq!(Bv::from_limbs(9, &out), v);
        }
    }

    #[test]
    fn from_limbs_round_trips_and_masks() {
        let v = Bv::from_limbs(7, &[0xFFFF]);
        assert_eq!(v, Bv::ones(7));
        let w = Bv::from_u128(100, 0x0123_4567_89AB_CDEF_0011_2233);
        assert_eq!(Bv::from_limbs(100, w.limbs()), w);
    }
}
