//! Modular (hardware) arithmetic and comparisons on [`Bv`].

use std::cmp::Ordering;

use crate::Bv;

impl Bv {
    fn assert_same_width(&self, other: &Bv, op: &str) {
        assert_eq!(
            self.width, other.width,
            "{op} requires equal widths ({} vs {})",
            self.width, other.width
        );
    }

    /// Addition modulo `2^width` — the semantics of a Verilog assignment of
    /// `a + b` to a target of the same width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ; widen explicitly with [`Bv::zext`] /
    /// [`Bv::sext`] first, as you would in RTL.
    pub fn wrapping_add(&self, other: &Bv) -> Bv {
        self.assert_same_width(other, "wrapping_add");
        let mut out = Bv::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask_top();
        out
    }

    /// Addition producing a `width + 1` result so the carry is never lost —
    /// the "widened accumulator" fix for the paper's Figure 1.
    pub fn carrying_add(&self, other: &Bv) -> Bv {
        self.zext(self.width + 1)
            .wrapping_add(&other.zext(other.width + 1))
    }

    /// Subtraction modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn wrapping_sub(&self, other: &Bv) -> Bv {
        self.wrapping_add(&other.wrapping_neg())
    }

    /// Two's-complement negation modulo `2^width`.
    pub fn wrapping_neg(&self) -> Bv {
        let not = self.not();
        not.wrapping_add(&Bv::from_u64(self.width, 1))
    }

    /// Multiplication modulo `2^width` (the low half of the full product).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn wrapping_mul(&self, other: &Bv) -> Bv {
        self.assert_same_width(other, "wrapping_mul");
        self.widening_umul(other).trunc(self.width)
    }

    /// Full unsigned multiplication: the result has width
    /// `self.width() + other.width()`.
    pub fn widening_umul(&self, other: &Bv) -> Bv {
        let mut out = Bv::zero(self.width + other.width);
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let k = i + j;
                if k >= out.limbs.len() {
                    break;
                }
                let t = (a as u128) * (b as u128) + (out.limbs[k] as u128) + carry;
                out.limbs[k] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 && k < out.limbs.len() {
                let t = (out.limbs[k] as u128) + carry;
                out.limbs[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        out.mask_top();
        out
    }

    /// Full signed multiplication: the result has width
    /// `self.width() + other.width()` and is the two's-complement product.
    pub fn widening_smul(&self, other: &Bv) -> Bv {
        let w = self.width + other.width;
        self.sext(w).wrapping_mul(&other.sext(w))
    }

    /// Unsigned division. Division by zero yields all-ones (the common
    /// 2-state hardware convention for Verilog's `x` result).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn udiv(&self, other: &Bv) -> Bv {
        self.assert_same_width(other, "udiv");
        self.udivrem(other).0
    }

    /// Unsigned remainder. Remainder by zero yields the dividend.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn urem(&self, other: &Bv) -> Bv {
        self.assert_same_width(other, "urem");
        self.udivrem(other).1
    }

    /// Unsigned quotient and remainder together ([`Bv::udiv`] /
    /// [`Bv::urem`] each discard half of this work).
    pub fn udivrem(&self, other: &Bv) -> (Bv, Bv) {
        self.assert_same_width(other, "udivrem");
        if other.is_zero() {
            return (Bv::ones(self.width), self.clone());
        }
        // Fast path for values that fit in u128.
        if self.width <= 128 {
            let a = self.to_u128();
            let b = other.to_u128();
            return (
                Bv::from_u128(self.width, a / b),
                Bv::from_u128(self.width, a % b),
            );
        }
        // Bit-serial restoring division, MSB first.
        let mut quo = Bv::zero(self.width);
        let mut rem = Bv::zero(self.width);
        for i in (0..self.width).rev() {
            rem = rem.shl(1).with_bit(0, self.bit(i));
            if rem.ucmp(other) != Ordering::Less {
                rem = rem.wrapping_sub(other);
                quo = quo.with_bit(i, true);
            }
        }
        (quo, rem)
    }

    /// Signed division, truncating toward zero (Verilog `/` on signed
    /// operands). Division by zero yields all-ones.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn sdiv(&self, other: &Bv) -> Bv {
        self.assert_same_width(other, "sdiv");
        if other.is_zero() {
            return Bv::ones(self.width);
        }
        let (a, an) = self.abs_mag();
        let (b, bn) = other.abs_mag();
        let q = a.udiv(&b);
        if an ^ bn {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// Signed remainder; the result takes the sign of the dividend
    /// (Verilog `%`). Remainder by zero yields the dividend.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn srem(&self, other: &Bv) -> Bv {
        self.assert_same_width(other, "srem");
        if other.is_zero() {
            return self.clone();
        }
        let (a, an) = self.abs_mag();
        let (b, _) = other.abs_mag();
        let r = a.urem(&b);
        if an {
            r.wrapping_neg()
        } else {
            r
        }
    }

    /// Magnitude under signed interpretation and whether the value was
    /// negative. `abs(MIN)` wraps back to `MIN`, matching hardware.
    fn abs_mag(&self) -> (Bv, bool) {
        if self.msb() {
            (self.wrapping_neg(), true)
        } else {
            (self.clone(), false)
        }
    }

    /// Unsigned comparison.
    ///
    /// `Bv` deliberately does not implement `Ord`: an ordering requires
    /// choosing a sign interpretation, which is per-operation in hardware.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn ucmp(&self, other: &Bv) -> Ordering {
        self.assert_same_width(other, "ucmp");
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Signed (two's-complement) comparison.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn scmp(&self, other: &Bv) -> Ordering {
        self.assert_same_width(other, "scmp");
        match (self.msb(), other.msb()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.ucmp(other),
        }
    }

    /// `self < other`, unsigned.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn ult(&self, other: &Bv) -> bool {
        self.ucmp(other) == Ordering::Less
    }

    /// `self < other`, signed.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn slt(&self, other: &Bv) -> bool {
        self.scmp(other) == Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b8(v: i64) -> Bv {
        Bv::from_i64(8, v)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(b8(127).wrapping_add(&b8(1)).to_i64(), -128);
        assert_eq!(b8(-1).wrapping_add(&b8(1)).to_u64(), 0);
    }

    #[test]
    fn add_carry_across_limbs() {
        let a = Bv::ones(128);
        let one = Bv::from_u64(128, 1);
        assert!(a.wrapping_add(&one).is_zero());
        let wide = a.carrying_add(&one);
        assert_eq!(wide.width(), 129);
        assert!(wide.bit(128));
        assert_eq!(wide.trunc(128), Bv::zero(128));
    }

    #[test]
    fn fig1_non_associativity() {
        // The paper's Figure 1: signed 8-bit a, b, c with an 8-bit tmp.
        let (a, b, c) = (b8(127), b8(127), b8(-1));
        let tmp1 = a.wrapping_add(&b); // overflows
        let out1 = tmp1.sext(9).wrapping_add(&c.sext(9));
        let tmp2 = b.wrapping_add(&c);
        let out2 = tmp2.sext(9).wrapping_add(&a.sext(9));
        assert_ne!(out1, out2);
        assert_eq!(out2.to_i64(), 253);
        assert_eq!(out1.to_i64(), -3);
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(b8(5).wrapping_sub(&b8(7)).to_i64(), -2);
        assert_eq!(b8(-128).wrapping_neg().to_i64(), -128); // MIN wraps
        assert_eq!(b8(0).wrapping_neg().to_u64(), 0);
    }

    #[test]
    fn mul_truncates() {
        let a = Bv::from_u64(8, 0x10);
        assert_eq!(a.wrapping_mul(&a).to_u64(), 0); // 0x100 truncated
        assert_eq!(a.widening_umul(&a).to_u64(), 0x100);
        assert_eq!(a.widening_umul(&a).width(), 16);
    }

    #[test]
    fn widening_mul_wide_operands() {
        let a = Bv::from_u128(128, u128::MAX);
        let p = a.widening_umul(&a);
        assert_eq!(p.width(), 256);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1 = (2^256 - 1) - 2^129 + 2
        let expect = Bv::ones(256)
            .wrapping_sub(&Bv::from_u64(256, 1).shl(129))
            .wrapping_add(&Bv::from_u64(256, 2));
        assert_eq!(p, expect);
    }

    #[test]
    fn smul_signs() {
        let a = b8(-3);
        let b = b8(5);
        assert_eq!(a.widening_smul(&b).to_i64(), -15);
        assert_eq!(a.widening_smul(&a).to_i64(), 9);
        assert_eq!(a.widening_smul(&b).width(), 16);
    }

    #[test]
    fn div_rem_unsigned() {
        let a = Bv::from_u64(8, 200);
        let b = Bv::from_u64(8, 7);
        assert_eq!(a.udiv(&b).to_u64(), 28);
        assert_eq!(a.urem(&b).to_u64(), 4);
    }

    #[test]
    fn div_by_zero_convention() {
        let a = Bv::from_u64(8, 42);
        let z = Bv::zero(8);
        assert!(a.udiv(&z).is_ones());
        assert_eq!(a.urem(&z), a);
        assert!(b8(-5).sdiv(&z).is_ones());
        assert_eq!(b8(-5).srem(&z), b8(-5));
    }

    #[test]
    fn wide_division_matches_narrow() {
        // Exercise the bit-serial path by using width > 128.
        let a = Bv::from_u64(200, 1_000_000_007);
        let b = Bv::from_u64(200, 97);
        assert_eq!(a.udiv(&b).to_u64(), 1_000_000_007 / 97);
        assert_eq!(a.urem(&b).to_u64(), 1_000_000_007 % 97);
    }

    #[test]
    fn signed_div_truncates_toward_zero() {
        assert_eq!(b8(-7).sdiv(&b8(2)).to_i64(), -3);
        assert_eq!(b8(7).sdiv(&b8(-2)).to_i64(), -3);
        assert_eq!(b8(-7).sdiv(&b8(-2)).to_i64(), 3);
        assert_eq!(b8(-7).srem(&b8(2)).to_i64(), -1);
        assert_eq!(b8(7).srem(&b8(-2)).to_i64(), 1);
    }

    #[test]
    fn comparisons() {
        assert!(Bv::from_u64(8, 200).ult(&Bv::from_u64(8, 201)));
        assert!(b8(-1).slt(&b8(0)));
        assert!(!b8(-1).ult(&b8(0))); // 0xFF unsigned is large
        assert_eq!(b8(5).scmp(&b8(5)), Ordering::Equal);
        let wide_a = Bv::from_u128(128, 1 << 100);
        let wide_b = Bv::from_u128(128, (1 << 100) + 1);
        assert!(wide_a.ult(&wide_b));
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn width_mismatch_panics() {
        let _ = Bv::zero(8).wrapping_add(&Bv::zero(9));
    }
}
