//! Error types for this crate.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`crate::Bv`] from a string fails.
///
/// Produced by `Bv::from_str` (sized-literal syntax such as `8'hFF`) and
/// [`crate::Bv::from_str_radix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBvError {
    pub(crate) message: String,
}

impl ParseBvError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParseBvError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseBvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bit-vector literal: {}", self.message)
    }
}

impl Error for ParseBvError {}
