//! Arbitrary-width bit vectors and related value types with *hardware*
//! semantics.
//!
//! This crate is the data-type substrate of the `dfv` workspace. The DAC 2007
//! paper this workspace reproduces ("Design for Verification in System-level
//! Models and RTL") identifies the mismatch between C's fixed-width `int`
//! types and RTL's custom-sized bit vectors as the *main source of
//! computational discrepancy* between system-level models and RTL
//! (§3.1.1). It also notes that teams end up writing their own bit-vector
//! libraries because C/C++ has no native support for wide vectors, bit
//! selects, or concatenation — and that those home-grown libraries must
//! faithfully capture HDL semantics. [`Bv`] is that library, with Verilog-like
//! two's-complement semantics:
//!
//! * every value has an explicit bit width; arithmetic wraps modulo `2^w`,
//! * sign is an *interpretation* (signed methods are suffixed `s`, e.g.
//!   [`Bv::scmp`]), not part of the type,
//! * part-select ([`Bv::slice`]), concatenation ([`Bv::concat`]),
//!   replication ([`Bv::repeat`]) and zero/sign extension are first-class,
//! * division follows common hardware convention for divide-by-zero
//!   (all-ones quotient, dividend remainder) rather than panicking.
//!
//! The crate also provides:
//!
//! * [`Fx`] — fixed-point values (a [`Bv`] plus a binary-point position) with
//!   explicit rounding and overflow modes, for the word-width-exploration
//!   use-case the paper describes for signal-processing SLMs,
//! * [`Xv`] — four-state (0/1/X) vectors with pessimistic X propagation, used
//!   for reset analysis of RTL models,
//! * [`SplitMix64`] — a tiny seeded PRNG used for constrained-random
//!   stimulus and benches, so the workspace builds with no external (and
//!   therefore no network-fetched) dependencies.
//!
//! # Example
//!
//! The paper's Figure 1 shows that addition is non-associative in finite
//! precision: with 8-bit temporaries, `(a + b) + c != (b + c) + a` for
//! `a = b = 127, c = -1` — an effect a plain-`int` C model masks.
//!
//! ```
//! use dfv_bits::Bv;
//!
//! let a = Bv::from_i64(8, 127);
//! let b = Bv::from_i64(8, 127);
//! let c = Bv::from_i64(8, -1);
//!
//! // RTL-style: the temporary `a + b` is only 8 bits wide and overflows.
//! let lhs = a.wrapping_add(&b).sext(9).wrapping_add(&c.sext(9));
//! let rhs = b.wrapping_add(&c).sext(9).wrapping_add(&a.sext(9));
//! assert_ne!(lhs, rhs);
//!
//! // C-style: 32-bit `int` temporaries never overflow here, masking the bug.
//! let wide = |x: &Bv| x.sext(32);
//! let lhs32 = wide(&a).wrapping_add(&wide(&b)).wrapping_add(&wide(&c));
//! let rhs32 = wide(&b).wrapping_add(&wide(&c)).wrapping_add(&wide(&a));
//! assert_eq!(lhs32, rhs32);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arith;
mod bv;
mod error;
mod fixed;
mod fmt;
mod fourstate;
pub mod limbs;
mod logic;
mod rng;

pub use bv::Bv;
pub use error::ParseBvError;
pub use fixed::{Fx, OverflowMode, RoundingMode};
pub use fourstate::Xv;
pub use rng::SplitMix64;
