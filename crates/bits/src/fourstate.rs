//! Four-state (0/1/X) vectors with pessimistic X propagation.
//!
//! RTL simulators use unknown (`X`) values to model uninitialized state; the
//! paper's §3.2 discusses how SLMs, which have no such notion, diverge from
//! RTL before reset completes. [`Xv`] is the minimal four-state companion to
//! [`Bv`] used by the RTL reset-coverage analysis: each bit is either a known
//! 0/1 or unknown, and operations propagate unknowns pessimistically (with
//! the usual dominance rules: `0 & X = 0`, `1 | X = 1`).

use std::fmt;

use crate::Bv;

/// A four-state bit vector: per bit, known-0, known-1, or unknown (X).
///
/// High-impedance (`Z`) is folded into X, which is what a 2-state-plus-X
/// analysis needs.
///
/// # Example
///
/// ```
/// use dfv_bits::{Bv, Xv};
///
/// let known = Xv::from_bv(&Bv::from_u64(4, 0b0011));
/// let all_x = Xv::unknown(4);
/// let anded = known.and(&all_x);
/// // 0 & X = 0 (bits 2,3 known zero); 1 & X = X (bits 0,1 unknown).
/// assert_eq!(anded.known_mask(), Bv::from_u64(4, 0b1100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xv {
    /// Bit values; only meaningful where `known` is 1.
    value: Bv,
    /// 1 = bit is a known 0/1, 0 = bit is X.
    known: Bv,
}

impl Xv {
    /// A fully known value.
    pub fn from_bv(value: &Bv) -> Self {
        Xv {
            value: value.clone(),
            known: Bv::ones(value.width()),
        }
    }

    /// A fully unknown (all-X) value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn unknown(width: u32) -> Self {
        Xv {
            value: Bv::zero(width),
            known: Bv::zero(width),
        }
    }

    /// Builds from a value and a known mask (value bits where `known` is
    /// zero are ignored and normalized to 0).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn with_mask(value: &Bv, known: &Bv) -> Self {
        Xv {
            value: value.and(known),
            known: known.clone(),
        }
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.value.width()
    }

    /// The mask of known bit positions (1 = known).
    pub fn known_mask(&self) -> Bv {
        self.known.clone()
    }

    /// The canonical value bits: known bits carry their value, unknown
    /// positions read as 0.
    pub fn value_bits(&self) -> Bv {
        self.value.clone()
    }

    /// Whether every bit is known.
    pub fn is_fully_known(&self) -> bool {
        self.known.is_ones()
    }

    /// The value as a plain [`Bv`], if fully known.
    pub fn try_to_bv(&self) -> Option<Bv> {
        if self.is_fully_known() {
            Some(self.value.clone())
        } else {
            None
        }
    }

    /// Four-state AND: `0` dominates X.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and(&self, other: &Xv) -> Xv {
        let value = self.value.and(&other.value);
        // Known if both known, or either side is a known 0.
        let known0_a = self.known.and(&self.value.not());
        let known0_b = other.known.and(&other.value.not());
        let known = self.known.and(&other.known).or(&known0_a).or(&known0_b);
        Xv::with_mask(&value, &known)
    }

    /// Four-state OR: `1` dominates X.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or(&self, other: &Xv) -> Xv {
        let value = self.value.or(&other.value);
        let known1_a = self.known.and(&self.value);
        let known1_b = other.known.and(&other.value);
        let known = self.known.and(&other.known).or(&known1_a).or(&known1_b);
        Xv::with_mask(&value, &known)
    }

    /// Four-state XOR: any X operand bit makes the result bit X.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor(&self, other: &Xv) -> Xv {
        Xv::with_mask(&self.value.xor(&other.value), &self.known.and(&other.known))
    }

    /// Four-state NOT.
    pub fn not(&self) -> Xv {
        Xv::with_mask(&self.value.not(), &self.known)
    }

    /// Four-state multiplexer: if the select is X, output bits are known
    /// only where both inputs agree and are known.
    ///
    /// # Panics
    ///
    /// Panics if the data widths differ or `sel` is not one bit wide.
    pub fn mux(sel: &Xv, a: &Xv, b: &Xv) -> Xv {
        assert_eq!(sel.width(), 1, "mux select must be one bit");
        if sel.is_fully_known() {
            if sel.value.bit(0) {
                a.clone()
            } else {
                b.clone()
            }
        } else {
            let agree = a.value.xor(&b.value).not();
            let known = a.known.and(&b.known).and(&agree);
            Xv::with_mask(&a.value, &known)
        }
    }

    /// Pessimistic addition: output bits at and above the lowest X input
    /// bit become X (a carry from an unknown bit could reach any of them).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add(&self, other: &Xv) -> Xv {
        let w = self.width();
        assert_eq!(w, other.width(), "add requires equal widths");
        let value = self.value.wrapping_add(&other.value);
        let both = self.known.and(&other.known);
        let mut known = Bv::zero(w);
        for i in 0..w {
            if !both.bit(i) {
                break;
            }
            known = known.with_bit(i, true);
        }
        Xv::with_mask(&value, &known)
    }
}

impl fmt::Display for Xv {
    /// Displays MSB-first with `x` for unknown bits, e.g. `4'b1x0x`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width())?;
        for i in (0..self.width()).rev() {
            let c = if !self.known.bit(i) {
                'x'
            } else if self.value.bit(i) {
                '1'
            } else {
                '0'
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xv(s: &str) -> Xv {
        // Accepts MSB-first strings of 0/1/x.
        let width = s.len() as u32;
        let mut value = Bv::zero(width);
        let mut known = Bv::zero(width);
        for (pos, ch) in s.chars().enumerate() {
            let i = width - 1 - pos as u32;
            match ch {
                '0' => known = known.with_bit(i, true),
                '1' => {
                    known = known.with_bit(i, true);
                    value = value.with_bit(i, true);
                }
                'x' => {}
                other => panic!("bad test literal char {other:?}"),
            }
        }
        Xv::with_mask(&value, &known)
    }

    #[test]
    fn and_dominance() {
        assert_eq!(xv("0x1x").and(&xv("xx1x")).to_string(), "4'b0x1x");
        assert_eq!(xv("1111").and(&xv("0000")).to_string(), "4'b0000");
    }

    #[test]
    fn or_dominance() {
        assert_eq!(xv("1x0x").or(&xv("xx0x")).to_string(), "4'b1x0x");
    }

    #[test]
    fn xor_propagates_x() {
        assert_eq!(xv("1x01").xor(&xv("11x1")).to_string(), "4'b0xx0");
    }

    #[test]
    fn not_preserves_mask() {
        assert_eq!(xv("1x0x").not().to_string(), "4'b0x1x");
    }

    #[test]
    fn mux_known_select() {
        let a = xv("1010");
        let b = xv("0101");
        assert_eq!(Xv::mux(&xv("1"), &a, &b), a);
        assert_eq!(Xv::mux(&xv("0"), &a, &b), b);
    }

    #[test]
    fn mux_unknown_select_keeps_agreement() {
        let a = xv("10x1");
        let b = xv("1101");
        let m = Xv::mux(&xv("x"), &a, &b);
        assert_eq!(m.to_string(), "4'b1xx1");
    }

    #[test]
    fn add_poisons_above_first_x() {
        let a = xv("00x1");
        let b = xv("0001");
        let s = a.add(&b);
        // Bit 0 is the only position below the first X input bit.
        assert_eq!(s.known_mask(), Bv::from_u64(4, 0b0001));
        let clean = xv("0011").add(&xv("0001"));
        assert!(clean.is_fully_known());
        assert_eq!(clean.try_to_bv().unwrap().to_u64(), 0b0100);
    }

    #[test]
    fn fully_known_roundtrip() {
        let v = Bv::from_u64(6, 0b101_010);
        let x = Xv::from_bv(&v);
        assert!(x.is_fully_known());
        assert_eq!(x.try_to_bv(), Some(v));
        assert_eq!(Xv::unknown(6).try_to_bv(), None);
    }
}
