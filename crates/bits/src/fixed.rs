//! Fixed-point values for signal-processing SLMs.
//!
//! The paper (§1) describes architectural models for signal/image processing
//! that are used "to decide on the optimal word widths to support the desired
//! bit error rates". [`Fx`] supports exactly that exploration: a
//! two's-complement [`Bv`] with a binary point, plus explicit
//! [`RoundingMode`] and [`OverflowMode`] choices — the knobs an RTL designer
//! turns when shrinking a datapath.

use std::fmt;

use crate::Bv;

/// How to round when discarding fraction bits in [`Fx::quantize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Drop the discarded bits (round toward negative infinity). The
    /// cheapest hardware; the default.
    #[default]
    Truncate,
    /// Add half an LSB before truncating (round half up).
    HalfUp,
    /// Round to nearest, ties to even LSB (IEEE-style "convergent").
    HalfEven,
}

/// How to handle values that exceed the target integer range in
/// [`Fx::quantize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowMode {
    /// Two's-complement wrap-around — what a plain assignment does in RTL.
    #[default]
    Wrap,
    /// Clamp to the most positive / most negative representable value.
    Saturate,
}

/// A signed fixed-point number: a two's-complement bit pattern of
/// `width` bits with `frac` bits to the right of the binary point.
///
/// The represented value is `raw.to_i64_equivalent() * 2^-frac` (conceptually;
/// wide values are supported through [`Bv`]).
///
/// # Example
///
/// ```
/// use dfv_bits::{Fx, RoundingMode, OverflowMode};
///
/// let x = Fx::from_f64(12, 6, 1.5);
/// let y = Fx::from_f64(12, 6, 2.25);
/// let p = x.mul(&y); // 24 bits, 12 fraction bits — full precision
/// assert_eq!(p.to_f64(), 3.375);
/// // Quantize back to the narrow format, as the RTL datapath would:
/// let q = p.quantize(12, 6, RoundingMode::Truncate, OverflowMode::Saturate);
/// assert_eq!(q.to_f64(), 3.375);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fx {
    raw: Bv,
    frac: u32,
}

impl Fx {
    /// Creates a fixed-point value from a raw two's-complement pattern.
    ///
    /// # Panics
    ///
    /// Panics if `frac > raw.width()`.
    pub fn from_raw(raw: Bv, frac: u32) -> Self {
        assert!(
            frac <= raw.width(),
            "fraction bits {frac} exceed width {}",
            raw.width()
        );
        Fx { raw, frac }
    }

    /// The zero value in the given format.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `frac > width`.
    pub fn zero(width: u32, frac: u32) -> Self {
        Fx::from_raw(Bv::zero(width), frac)
    }

    /// Converts from `f64`, rounding half up, wrapping on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, `frac > width`, or `value` is not finite.
    pub fn from_f64(width: u32, frac: u32, value: f64) -> Self {
        assert!(
            value.is_finite(),
            "fixed-point conversion of non-finite value"
        );
        let scaled = (value * (2f64.powi(frac as i32))).round();
        Fx::from_raw(Bv::from_i64(width, scaled as i64), frac)
    }

    /// The value as `f64` (exact for widths up to 53 significant bits).
    pub fn to_f64(&self) -> f64 {
        (self.raw.to_i64() as f64) * 2f64.powi(-(self.frac as i32))
    }

    /// The raw two's-complement pattern.
    pub fn raw(&self) -> &Bv {
        &self.raw
    }

    /// Total width in bits.
    pub fn width(&self) -> u32 {
        self.raw.width()
    }

    /// Fraction bits (binary-point position).
    pub fn frac(&self) -> u32 {
        self.frac
    }

    /// Aligns two operands to a common format wide enough to hold both
    /// exactly, plus one extra integer bit for a carry.
    fn align(&self, other: &Fx) -> (Bv, Bv, u32) {
        let frac = self.frac.max(other.frac);
        let int_bits = (self.width() - self.frac).max(other.width() - other.frac);
        let width = int_bits + frac + 1;
        let a = self
            .raw
            .sext(self.width() + (frac - self.frac))
            .shl(frac - self.frac);
        let b = other
            .raw
            .sext(other.width() + (frac - other.frac))
            .shl(frac - other.frac);
        (a.sext(width), b.sext(width), frac)
    }

    /// Full-precision addition: the result is wide enough that no overflow
    /// or rounding occurs.
    pub fn add(&self, other: &Fx) -> Fx {
        let (a, b, frac) = self.align(other);
        Fx::from_raw(a.wrapping_add(&b), frac)
    }

    /// Full-precision subtraction.
    pub fn sub(&self, other: &Fx) -> Fx {
        let (a, b, frac) = self.align(other);
        Fx::from_raw(a.wrapping_sub(&b), frac)
    }

    /// Full-precision multiplication: widths and fraction bits add.
    pub fn mul(&self, other: &Fx) -> Fx {
        Fx::from_raw(self.raw.widening_smul(&other.raw), self.frac + other.frac)
    }

    /// Two's-complement negation in the same format (the most negative
    /// value wraps).
    pub fn neg(&self) -> Fx {
        Fx::from_raw(self.raw.wrapping_neg(), self.frac)
    }

    /// Converts to the given format, applying `rounding` to discarded
    /// fraction bits and `overflow` to out-of-range results — the exact
    /// operation an RTL designer implements when narrowing a datapath,
    /// and a classic source of SLM/RTL divergence when the SLM rounds
    /// differently.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `frac > width`.
    pub fn quantize(
        &self,
        width: u32,
        frac: u32,
        rounding: RoundingMode,
        overflow: OverflowMode,
    ) -> Fx {
        // Work in a comfortably wide intermediate.
        let work_w = self.width().max(width) + self.frac.max(frac) + 2;
        let mut v = self.raw.sext(work_w);
        if frac >= self.frac {
            v = v.shl(frac - self.frac);
        } else {
            let drop = self.frac - frac;
            match rounding {
                RoundingMode::Truncate => {}
                RoundingMode::HalfUp => {
                    let half = Bv::from_u64(work_w, 1).shl(drop - 1);
                    v = v.wrapping_add(&half);
                }
                RoundingMode::HalfEven => {
                    let half = Bv::from_u64(work_w, 1).shl(drop - 1);
                    let frac_part = v.slice(drop - 1, 0);
                    let tie = frac_part == Bv::from_u64(drop, 1).shl(drop - 1);
                    let lsb_even = !v.bit(drop);
                    if !(tie && lsb_even) {
                        v = v.wrapping_add(&half);
                    }
                }
            }
            v = v.ashr(drop);
        }
        // Now `v` is the integer result in `frac`-fraction units; clamp or
        // wrap into `width` bits.
        let one = Bv::from_u64(work_w, 1);
        let max = one.shl(width - 1).wrapping_sub(&one); // 2^(w-1) - 1
        let min = one.shl(width - 1).wrapping_neg(); // -2^(w-1)
        let out = match overflow {
            OverflowMode::Wrap => v.trunc(width),
            OverflowMode::Saturate => {
                if v.scmp(&max) == std::cmp::Ordering::Greater {
                    max.trunc(width)
                } else if v.scmp(&min) == std::cmp::Ordering::Less {
                    min.trunc(width)
                } else {
                    v.trunc(width)
                }
            }
        };
        Fx::from_raw(out, frac)
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(q{}.{})",
            self.to_f64(),
            self.width() - self.frac,
            self.frac
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let x = Fx::from_f64(16, 8, 3.5);
        assert_eq!(x.to_f64(), 3.5);
        assert_eq!(x.raw().to_u64(), 3 * 256 + 128);
        let n = Fx::from_f64(16, 8, -0.25);
        assert_eq!(n.to_f64(), -0.25);
    }

    #[test]
    fn add_aligns_formats() {
        let a = Fx::from_f64(8, 4, 1.5);
        let b = Fx::from_f64(10, 2, 2.25);
        let s = a.add(&b);
        assert_eq!(s.to_f64(), 3.75);
        assert_eq!(s.frac(), 4);
    }

    #[test]
    fn add_never_overflows() {
        let a = Fx::from_f64(8, 0, 127.0);
        let s = a.add(&a);
        assert_eq!(s.to_f64(), 254.0);
    }

    #[test]
    fn mul_full_precision() {
        let a = Fx::from_f64(8, 4, 1.0625); // 17/16
        let p = a.mul(&a);
        assert_eq!(p.frac(), 8);
        assert_eq!(p.to_f64(), 289.0 / 256.0);
    }

    #[test]
    fn quantize_truncate_rounds_down() {
        let x = Fx::from_f64(16, 8, 1.99609375); // 511/256
        let q = x.quantize(8, 0, RoundingMode::Truncate, OverflowMode::Wrap);
        assert_eq!(q.to_f64(), 1.0);
        let n = Fx::from_f64(16, 8, -1.5);
        let qn = n.quantize(8, 0, RoundingMode::Truncate, OverflowMode::Wrap);
        assert_eq!(qn.to_f64(), -2.0); // floor, like `ashr`
    }

    #[test]
    fn quantize_half_up() {
        let x = Fx::from_f64(16, 8, 1.5);
        let q = x.quantize(8, 0, RoundingMode::HalfUp, OverflowMode::Wrap);
        assert_eq!(q.to_f64(), 2.0);
        let y = Fx::from_f64(16, 8, 1.25);
        assert_eq!(
            y.quantize(8, 0, RoundingMode::HalfUp, OverflowMode::Wrap)
                .to_f64(),
            1.0
        );
    }

    #[test]
    fn quantize_half_even_breaks_ties() {
        let up = |v: f64| {
            Fx::from_f64(16, 8, v)
                .quantize(8, 0, RoundingMode::HalfEven, OverflowMode::Wrap)
                .to_f64()
        };
        assert_eq!(up(0.5), 0.0); // tie, 0 is even
        assert_eq!(up(1.5), 2.0); // tie, rounds to even 2
        assert_eq!(up(2.5), 2.0);
        assert_eq!(up(1.75), 2.0); // not a tie
    }

    #[test]
    fn quantize_saturates() {
        let big = Fx::from_f64(16, 4, 300.0);
        let q = big.quantize(8, 0, RoundingMode::Truncate, OverflowMode::Saturate);
        assert_eq!(q.to_f64(), 127.0);
        let small = Fx::from_f64(16, 4, -300.0);
        let qs = small.quantize(8, 0, RoundingMode::Truncate, OverflowMode::Saturate);
        assert_eq!(qs.to_f64(), -128.0);
        // Wrap mode instead exhibits the classic RTL wrap bug.
        let qw = big.quantize(8, 0, RoundingMode::Truncate, OverflowMode::Wrap);
        assert_eq!(qw.to_f64(), 300.0 - 256.0);
    }

    #[test]
    fn quantize_widening_fraction() {
        let x = Fx::from_f64(8, 2, 1.25);
        let q = x.quantize(16, 8, RoundingMode::Truncate, OverflowMode::Wrap);
        assert_eq!(q.to_f64(), 1.25);
    }

    #[test]
    fn neg_wraps_at_min() {
        let min = Fx::from_raw(Bv::from_u64(8, 0x80), 4);
        assert_eq!(min.neg(), min);
    }
}
