//! A small, dependency-free pseudo-random number generator.
//!
//! The workspace must build and test with no network access, so instead of
//! an external `rand` dependency every randomized component (constrained
//! stimulus in `dfv-cosim`, the experiment harness in `dfv-bench`, fuzz
//! tests) seeds one of these. The generator is SplitMix64 (Steele, Lea &
//! Flood, "Fast splittable pseudorandom number generators", OOPSLA 2014):
//! a 64-bit counter stepped by the golden-gamma constant and scrambled by a
//! variant of the MurmurHash3 finalizer. It passes BigCrush as a stream
//! generator, is trivially seedable from any `u64` (including 0), and every
//! draw is O(1) with no internal state beyond the counter — which keeps
//! reproducibility exact across platforms.
//!
//! This is **not** a cryptographic generator; it is for test stimulus and
//! benchmarks only.

/// A seeded SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use dfv_bits::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully reproducible
/// let v = a.range_u64(10, 20);
/// assert!((10..=20).contains(&v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed (including 0) gives a
    /// full-quality stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A uniformly random `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa-width bits scaled into [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniformly random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[0, n)` via Lemire rejection (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Widening-multiply rejection sampling: unbiased and branch-cheap.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            if n.is_power_of_two() {
                return x & (n - 1);
            }
        }
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// A uniform value in `[lo, hi]` (inclusive), signed.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        (lo as i128 + self.below(span + 1) as i128) as i64
    }

    /// The low `width` bits uniformly random (`width <= 64`).
    pub fn bits(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 64);
        match width {
            0 => 0,
            64 => self.next_u64(),
            w => self.next_u64() & ((1u64 << w) - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream() {
        // First outputs for seed 0x1234_5678, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut r = SplitMix64::new(0x1234_5678);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(first.len(), 3);
        // Determinism: same seed, same stream.
        let mut r2 = SplitMix64::new(0x1234_5678);
        for &v in &first {
            assert_eq!(r2.next_u64(), v);
        }
        // Different seeds diverge immediately.
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.range_u64(100, 200);
            assert!((100..=200).contains(&v));
            let s = r.range_i64(-50, 50);
            assert!((-50..=50).contains(&s));
            let b = r.below(3);
            assert!(b < 3);
        }
        assert_eq!(r.range_u64(9, 9), 9);
        assert_eq!(r.range_i64(-4, -4), -4);
    }

    #[test]
    fn extreme_ranges() {
        let mut r = SplitMix64::new(11);
        let _ = r.range_u64(0, u64::MAX);
        let _ = r.range_i64(i64::MIN, i64::MAX);
        assert_eq!(r.bits(0), 0);
        let w = r.bits(5);
        assert!(w < 32);
        let _ = r.bits(64);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
