//! Formatting and parsing for [`Bv`]: Verilog-style sized literals.

use std::fmt;
use std::str::FromStr;

use crate::{Bv, ParseBvError};

impl Bv {
    /// Parses a `width`-bit value from digits in the given radix (2, 8, 10,
    /// or 16). Underscores are permitted as digit separators.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBvError`] if the string contains an invalid digit, is
    /// empty, the radix is unsupported, or the value does not fit in
    /// `width` bits.
    ///
    /// # Example
    ///
    /// ```
    /// # use dfv_bits::Bv;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let v = Bv::from_str_radix(12, "ABC", 16)?;
    /// assert_eq!(v.to_u64(), 0xABC);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_str_radix(width: u32, digits: &str, radix: u32) -> Result<Bv, ParseBvError> {
        if width == 0 {
            return Err(ParseBvError::new("width must be at least 1"));
        }
        if !matches!(radix, 2 | 8 | 10 | 16) {
            return Err(ParseBvError::new(format!("unsupported radix {radix}")));
        }
        let mut value = Bv::zero(width.max(64));
        let scale = Bv::from_u64(value.width(), radix as u64);
        let mut any = false;
        for ch in digits.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch.to_digit(radix).ok_or_else(|| {
                ParseBvError::new(format!("invalid digit {ch:?} for radix {radix}"))
            })?;
            // Overflow check: the pre-scale value must shrink back after.
            let next = value
                .wrapping_mul(&scale)
                .wrapping_add(&Bv::from_u64(value.width(), d as u64));
            if next.udiv(&scale).ucmp(&value) == std::cmp::Ordering::Less {
                return Err(ParseBvError::new("value does not fit working width"));
            }
            value = next;
            any = true;
        }
        if !any {
            return Err(ParseBvError::new("empty digit string"));
        }
        if value.width() > width {
            if !value.slice(value.width() - 1, width).is_zero() {
                return Err(ParseBvError::new(format!(
                    "value does not fit in {width} bits"
                )));
            }
            value = value.trunc(width);
        }
        Ok(value)
    }
}

/// Parses Verilog-style sized literals: `8'hFF`, `4'b1010`, `16'd1234`,
/// `9'o777`. The width prefix is mandatory.
impl FromStr for Bv {
    type Err = ParseBvError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (width_str, rest) = s
            .split_once('\'')
            .ok_or_else(|| ParseBvError::new("expected sized literal like 8'hFF"))?;
        let width: u32 = width_str
            .trim()
            .parse()
            .map_err(|_| ParseBvError::new(format!("invalid width {width_str:?}")))?;
        let mut chars = rest.chars();
        let radix = match chars.next() {
            Some('b' | 'B') => 2,
            Some('o' | 'O') => 8,
            Some('d' | 'D') => 10,
            Some('h' | 'H') => 16,
            other => {
                return Err(ParseBvError::new(format!(
                    "expected base character b/o/d/h, found {other:?}"
                )))
            }
        };
        Bv::from_str_radix(width, chars.as_str(), radix)
    }
}

impl fmt::Display for Bv {
    /// Displays as a sized hexadecimal literal, e.g. `8'hff`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self)
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bv({self})")
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (self.width as usize).div_ceil(4);
        let mut s = String::with_capacity(digits);
        for i in (0..digits).rev() {
            let lo = (i * 4) as u32;
            let hi = ((i * 4 + 3) as u32).min(self.width - 1);
            let nib = self.slice(hi, lo).to_u64();
            s.push(char::from_digit(nib as u32, 16).expect("nibble in range"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::UpperHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:x}").to_uppercase();
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::with_capacity(self.width as usize);
        for i in (0..self.width).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.pad_integral(true, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let v = Bv::from_u64(12, 0xABC);
        assert_eq!(v.to_string(), "12'habc");
        assert_eq!(v.to_string().parse::<Bv>().unwrap(), v);
    }

    #[test]
    fn parse_bases() {
        assert_eq!("8'hFF".parse::<Bv>().unwrap(), Bv::from_u64(8, 0xFF));
        assert_eq!("4'b1010".parse::<Bv>().unwrap(), Bv::from_u64(4, 0b1010));
        assert_eq!("16'd1234".parse::<Bv>().unwrap(), Bv::from_u64(16, 1234));
        assert_eq!("9'o777".parse::<Bv>().unwrap(), Bv::from_u64(9, 0o777));
        assert_eq!(
            "32'hdead_beef".parse::<Bv>().unwrap(),
            Bv::from_u64(32, 0xDEAD_BEEF)
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("8'hGG".parse::<Bv>().is_err());
        assert!("8FF".parse::<Bv>().is_err());
        assert!("8'h".parse::<Bv>().is_err());
        assert!("0'h1".parse::<Bv>().is_err());
        assert!("x'h1".parse::<Bv>().is_err());
        assert!("4'd100".parse::<Bv>().is_err()); // 100 does not fit in 4 bits
    }

    #[test]
    fn parse_wide_values() {
        let v: Bv = "128'hffffffffffffffffffffffffffffffff".parse().unwrap();
        assert!(v.is_ones());
        // 2^80 does not fit in 80 bits and must be rejected, not wrapped.
        assert!("80'd1208925819614629174706176".parse::<Bv>().is_err());
        let near: Bv = "80'd1208925819614629174706175".parse().unwrap(); // 2^80 - 1
        assert!(near.is_ones());
    }

    #[test]
    fn hex_binary_formatting() {
        let v = Bv::from_u64(10, 0x2A5);
        assert_eq!(format!("{v:x}"), "2a5");
        assert_eq!(format!("{v:X}"), "2A5");
        assert_eq!(format!("{v:b}"), "1010100101");
        assert_eq!(format!("{v:#x}"), "0x2a5");
        assert_eq!(format!("{:x}", Bv::zero(9)), "000");
    }
}
