//! Property tests for crash tolerance: for seeded random plans, a
//! campaign killed at a random journal point and resumed produces a
//! canonical report byte-identical to an uninterrupted run — across
//! worker counts 1 and 4 — and a chaos-injected worker panic yields a
//! quarantined `Crashed` verdict that the journal replays faithfully.
//!
//! The "kill" is simulated by truncating the journal file at a random
//! byte offset: that is exactly the on-disk state a SIGKILL can leave
//! (any prefix of the appended records, possibly ending mid-record), and
//! the checksummed journal must treat every such prefix as trustworthy
//! records + droppable tail. Randomness comes from the in-tree
//! SplitMix64, so every failure reproduces from the printed seed.

use dfv_bits::SplitMix64;
use dfv_core::{
    BlockPair, BlockStatus, Campaign, CampaignOptions, CampaignReport, ChaosPlan, IoHandle,
    JournalLoad, RetryPolicy, VerificationPlan,
};
use dfv_rtl::{Module, ModuleBuilder};
use dfv_sec::{Binding, Budget, EquivSpec};
use std::path::PathBuf;

const WORKER_COUNTS: [usize; 2] = [1, 4];

fn inc_rtl(offset: u64) -> Module {
    let mut b = ModuleBuilder::new("inc_rtl");
    let x = b.input("x", 8);
    let k = b.lit(8, offset);
    let y = b.add(x, k);
    b.output("y", y);
    b.finish().unwrap()
}

/// A block whose verdict class is drawn from the generator: pass, fail,
/// parse error, lint-blocked, or inconclusive-under-tiny-budget — the
/// journal must round-trip every one of them.
fn random_block(i: usize, rng: &mut SplitMix64) -> BlockPair {
    let name = format!("b{i}");
    let spec = EquivSpec::new(1)
        .bind("x", 0, Binding::Slm("x".into()))
        .compare("return", "y", 0);
    match rng.next_u64() % 5 {
        0 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(1),
            spec,
        },
        1 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(2), // wrong constant: NotEquivalent
            spec,
        },
        2 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8".into(), // parse error
            slm_entry: "inc".into(),
            rtl: inc_rtl(1),
            spec,
        },
        3 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8 x) { int *p = malloc(4); return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(1),
            spec,
        },
        _ => {
            // 12x12 multiplier commutativity: beyond the tiny budget below,
            // deterministically inconclusive.
            let mut rb = ModuleBuilder::new("rtl_mul");
            let a = rb.input("a", 12);
            let b = rb.input("b", 12);
            let (aw, bw) = (rb.zext(a, 24), rb.zext(b, 24));
            let y = rb.mul(bw, aw);
            rb.output("y", y);
            BlockPair {
                name,
                slm_source:
                    "uint<24> mul(uint<12> a, uint<12> b) { return (uint<24>)a * (uint<24>)b; }"
                        .into(),
                slm_entry: "mul".into(),
                rtl: rb.finish().unwrap(),
                spec: EquivSpec::new(1)
                    .bind("a", 0, Binding::Slm("a".into()))
                    .bind("b", 0, Binding::Slm("b".into()))
                    .compare("return", "y", 0),
            }
        }
    }
}

fn random_plan(seed: u64, blocks: usize) -> VerificationPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = VerificationPlan::new();
    for i in 0..blocks {
        plan = plan.block(random_block(i, &mut rng));
    }
    plan
}

fn options(workers: usize) -> CampaignOptions {
    CampaignOptions {
        retry: RetryPolicy {
            budgets: vec![Budget::unlimited().with_conflicts(50)],
            fallback_transactions: 16,
            fallback_seed: 0xFA11,
        },
        workers: Some(workers),
        ..CampaignOptions::default()
    }
}

/// Everything observable about a run except wall time and provenance:
/// the canonical JSON plus full per-block verdicts (notes included).
/// `from_journal` and durations are deliberately excluded — they are the
/// only things allowed to differ between a clean and a resumed run.
fn fingerprint(report: &CampaignReport) -> String {
    let mut s = report.to_run_report().canonical_json();
    for b in &report.blocks {
        s.push_str(&format!(
            "\n{} {:?} cache={} attempts={} lint={} solver={:?}",
            b.name, b.status, b.from_cache, b.attempts, b.lint_count, b.solver
        ));
    }
    s
}

fn temp_path(tag: &str, seed: u64, n: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dfv-prop-crash-{tag}-{seed:x}-{n}-{}.journal",
        std::process::id()
    ))
}

#[test]
fn kill_at_random_journal_point_resumes_byte_identical() {
    assert!(
        std::env::var("DFV_WORKERS").is_err(),
        "unset DFV_WORKERS to run this test"
    );
    for seed in [3u64, 0xDEAD_BEA7, 0x5EED_0006] {
        let plan = random_plan(seed, 8);

        // Uninterrupted reference run (journal-free): the ground truth the
        // resumed runs must reproduce byte for byte.
        let reference = fingerprint(&Campaign::with_options(options(1)).run(&plan));
        assert_eq!(
            reference,
            fingerprint(&Campaign::with_options(options(4)).run(&plan)),
            "seed {seed}: reference differs across worker counts"
        );

        // A full journaled run must match too (the journal is invisible
        // in the canonical report), and leaves the journal to mutilate.
        let journal = temp_path("kill", seed, 0);
        let _ = std::fs::remove_file(&journal);
        let full = Campaign::with_options(CampaignOptions {
            journal_path: Some(journal.clone()),
            ..options(2)
        })
        .run(&plan);
        assert_eq!(full.journal_load, JournalLoad::Fresh, "seed {seed}");
        assert!(full.journal_error.is_none(), "seed {seed}");
        assert_eq!(fingerprint(&full), reference, "seed {seed}: journaled run");
        let complete = std::fs::read(&journal).unwrap();

        // Kill at random points: any byte prefix of the journal is a state
        // a SIGKILL can leave. Resume from each; the canonical report must
        // be byte-identical to the uninterrupted run at every worker count.
        let mut rng = SplitMix64::new(seed ^ 0xC7A5);
        for k in 0..6u64 {
            let cut = (rng.next_u64() % (complete.len() as u64 + 1)) as usize;
            for workers in WORKER_COUNTS {
                let resumed_path = temp_path("kill", seed, 100 + k * 10 + workers as u64);
                std::fs::write(&resumed_path, &complete[..cut]).unwrap();
                let resumed = Campaign::with_options(CampaignOptions {
                    journal_path: Some(resumed_path.clone()),
                    ..options(workers)
                })
                .run(&plan);
                assert_eq!(
                    fingerprint(&resumed),
                    reference,
                    "seed {seed}, cut {cut}, workers {workers}: resumed run differs"
                );
                // And the verdicts that were journaled before the cut were
                // actually replayed, not recomputed (cut 0 and tiny cuts
                // legitimately replay nothing).
                if cut == complete.len() {
                    assert_eq!(
                        resumed.journal_replayed(),
                        plan.blocks.len(),
                        "seed {seed}: full journal must replay everything"
                    );
                }
                let _ = std::fs::remove_file(&resumed_path);
            }
        }
        let _ = std::fs::remove_file(&journal);
    }
}

#[test]
fn chaos_panic_is_quarantined_and_replays_from_journal() {
    assert!(
        std::env::var("DFV_WORKERS").is_err(),
        "unset DFV_WORKERS to run this test"
    );
    let seed = 0xB00C;
    let plan = random_plan(seed, 6);
    let victim = &plan.blocks[2].name;

    let mut reference: Option<String> = None;
    for workers in WORKER_COUNTS {
        let journal = temp_path("panic", seed, workers as u64);
        let _ = std::fs::remove_file(&journal);

        // Chaos run: the victim block's work item panics; the scheduler
        // quarantines it and every other block completes.
        let chaotic = Campaign::with_options(CampaignOptions {
            journal_path: Some(journal.clone()),
            io: IoHandle::chaos(ChaosPlan::none(seed).panic_on_block(victim)),
            ..options(workers)
        })
        .run(&plan);
        assert_eq!(chaotic.crashed(), 1, "workers {workers}");
        let BlockStatus::Crashed(payload) = &chaotic.blocks[2].status else {
            panic!(
                "workers {workers}: expected Crashed, got {:?}",
                chaotic.blocks[2].status
            );
        };
        assert_eq!(payload, &format!("chaos: injected panic in block {victim}"));
        for (i, b) in chaotic.blocks.iter().enumerate() {
            if i != 2 {
                assert!(
                    !matches!(b.status, BlockStatus::Crashed(_)),
                    "workers {workers}: block {i} must complete"
                );
            }
        }
        let print = fingerprint(&chaotic);
        match &reference {
            None => reference = Some(print),
            Some(r) => assert_eq!(&print, r, "workers {workers}: chaos run not reproducible"),
        }

        // Resume the same journal WITHOUT chaos: the crash verdict is
        // replayed (same-run resume must not silently retry it), and the
        // canonical report is byte-identical to the chaos run.
        let resumed = Campaign::with_options(CampaignOptions {
            journal_path: Some(journal.clone()),
            ..options(workers)
        })
        .run(&plan);
        assert!(
            matches!(resumed.journal_load, JournalLoad::Resumed { .. }),
            "workers {workers}: got {:?}",
            resumed.journal_load
        );
        assert!(resumed.blocks[2].from_journal, "workers {workers}");
        assert_eq!(
            fingerprint(&resumed),
            *reference.as_ref().unwrap(),
            "workers {workers}: resume after crash differs"
        );
        let _ = std::fs::remove_file(&journal);
    }
}
