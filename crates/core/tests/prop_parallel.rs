//! Property tests for the determinism contract of the parallel campaign
//! scheduler: for seeded random plans, `Campaign` and `FaultCampaign`
//! produce byte-identical canonical reports across worker counts
//! {1, 2, 4, 8} and across repeated runs at the same count — including
//! plans with cache hits, budget-exhausted (inconclusive) blocks, lint
//! and parse failures, and dirty fault-sweep baselines.
//!
//! Randomness comes from the in-tree SplitMix64 (no external deps), so
//! the test itself is reproducible.

use dfv_bits::{Bv, SplitMix64};
use dfv_core::{
    BlockPair, Campaign, CampaignOptions, CampaignReport, FaultBlock, FaultCampaign, RetryPolicy,
    VerificationPlan,
};
use dfv_cosim::{ComparatorPolicy, StreamItem};
use dfv_rtl::{Module, ModuleBuilder};
use dfv_sec::{Binding, Budget, EquivSpec};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn inc_rtl(offset: u64) -> Module {
    let mut b = ModuleBuilder::new("inc_rtl");
    let x = b.input("x", 8);
    let k = b.lit(8, offset);
    let y = b.add(x, k);
    b.output("y", y);
    b.finish().unwrap()
}

/// A block whose flavor (verdict class) is drawn from the generator:
/// pass, fail (wrong constant), parse error, lint-blocked, or a
/// multiplier too hard for the tiny test budget (inconclusive).
fn random_block(i: usize, rng: &mut SplitMix64) -> BlockPair {
    let name = format!("b{i}");
    let spec = EquivSpec::new(1)
        .bind("x", 0, Binding::Slm("x".into()))
        .compare("return", "y", 0);
    match rng.next_u64() % 5 {
        0 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(1),
            spec,
        },
        1 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(2), // wrong constant: NotEquivalent
            spec,
        },
        2 => BlockPair {
            name,
            slm_source: "uint8 inc(uint8".into(), // parse error
            slm_entry: "inc".into(),
            rtl: inc_rtl(1),
            spec,
        },
        3 => BlockPair {
            name,
            // malloc is a DFV lint error: LintBlocked.
            slm_source: "uint8 inc(uint8 x) { int *p = malloc(4); return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(1),
            spec,
        },
        _ => {
            // 12x12 multiplier commutativity: genuinely equivalent but far
            // beyond the tiny conflict budget below — deterministically
            // Inconclusive with seeded falsification evidence.
            let mut rb = ModuleBuilder::new("rtl_mul");
            let a = rb.input("a", 12);
            let b = rb.input("b", 12);
            let (aw, bw) = (rb.zext(a, 24), rb.zext(b, 24));
            let y = rb.mul(bw, aw);
            rb.output("y", y);
            BlockPair {
                name,
                slm_source:
                    "uint<24> mul(uint<12> a, uint<12> b) { return (uint<24>)a * (uint<24>)b; }"
                        .into(),
                slm_entry: "mul".into(),
                rtl: rb.finish().unwrap(),
                spec: EquivSpec::new(1)
                    .bind("a", 0, Binding::Slm("a".into()))
                    .bind("b", 0, Binding::Slm("b".into()))
                    .compare("return", "y", 0),
            }
        }
    }
}

fn random_plan(seed: u64, blocks: usize) -> VerificationPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = VerificationPlan::new();
    for i in 0..blocks {
        plan = plan.block(random_block(i, &mut rng));
    }
    plan
}

fn options(workers: usize) -> CampaignOptions {
    CampaignOptions {
        // A tiny budget keeps the hard blocks bounded (and inconclusive);
        // the seeded fallback keeps their evidence deterministic.
        retry: RetryPolicy {
            budgets: vec![Budget::unlimited().with_conflicts(50)],
            fallback_transactions: 16,
            fallback_seed: 0xFA11,
        },
        deadline: None,
        cache_path: None,
        workers: Some(workers),
        ..CampaignOptions::default()
    }
}

/// Everything observable about a run except wall time: the canonical
/// JSON plus the full per-block verdicts (status notes included, which
/// the canonical JSON elides).
fn fingerprint(report: &CampaignReport) -> String {
    let mut s = report.to_run_report().canonical_json();
    for b in &report.blocks {
        s.push_str(&format!(
            "\n{} {:?} cache={} attempts={} lint={}",
            b.name,
            b.status,
            b.from_cache,
            b.attempts,
            b.lint_findings.len()
        ));
    }
    s
}

#[test]
fn campaign_reports_are_byte_identical_across_worker_counts() {
    // DFV_WORKERS would override the per-run worker counts under test.
    assert!(
        std::env::var("DFV_WORKERS").is_err(),
        "unset DFV_WORKERS to run this test"
    );
    let mut covered_inconclusive = false;
    for seed in [1u64, 0xDF5, 0xB10C_5EED] {
        let plan = random_plan(seed, 8);
        let mut reference: Option<(String, String)> = None;
        for workers in WORKER_COUNTS {
            // Cold run, then a warm run over the same campaign so cached
            // verdicts participate too.
            let mut campaign = Campaign::with_options(options(workers));
            let cold = fingerprint(&campaign.run(&plan));
            let warm_report = campaign.run(&plan);
            assert!(warm_report.cache_hits() > 0, "seed {seed}: no cache hits");
            let warm = fingerprint(&warm_report);
            covered_inconclusive |= cold.contains("Inconclusive");
            match &reference {
                None => reference = Some((cold, warm)),
                Some((c, w)) => {
                    assert_eq!(&cold, c, "seed {seed}, workers {workers}: cold run differs");
                    assert_eq!(&warm, w, "seed {seed}, workers {workers}: warm run differs");
                }
            }
        }
    }
    // The generator must exercise the budget-exhausted path, not just
    // pass/fail/error/lint.
    assert!(
        covered_inconclusive,
        "no seed produced an inconclusive block"
    );
}

#[test]
fn campaign_repeated_runs_at_same_worker_count_are_identical() {
    let plan = random_plan(0xCAFE, 6);
    for workers in [2, 8] {
        let r1 = fingerprint(&Campaign::with_options(options(workers)).run(&plan));
        let r2 = fingerprint(&Campaign::with_options(options(workers)).run(&plan));
        assert_eq!(r1, r2, "workers {workers}: repeated cold runs differ");
    }
}

fn random_stream(rng: &mut SplitMix64, n: u64, constant: bool) -> Vec<StreamItem> {
    let base = rng.next_u64() % 0x1000;
    (0..n)
        .map(|i| StreamItem {
            value: Bv::from_u64(16, if constant { base } else { base + i }),
            time: i * 3,
        })
        .collect()
}

fn random_fault_blocks(seed: u64, n: usize) -> Vec<FaultBlock> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let flavor = rng.next_u64() % 4;
            let stream = random_stream(&mut rng, 48, flavor == 1);
            let mut actual = stream.clone();
            if flavor == 2 {
                // Dirty baseline: rejected before any injection.
                actual[0].value = Bv::from_u64(16, 0xBAD);
            }
            FaultBlock {
                name: format!("fb{i}"),
                expected: stream,
                actual,
                policy: if flavor == 3 {
                    ComparatorPolicy::Exact
                } else {
                    ComparatorPolicy::InOrder {
                        tolerance: u64::MAX,
                        max_skew: None,
                    }
                },
            }
        })
        .collect()
}

#[test]
fn fault_campaign_reports_are_byte_identical_across_worker_counts() {
    assert!(
        std::env::var("DFV_WORKERS").is_err(),
        "unset DFV_WORKERS to run this test"
    );
    for seed in [7u64, 0xF00D, 0xFEED_5EED] {
        let blocks = random_fault_blocks(seed, 9);
        let mut reference: Option<(String, String)> = None;
        for workers in WORKER_COUNTS {
            let campaign = FaultCampaign::new(seed).with_workers(workers);
            let report = campaign.run(&blocks);
            let canon = report.to_run_report().canonical_json();
            let text = report.to_string();
            match &reference {
                None => {
                    // The generator must exercise the interesting paths.
                    assert!(
                        !report.baseline_errors.is_empty(),
                        "seed {seed}: no dirty baseline generated"
                    );
                    assert!(!report.cases.is_empty());
                    reference = Some((canon, text));
                }
                Some((c, t)) => {
                    assert_eq!(&canon, c, "seed {seed}, workers {workers}: JSON differs");
                    assert_eq!(&text, t, "seed {seed}, workers {workers}: text differs");
                }
            }
        }
        // And repeated runs at one count reproduce byte-for-byte.
        let again = FaultCampaign::new(seed)
            .with_workers(4)
            .run(&blocks)
            .to_run_report()
            .canonical_json();
        assert_eq!(again, reference.unwrap().0);
    }
}
