//! Crash-safe on-disk persistence for the campaign's incremental cache.
//!
//! The paper's incremental-SEC payoff only survives a process restart if
//! the per-block verdicts do, so a [`crate::Campaign`] can persist its
//! cache to a plain-text file (version 1, UTF-8, one record per line):
//!
//! ```text
//! dfv-campaign-cache v1
//! checksum <16 hex digits>
//! entry<TAB><name><TAB><content hash, 16 hex><TAB><status tag><TAB><note>
//! ```
//!
//! The checksum is FNV-1a over the raw bytes of the entry section, so a
//! truncated or bit-flipped file is detected on load — the campaign then
//! starts cold and rebuilds the file, rather than trusting (or panicking
//! on) bad verdicts. Saves write a sibling `.tmp` file and atomically
//! rename it over the old cache, so a crash mid-save leaves the previous
//! cache intact.
//!
//! Only *conclusive* verdicts (`pass`, `lint`, `fail`, `error`) are
//! persisted: an [`crate::BlockStatus::Inconclusive`] block must be retried
//! on the next run (possibly under a bigger budget), not replayed. Lint
//! findings and solver statistics are not persisted; a disk-served
//! [`BlockResult`] carries only the verdict.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::{BlockResult, BlockStatus};

/// First line of every cache file.
const MAGIC: &str = "dfv-campaign-cache v1";

/// What happened when a campaign tried to load its persisted cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CacheLoad {
    /// No persistence configured (in-memory campaign).
    #[default]
    Disabled,
    /// No cache file existed yet (first run on this path).
    Missing,
    /// The cache file was read, checksum-verified, and parsed.
    Loaded {
        /// Number of block verdicts recovered.
        entries: usize,
    },
    /// The file was unreadable, malformed, truncated, or failed its
    /// checksum. The campaign starts cold and rebuilds it on the next save.
    Corrupt {
        /// What exactly was wrong with the file.
        reason: String,
    },
}

/// Incremental FNV-1a-64 hasher — shared by the cache checksum and
/// [`crate::BlockPair::content_hash`]. No dependencies, stable across
/// platforms and runs (unlike `DefaultHasher`).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape sequence \\{other:?}")),
        }
    }
    Ok(out)
}

/// Renders the conclusive entries of `cache` in the on-disk format.
pub(crate) fn serialize(cache: &HashMap<String, (u64, BlockResult)>) -> String {
    let mut names: Vec<&String> = cache.keys().collect();
    names.sort();
    let mut body = String::new();
    for name in names {
        let (hash, r) = &cache[name.as_str()];
        let (tag, note) = match &r.status {
            BlockStatus::Pass => ("pass", String::new()),
            BlockStatus::LintBlocked => ("lint", String::new()),
            BlockStatus::NotEquivalent(n) => ("fail", n.clone()),
            BlockStatus::Error(n) => ("error", n.clone()),
            BlockStatus::Inconclusive(_) => continue,
        };
        body.push_str(&format!(
            "entry\t{}\t{:016x}\t{}\t{}\n",
            escape(name),
            hash,
            tag,
            escape(&note)
        ));
    }
    let mut f = Fnv::new();
    f.write(body.as_bytes());
    format!("{MAGIC}\nchecksum {:016x}\n{body}", f.finish())
}

/// Parses a cache file's full text, verifying the checksum.
pub(crate) fn deserialize(text: &str) -> Result<HashMap<String, (u64, BlockResult)>, String> {
    let rest = text
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or_else(|| format!("bad magic (expected {MAGIC:?})"))?;
    let (ck_line, body) = rest
        .split_once('\n')
        .ok_or("missing checksum line".to_string())?;
    let ck_hex = ck_line
        .strip_prefix("checksum ")
        .ok_or_else(|| format!("malformed checksum line {ck_line:?}"))?;
    let want =
        u64::from_str_radix(ck_hex, 16).map_err(|_| format!("malformed checksum {ck_hex:?}"))?;
    let mut f = Fnv::new();
    f.write(body.as_bytes());
    if f.finish() != want {
        return Err("checksum mismatch: cache file is truncated or corrupted".into());
    }
    let mut map = HashMap::new();
    for line in body.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 || fields[0] != "entry" {
            return Err(format!("malformed entry line {line:?}"));
        }
        let name = unescape(fields[1])?;
        let hash = u64::from_str_radix(fields[2], 16)
            .map_err(|_| format!("malformed content hash {:?}", fields[2]))?;
        let note = unescape(fields[4])?;
        let status = match fields[3] {
            "pass" => BlockStatus::Pass,
            "lint" => BlockStatus::LintBlocked,
            "fail" => BlockStatus::NotEquivalent(note),
            "error" => BlockStatus::Error(note),
            tag => return Err(format!("unknown status tag {tag:?}")),
        };
        let result = BlockResult {
            name: name.clone(),
            status,
            lint_findings: Vec::new(),
            equiv: None,
            duration: Duration::ZERO,
            from_cache: false,
            attempts: 0,
        };
        if map.insert(name.clone(), (hash, result)).is_some() {
            return Err(format!("duplicate entry for block {name:?}"));
        }
    }
    Ok(map)
}

/// Loads the cache at `path`. Never fails: a missing file starts the
/// campaign cold, and a corrupt one does too (with the reason reported), so
/// a damaged cache can only cost re-verification time, never correctness.
pub(crate) fn load(path: &Path) -> (HashMap<String, (u64, BlockResult)>, CacheLoad) {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return (HashMap::new(), CacheLoad::Missing)
        }
        Err(e) => {
            return (
                HashMap::new(),
                CacheLoad::Corrupt {
                    reason: format!("read {}: {e}", path.display()),
                },
            )
        }
    };
    match deserialize(&text) {
        Ok(map) => {
            let entries = map.len();
            (map, CacheLoad::Loaded { entries })
        }
        Err(reason) => (HashMap::new(), CacheLoad::Corrupt { reason }),
    }
}

/// Atomically persists `cache` to `path` (write `.tmp` sibling, fsync,
/// rename, fsync the parent directory).
///
/// The final directory fsync matters: `rename` makes the new file visible,
/// but on filesystems that journal data and metadata separately a crash
/// right after the rename can still roll the *directory entry* back to the
/// old (or no) file. Syncing the parent directory makes the rename itself
/// durable. A pre-existing stale `.tmp` (from a crash mid-save) is simply
/// overwritten by the next save.
pub(crate) fn save(path: &Path, cache: &HashMap<String, (u64, BlockResult)>) -> Result<(), String> {
    let data = serialize(cache);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let write = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(data.as_bytes())?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // An empty parent means a relative path in the current directory.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        // Directory fsync is best-effort where the platform disallows
        // opening directories for sync (the rename is already atomic;
        // only crash-durability of the rename would be at stake).
        if let Ok(dir) = fs::File::open(parent) {
            dir.sync_all()?;
        }
        Ok(())
    })();
    write.map_err(|e| format!("persist cache to {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(status: BlockStatus) -> (u64, BlockResult) {
        (
            0xDEAD_BEEF_0123_4567,
            BlockResult {
                name: "x".into(),
                status,
                lint_findings: Vec::new(),
                equiv: None,
                duration: Duration::ZERO,
                from_cache: false,
                attempts: 0,
            },
        )
    }

    #[test]
    fn roundtrip_preserves_verdicts_and_hashes() {
        let mut cache = HashMap::new();
        cache.insert("plain".to_string(), entry(BlockStatus::Pass));
        cache.insert(
            "with\ttab\nand newline".to_string(),
            entry(BlockStatus::NotEquivalent("cex: a=1\tb=2".into())),
        );
        cache.insert("lints".to_string(), entry(BlockStatus::LintBlocked));
        cache.insert(
            "err".to_string(),
            entry(BlockStatus::Error("parse: nope".into())),
        );
        let text = serialize(&cache);
        let back = deserialize(&text).unwrap();
        assert_eq!(back.len(), 4);
        for (name, (hash, r)) in &cache {
            let (h2, r2) = &back[name];
            assert_eq!(h2, hash);
            assert_eq!(r2.status, r.status);
        }
    }

    #[test]
    fn inconclusive_verdicts_are_not_persisted() {
        let mut cache = HashMap::new();
        cache.insert("ok".to_string(), entry(BlockStatus::Pass));
        cache.insert(
            "undecided".to_string(),
            entry(BlockStatus::Inconclusive("budget ran out".into())),
        );
        let back = deserialize(&serialize(&cache)).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.contains_key("ok"));
    }

    #[test]
    fn truncation_and_corruption_are_detected() {
        let mut cache = HashMap::new();
        cache.insert("a".to_string(), entry(BlockStatus::Pass));
        cache.insert(
            "b".to_string(),
            entry(BlockStatus::NotEquivalent("cex".into())),
        );
        let text = serialize(&cache);

        // Truncating the body trips the checksum.
        let truncated = &text[..text.len() - 10];
        assert!(deserialize(truncated).unwrap_err().contains("checksum"));

        // Flipping a verdict byte trips the checksum too.
        let flipped = text.replacen("fail", "pass", 1);
        assert!(deserialize(&flipped).unwrap_err().contains("checksum"));

        // Garbage and wrong versions are rejected up front.
        assert!(deserialize("not a cache").unwrap_err().contains("magic"));
        assert!(deserialize("dfv-campaign-cache v99\nchecksum 0\n")
            .unwrap_err()
            .contains("magic"));
    }

    #[test]
    fn empty_cache_roundtrips() {
        let cache = HashMap::new();
        let back = deserialize(&serialize(&cache)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn save_survives_a_preexisting_stale_tmp() {
        // A crash between writing `.tmp` and the rename leaves the stale
        // temp file behind; the next save must overwrite it and still
        // produce a loadable cache.
        let path = std::env::temp_dir().join(format!(
            "dfv-cache-stale-{}-{:?}.cache",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let _ = fs::remove_file(&path);
        fs::write(&tmp, "!! stale temp left by a crashed save !!").unwrap();

        let mut cache = HashMap::new();
        cache.insert("a".to_string(), entry(BlockStatus::Pass));
        save(&path, &cache).unwrap();

        // The rename consumed the temp file and the saved cache loads clean.
        assert!(!tmp.exists(), "stale .tmp must be consumed by the rename");
        let (loaded, status) = load(&path);
        assert_eq!(status, CacheLoad::Loaded { entries: 1 });
        assert!(loaded.contains_key("a"));
        let _ = fs::remove_file(&path);
    }
}
