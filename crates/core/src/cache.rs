//! Crash-safe on-disk persistence for the campaign's incremental cache.
//!
//! The paper's incremental-SEC payoff only survives a process restart if
//! the per-block verdicts do, so a [`crate::Campaign`] can persist its
//! cache to a plain-text file (version 2, UTF-8, one record per line):
//!
//! ```text
//! dfv-campaign-cache v2
//! entry<TAB><name><TAB><content hash, 16 hex><TAB><status tag><TAB><note><TAB><checksum, 16 hex>
//! ```
//!
//! Each record carries its own FNV-1a checksum over the fields before it,
//! so corruption is contained: a truncated or bit-flipped record is
//! dropped as a miss *for that entry only* and the rest of the file is
//! recovered ([`CacheLoad::Recovered`]) — v1 discarded the whole file on
//! any damage, forfeiting every other verdict. Saves write a sibling
//! `.tmp` file and atomically rename it over the old cache, so a crash
//! mid-save leaves the previous cache intact.
//!
//! All file operations go through the campaign's [`crate::IoHandle`], so
//! the chaos harness ([`crate::chaos`]) can inject torn writes and bit
//! flips and *test* this recovery path. I/O failures surface as typed
//! [`PersistError`]s that the campaign degrades on (cache-off operation),
//! never panics.
//!
//! Only *conclusive* verdicts (`pass`, `lint`, `fail`, `error`) are
//! persisted: an [`crate::BlockStatus::Inconclusive`] block must be retried
//! on the next run (possibly under a bigger budget), not replayed. Lint
//! findings and solver statistics are not persisted; a disk-served
//! [`BlockResult`] carries only the verdict.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::chaos::IoHandle;
use crate::{BlockResult, BlockStatus, SolverTotals};

/// First line of every cache file.
const MAGIC: &str = "dfv-campaign-cache v2";

/// A typed persistence failure: which operation, on which path, and why.
///
/// Campaign persistence never panics on I/O — every failure becomes one of
/// these and the campaign degrades (cache disabled, journal disabled) while
/// still completing its verification work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// The operation that failed (`"read"`, `"write"`, `"append"`, ...).
    pub op: &'static str,
    /// The file involved, as given.
    pub path: String,
    /// The underlying error text.
    pub msg: String,
}

impl PersistError {
    /// Wraps an `io::Error` from `op` on `path`.
    pub fn io(op: &'static str, path: &Path, err: &io::Error) -> Self {
        PersistError {
            op,
            path: path.display().to_string(),
            msg: err.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path, self.msg)
    }
}

impl Error for PersistError {}

/// What happened when a campaign tried to load its persisted cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CacheLoad {
    /// No persistence configured (in-memory campaign).
    #[default]
    Disabled,
    /// No cache file existed yet (first run on this path).
    Missing,
    /// The cache file was read and every record passed its checksum.
    Loaded {
        /// Number of block verdicts recovered.
        entries: usize,
    },
    /// The file had damaged records (torn tail, bit rot); the intact ones
    /// were recovered and the damaged ones count as misses.
    Recovered {
        /// Number of block verdicts recovered.
        entries: usize,
        /// Number of damaged records dropped.
        dropped: usize,
    },
    /// The file was unreadable or not a cache file at all (bad magic).
    /// The campaign starts cold and rebuilds it on the next save.
    Corrupt {
        /// What exactly was wrong with the file.
        reason: String,
    },
}

/// Incremental FNV-1a-64 hasher — shared by the cache and journal record
/// checksums and [`crate::BlockPair::content_hash`]. No dependencies,
/// stable across platforms and runs (unlike `DefaultHasher`).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of a full byte slice (record-checksum helper).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.write(bytes);
    f.finish()
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape sequence \\{other:?}")),
        }
    }
    Ok(out)
}

/// The status tag persisted for a conclusive verdict, if it has one.
pub(crate) fn status_tag(status: &BlockStatus) -> Option<(&'static str, String)> {
    match status {
        BlockStatus::Pass => Some(("pass", String::new())),
        BlockStatus::LintBlocked => Some(("lint", String::new())),
        BlockStatus::NotEquivalent(n) => Some(("fail", n.clone())),
        BlockStatus::Error(n) => Some(("error", n.clone())),
        BlockStatus::Inconclusive(_) | BlockStatus::Crashed(_) => None,
    }
}

/// Parses a persisted status tag back into a [`BlockStatus`].
pub(crate) fn status_from_tag(tag: &str, note: String) -> Result<BlockStatus, String> {
    match tag {
        "pass" => Ok(BlockStatus::Pass),
        "lint" => Ok(BlockStatus::LintBlocked),
        "fail" => Ok(BlockStatus::NotEquivalent(note)),
        "error" => Ok(BlockStatus::Error(note)),
        "inconc" => Ok(BlockStatus::Inconclusive(note)),
        "crash" => Ok(BlockStatus::Crashed(note)),
        tag => Err(format!("unknown status tag {tag:?}")),
    }
}

/// A verdict-only [`BlockResult`] as reconstructed from disk.
pub(crate) fn disk_result(name: &str, status: BlockStatus) -> BlockResult {
    BlockResult {
        name: name.to_string(),
        status,
        lint_findings: Vec::new(),
        lint_count: 0,
        equiv: None,
        solver: SolverTotals::default(),
        duration: Duration::ZERO,
        from_cache: false,
        from_journal: false,
        attempts: 0,
    }
}

/// Renders the conclusive entries of `cache` in the on-disk format.
pub(crate) fn serialize(cache: &HashMap<String, (u64, BlockResult)>) -> String {
    let mut names: Vec<&String> = cache.keys().collect();
    names.sort();
    let mut out = format!("{MAGIC}\n");
    for name in names {
        let (hash, r) = &cache[name.as_str()];
        let Some((tag, note)) = status_tag(&r.status) else {
            continue;
        };
        let payload = format!(
            "{}\t{:016x}\t{}\t{}",
            escape(name),
            hash,
            tag,
            escape(&note)
        );
        out.push_str(&format!(
            "entry\t{payload}\t{:016x}\n",
            fnv64(payload.as_bytes())
        ));
    }
    out
}

/// Parses a cache file's full text.
///
/// Only a missing/mismatched magic line is a hard error — any damaged
/// *record* (truncated line, failed checksum, malformed field) is dropped
/// and counted, and every intact record is recovered.
#[allow(clippy::type_complexity)]
pub(crate) fn deserialize(
    text: &str,
) -> Result<(HashMap<String, (u64, BlockResult)>, usize), String> {
    let body = text
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
        .ok_or_else(|| format!("bad magic (expected {MAGIC:?})"))?;
    let mut map = HashMap::new();
    let mut dropped = 0usize;
    for line in body.lines() {
        match parse_entry(line) {
            Some((name, hash, status)) => {
                let result = disk_result(&name, status);
                // Two records for one block can only come from damage
                // (serialize writes each name once): trust neither.
                if map.insert(name, (hash, result)).is_some() {
                    dropped += 1;
                }
            }
            None => dropped += 1,
        }
    }
    Ok((map, dropped))
}

/// Parses and checksum-verifies one `entry` line; `None` means damaged.
fn parse_entry(line: &str) -> Option<(String, u64, BlockStatus)> {
    let payload_ck = line.strip_prefix("entry\t")?;
    let (payload, ck_hex) = payload_ck.rsplit_once('\t')?;
    let want = u64::from_str_radix(ck_hex, 16).ok()?;
    if fnv64(payload.as_bytes()) != want {
        return None;
    }
    let fields: Vec<&str> = payload.split('\t').collect();
    if fields.len() != 4 {
        return None;
    }
    let name = unescape(fields[0]).ok()?;
    let hash = u64::from_str_radix(fields[1], 16).ok()?;
    let note = unescape(fields[3]).ok()?;
    let status = status_from_tag(fields[2], note).ok()?;
    Some((name, hash, status))
}

/// Loads the cache at `path` through `io`. Never fails: a missing file
/// starts the campaign cold, a damaged record costs only that record, and
/// an unreadable file costs only re-verification time, never correctness.
pub(crate) fn load(path: &Path, io: &IoHandle) -> (HashMap<String, (u64, BlockResult)>, CacheLoad) {
    let text = match io.shim().read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == ErrorKind::NotFound => return (HashMap::new(), CacheLoad::Missing),
        Err(e) => {
            return (
                HashMap::new(),
                CacheLoad::Corrupt {
                    reason: PersistError::io("read", path, &e).to_string(),
                },
            )
        }
    };
    match deserialize(&text) {
        Ok((map, 0)) => {
            let entries = map.len();
            (map, CacheLoad::Loaded { entries })
        }
        Ok((map, dropped)) => {
            let entries = map.len();
            (map, CacheLoad::Recovered { entries, dropped })
        }
        Err(reason) => (HashMap::new(), CacheLoad::Corrupt { reason }),
    }
}

/// The sibling temp path a save stages through.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    PathBuf::from(tmp_name)
}

/// The parent directory to fsync after a rename into `path`.
pub(crate) fn parent_dir(path: &Path) -> &Path {
    // An empty parent means a relative path in the current directory.
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Atomically persists `cache` to `path` through `io` (write `.tmp`
/// sibling, fsync, rename, fsync the parent directory).
///
/// The final directory fsync matters: `rename` makes the new file visible,
/// but on filesystems that journal data and metadata separately a crash
/// right after the rename can still roll the *directory entry* back to the
/// old (or no) file. Syncing the parent directory makes the rename itself
/// durable. A pre-existing stale `.tmp` (from a crash mid-save) is simply
/// overwritten by the next save.
///
/// The whole sequence runs under the sibling advisory lock
/// ([`crate::lockfile`]): two processes saving the same cache would
/// otherwise race tmp-writes and renames and silently drop each other's
/// verdicts. A lock held by a live process is a typed `"lock"` failure —
/// the campaign degrades to cache-off, exactly like any other persistence
/// error. (Loading needs no lock: saves are atomic renames, so a reader
/// always sees a complete previous file.)
pub(crate) fn save(
    path: &Path,
    cache: &HashMap<String, (u64, BlockResult)>,
    io: &IoHandle,
) -> Result<(), PersistError> {
    let _lock = crate::lockfile::FileLock::acquire(path, io)?;
    let data = serialize(cache);
    let tmp = tmp_path(path);
    let shim = io.shim();
    shim.write(&tmp, data.as_bytes())
        .map_err(|e| PersistError::io("write", &tmp, &e))?;
    shim.rename(&tmp, path)
        .map_err(|e| PersistError::io("rename", path, &e))?;
    shim.sync_dir(parent_dir(path))
        .map_err(|e| PersistError::io("sync_dir", path, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosIo, ChaosPlan, IoShim, RealIo};
    use std::fs;
    use std::sync::Arc;

    fn entry(status: BlockStatus) -> (u64, BlockResult) {
        (0xDEAD_BEEF_0123_4567, disk_result("x", status))
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dfv-cache-{tag}-{}-{:?}.cache",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn roundtrip_preserves_verdicts_and_hashes() {
        let mut cache = HashMap::new();
        cache.insert("plain".to_string(), entry(BlockStatus::Pass));
        cache.insert(
            "with\ttab\nand newline".to_string(),
            entry(BlockStatus::NotEquivalent("cex: a=1\tb=2".into())),
        );
        cache.insert("lints".to_string(), entry(BlockStatus::LintBlocked));
        cache.insert(
            "err".to_string(),
            entry(BlockStatus::Error("parse: nope".into())),
        );
        let text = serialize(&cache);
        let (back, dropped) = deserialize(&text).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(back.len(), 4);
        for (name, (hash, r)) in &cache {
            let (h2, r2) = &back[name];
            assert_eq!(h2, hash);
            assert_eq!(r2.status, r.status);
        }
    }

    #[test]
    fn inconclusive_and_crashed_verdicts_are_not_persisted() {
        let mut cache = HashMap::new();
        cache.insert("ok".to_string(), entry(BlockStatus::Pass));
        cache.insert(
            "undecided".to_string(),
            entry(BlockStatus::Inconclusive("budget ran out".into())),
        );
        cache.insert(
            "boom".to_string(),
            entry(BlockStatus::Crashed("worker panic".into())),
        );
        let (back, dropped) = deserialize(&serialize(&cache)).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(back.len(), 1);
        assert!(back.contains_key("ok"));
    }

    #[test]
    fn damaged_record_is_dropped_and_the_rest_recovered() {
        let mut cache = HashMap::new();
        cache.insert("a".to_string(), entry(BlockStatus::Pass));
        cache.insert(
            "b".to_string(),
            entry(BlockStatus::NotEquivalent("cex".into())),
        );
        cache.insert("c".to_string(), entry(BlockStatus::Pass));
        let text = serialize(&cache);

        // Truncating the last record loses only that record.
        let truncated = &text[..text.len() - 10];
        let (back, dropped) = deserialize(truncated).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(back.len(), 2);

        // Flipping a verdict byte trips that record's checksum only.
        let flipped = text.replacen("fail", "pass", 1);
        let (back, dropped) = deserialize(&flipped).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(back.len(), 2);
        assert!(!back.contains_key("b"), "the damaged record is a miss");

        // Garbage and wrong versions are still rejected up front.
        assert!(deserialize("not a cache").unwrap_err().contains("magic"));
        assert!(deserialize("dfv-campaign-cache v99\n")
            .unwrap_err()
            .contains("magic"));
    }

    #[test]
    fn bitflip_via_chaos_shim_recovers_other_entries() {
        let path = temp("flip");
        let mut cache = HashMap::new();
        for name in ["alpha", "beta", "gamma", "delta"] {
            cache.insert(name.to_string(), entry(BlockStatus::Pass));
        }
        let real = IoHandle::real();
        save(&path, &cache, &real).unwrap();

        // Read it back through a shim that flips one bit somewhere in the
        // file. Whatever the bit hits — a name, a hash, a checksum — at
        // most one record may be lost, and often zero (magic-line flips
        // aside, which we exclude by flipping within the entry section).
        let mut recovered_total = 0;
        for seed in 0..16u64 {
            let io = IoHandle::new(Arc::new(ChaosIo::new(
                ChaosPlan::none(seed).bitflip_nth_read(1),
            )));
            let (map, status) = load(&path, &io);
            match status {
                CacheLoad::Loaded { entries } => assert_eq!(entries, 4),
                CacheLoad::Recovered { entries, dropped } => {
                    assert!(entries >= 3, "at most one record lost per flip");
                    assert_eq!(dropped, 1);
                }
                // A flip on the magic line rejects the file wholesale;
                // that is correct (can't trust the format version).
                CacheLoad::Corrupt { .. } => continue,
                other => panic!("unexpected load status {other:?}"),
            }
            recovered_total += map.len();
        }
        assert!(recovered_total > 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_save_leaves_previous_cache_intact() {
        let path = temp("torn");
        let mut cache = HashMap::new();
        cache.insert("a".to_string(), entry(BlockStatus::Pass));
        let real = IoHandle::real();
        save(&path, &cache, &real).unwrap();

        // A torn write of the *temp* file fails the save, but the rename
        // never happens, so the old cache is untouched. (Durable write #1
        // is the advisory lock creation; #2 is the tmp file.)
        cache.insert("b".to_string(), entry(BlockStatus::Pass));
        let io = IoHandle::new(Arc::new(ChaosIo::new(ChaosPlan::none(9).torn_nth_write(2))));
        let err = save(&path, &cache, &io).unwrap_err();
        assert_eq!(err.op, "write");
        let (map, status) = load(&path, &real);
        assert_eq!(status, CacheLoad::Loaded { entries: 1 });
        assert!(map.contains_key("a"));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(tmp_path(&path));
    }

    #[test]
    fn failed_rename_or_enospc_during_save_preserves_previous_cache() {
        let path = temp("rename-fail");
        let mut cache = HashMap::new();
        cache.insert("a".to_string(), entry(BlockStatus::Pass));
        let real = IoHandle::real();
        save(&path, &cache, &real).unwrap();
        let before = fs::read_to_string(&path).unwrap();

        // The rename itself fails: typed error, old cache byte-identical.
        cache.insert("b".to_string(), entry(BlockStatus::Pass));
        let io = IoHandle::new(Arc::new(ChaosIo::new(
            ChaosPlan::none(0).fail_nth_rename(1),
        )));
        let err = save(&path, &cache, &io).unwrap_err();
        assert_eq!(err.op, "rename");
        assert_eq!(fs::read_to_string(&path).unwrap(), before);
        let (map, status) = load(&path, &real);
        assert_eq!(status, CacheLoad::Loaded { entries: 1 });
        assert!(map.contains_key("a"));

        // ENOSPC on the tmp write (after the ~25-byte lock file fits in
        // the budget): also typed, also leaves the old cache untouched.
        let io = IoHandle::new(Arc::new(ChaosIo::new(
            ChaosPlan::none(0).enospc_after_bytes(40),
        )));
        let err = save(&path, &cache, &io).unwrap_err();
        assert_eq!(err.op, "write");
        assert!(err.msg.contains("ENOSPC"), "{err}");
        assert_eq!(fs::read_to_string(&path).unwrap(), before);

        // With the fault gone the save goes through.
        save(&path, &cache, &real).unwrap();
        let (map, status) = load(&path, &real);
        assert_eq!(status, CacheLoad::Loaded { entries: 2 });
        assert!(map.contains_key("b"));
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(tmp_path(&path));
    }

    #[test]
    fn unreadable_file_degrades_to_corrupt_not_panic() {
        let path = temp("unreadable");
        RealIo.write(&path, b"\x00\xffnot a cache at all").unwrap();
        let (map, status) = load(&path, &IoHandle::real());
        assert!(map.is_empty());
        assert!(matches!(status, CacheLoad::Corrupt { .. }));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_cache_roundtrips() {
        let cache = HashMap::new();
        let (back, dropped) = deserialize(&serialize(&cache)).unwrap();
        assert!(back.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn save_survives_a_preexisting_stale_tmp() {
        // A crash between writing `.tmp` and the rename leaves the stale
        // temp file behind; the next save must overwrite it and still
        // produce a loadable cache.
        let path = temp("stale");
        let tmp = tmp_path(&path);
        let _ = fs::remove_file(&path);
        fs::write(&tmp, "!! stale temp left by a crashed save !!").unwrap();

        let mut cache = HashMap::new();
        cache.insert("a".to_string(), entry(BlockStatus::Pass));
        let real = IoHandle::real();
        save(&path, &cache, &real).unwrap();

        // The rename consumed the temp file and the saved cache loads clean.
        assert!(!tmp.exists(), "stale .tmp must be consumed by the rename");
        let (loaded, status) = load(&path, &real);
        assert_eq!(status, CacheLoad::Loaded { entries: 1 });
        assert!(loaded.contains_key("a"));
        let _ = fs::remove_file(&path);
    }
}
