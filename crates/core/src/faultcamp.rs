//! Fault-injection campaigns: sweeping the interface-fault taxonomy over
//! verified block pairs and classifying every injected hazard.
//!
//! The equivalence campaign (this crate's root module) answers "is the
//! computation right?". This module answers the robustness question next
//! to it: **if the interface misbehaves, does the verification flow
//! notice?** For each block it replays the SLM/RTL output streams through
//! the block's declared [`ComparatorPolicy`] once per fault class
//! ([`FaultKind::ALL`]), with the faults injected by a seeded
//! [`FaultPlan`], and classifies the outcome:
//!
//! * [`FaultVerdict::Detected`] — the comparator flagged a mismatch, with
//!   cycle/transaction provenance from both the fault log and the
//!   mismatch list;
//! * [`FaultVerdict::Tolerated`] — the run was clean *and* the policy
//!   declares tolerance for that class at that intensity
//!   ([`ComparatorPolicy::tolerates`]) — absorption by design;
//! * [`FaultVerdict::Masked`] — the run was clean but the policy does
//!   **not** declare tolerance: a genuine escape, the class of bug this
//!   campaign exists to surface;
//! * [`FaultVerdict::NotInjected`] — the seeded plan happened to fire
//!   zero times (possible on very short streams); the cell is reported,
//!   never silently counted as tolerated.
//!
//! The whole sweep is a pure function of the campaign seed: per-cell
//! seeds are derived by mixing the campaign seed with the block and
//! fault-class indices through SplitMix64, so two runs render
//! byte-for-byte identical reports.

use std::fmt;

use dfv_bits::SplitMix64;
use dfv_cosim::{replay, ComparatorPolicy, FaultKind, FaultPlan, StreamItem};
use dfv_obs::{Json, RunReport};

/// One block's streams and declared comparison policy, as a fault-sweep
/// subject.
#[derive(Debug, Clone)]
pub struct FaultBlock {
    /// Block name (unique within a sweep).
    pub name: String,
    /// The golden (SLM) output stream.
    pub expected: Vec<StreamItem>,
    /// The clean RTL output stream — the baseline the faults perturb. It
    /// must compare clean against `expected` under `policy`, or the block
    /// is rejected before any injection (a dirty baseline makes fault
    /// verdicts unattributable).
    pub actual: Vec<StreamItem>,
    /// The declared alignment policy.
    pub policy: ComparatorPolicy,
}

/// The classification of one (block, fault-class) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// The comparator flagged the fault.
    Detected,
    /// Clean, and the policy declares tolerance for this class.
    Tolerated,
    /// Clean, but the policy does *not* tolerate this class — an escape.
    Masked,
    /// The seeded plan injected nothing into this stream.
    NotInjected,
}

impl fmt::Display for FaultVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultVerdict::Detected => "DETECTED",
            FaultVerdict::Tolerated => "TOLERATED",
            FaultVerdict::Masked => "MASKED",
            FaultVerdict::NotInjected => "NOT-INJ",
        })
    }
}

/// One cell of the sweep: a block under one fault class.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Block name.
    pub block: String,
    /// The injected fault class.
    pub kind: FaultKind,
    /// The derived per-cell seed (reproduces this cell in isolation via
    /// `FaultPlan::only(kind, seed)`).
    pub seed: u64,
    /// The classification.
    pub verdict: FaultVerdict,
    /// How many faults the plan injected.
    pub injected: usize,
    /// How many mismatches the comparator reported.
    pub mismatches: usize,
    /// Provenance: the first injected fault and (when detected) the first
    /// mismatch it provoked.
    pub note: String,
}

/// A seeded fault-injection campaign.
#[derive(Debug, Clone, Copy)]
pub struct FaultCampaign {
    seed: u64,
    workers: Option<usize>,
    lanes: usize,
}

impl FaultCampaign {
    /// A campaign whose entire sweep is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultCampaign {
            seed,
            workers: None,
            lanes: 1,
        }
    }

    /// Sets the scheduler worker count for [`FaultCampaign::run`].
    /// Defaults to [`std::thread::available_parallelism`]; the
    /// `DFV_WORKERS` environment variable overrides either. Cell seeds
    /// are derived from (block, fault-class) indices, never from the
    /// executing worker, so the report is identical for every count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Chunks the sweep's cells into lane groups of `lanes` (matching the
    /// batched 64-lane RTL evaluator, `dfv_rtl::LaneSim`) instead of
    /// handing the scheduler whole blocks. Each group is one work item;
    /// its cells run in ascending lane order and the groups are merged
    /// back in group order. Because every cell's seed derives from its
    /// `(block, fault-class)` indices — never from the group or worker
    /// that executed it — the report, and its canonical JSON, is
    /// byte-identical for every `lanes` and worker count. Values `<= 1`
    /// select the per-block path of [`FaultCampaign::run`].
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// The per-cell seed for `(block_index, kind_index)` — exposed so a
    /// single cell can be re-run in isolation from a report.
    pub fn cell_seed(&self, block_index: usize, kind_index: usize) -> u64 {
        // Two mixing rounds keep neighbouring cells statistically
        // independent even though the inputs differ by one.
        let mut r = SplitMix64::new(
            self.seed
                ^ (block_index as u64).wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (kind_index as u64).rotate_left(32),
        );
        r.next_u64()
    }

    /// Sweeps [`FaultKind::ALL`] over every block. Each cell perturbs the
    /// block's clean RTL stream with a single-class plan and replays it
    /// chronologically through the block's policy. Blocks whose *baseline*
    /// (unfaulted) comparison is not clean are rejected into
    /// [`FaultCampaignReport::baseline_errors`] and skipped — their
    /// verdicts would be noise.
    ///
    /// Blocks are independent work items for the scheduler in
    /// [`crate::sched`] (see [`FaultCampaign::with_workers`]): each
    /// worker sweeps whole blocks, and the per-block sweeps are merged
    /// back in block order, so the report — and its canonical JSON — is
    /// byte-identical for every worker count.
    pub fn run(&self, blocks: &[FaultBlock]) -> FaultCampaignReport {
        if self.lanes > 1 {
            return self.run_lanes(blocks);
        }
        let workers = crate::sched::resolve_workers(self.workers);
        // Quarantined execution: a block whose sweep panics is reported in
        // `crashed` (plan order, deterministic) while every other block's
        // sweep completes — one pathological block cannot sink the run.
        let sweeps = crate::sched::run_quarantined(
            blocks,
            workers,
            |bi, block| self.sweep_block(bi, block),
            |_, _| {},
        );
        let mut cases = Vec::with_capacity(blocks.len() * FaultKind::ALL.len());
        let mut baseline_errors = Vec::new();
        let mut crashed = Vec::new();
        for (sweep, block) in sweeps.into_iter().zip(blocks) {
            match sweep {
                Ok(Ok(block_cases)) => cases.extend(block_cases),
                Ok(Err(e)) => baseline_errors.push(e),
                Err(payload) => crashed.push(format!("{}: {payload}", block.name)),
            }
        }
        FaultCampaignReport {
            seed: self.seed,
            cases,
            baseline_errors,
            crashed,
        }
    }

    /// The lane-group sweep behind [`FaultCampaign::with_lanes`]. Two
    /// phases: baseline admission per block (in block order), then the
    /// admitted blocks' `(block, fault-class)` cells — flattened in the
    /// exact order the per-block path emits them — chunked into groups of
    /// `lanes` as independent work items. The groups concatenate back in
    /// order, so the cases vector is identical to the per-block path's.
    fn run_lanes(&self, blocks: &[FaultBlock]) -> FaultCampaignReport {
        let workers = crate::sched::resolve_workers(self.workers);
        let admissions = crate::sched::run_quarantined(
            blocks,
            workers,
            |_, block| Self::admit_baseline(block),
            |_, _| {},
        );
        let mut baseline_errors = Vec::new();
        let mut crashed = Vec::new();
        let mut cells = Vec::new();
        for ((bi, block), admission) in blocks.iter().enumerate().zip(admissions) {
            match admission {
                Ok(Ok(())) => {
                    cells.extend(
                        FaultKind::ALL
                            .into_iter()
                            .enumerate()
                            .map(|(ki, kind)| (bi, ki, kind)),
                    );
                }
                Ok(Err(e)) => baseline_errors.push(e),
                Err(payload) => crashed.push(format!("{}: {payload}", block.name)),
            }
        }
        let groups: Vec<&[(usize, usize, FaultKind)]> = cells.chunks(self.lanes).collect();
        let sweeps = crate::sched::run_quarantined(
            &groups,
            workers,
            |_, group| {
                group
                    .iter()
                    .map(|&(bi, ki, kind)| self.sweep_cell(bi, &blocks[bi], ki, kind))
                    .collect::<Vec<FaultCase>>()
            },
            |_, _| {},
        );
        let mut cases = Vec::with_capacity(cells.len());
        for (sweep, group) in sweeps.into_iter().zip(&groups) {
            match sweep {
                Ok(group_cases) => cases.extend(group_cases),
                Err(payload) => {
                    // A crashed group quarantines only its own lanes; name
                    // each distinct block the group touched so the escape
                    // is attributable, mirroring the per-block path.
                    let mut names: Vec<&str> = Vec::new();
                    for &(bi, _, _) in group.iter() {
                        let name = blocks[bi].name.as_str();
                        if names.last() != Some(&name) {
                            names.push(name);
                        }
                    }
                    crashed.push(format!("{}: {payload}", names.join("+")));
                }
            }
        }
        FaultCampaignReport {
            seed: self.seed,
            cases,
            baseline_errors,
            crashed,
        }
    }

    /// Rejects blocks whose *unfaulted* streams already mismatch under
    /// their declared policy — their fault verdicts would be noise.
    fn admit_baseline(block: &FaultBlock) -> Result<(), String> {
        let baseline = replay(
            &block.expected,
            &block.actual,
            block.policy.build().as_mut(),
        );
        if !baseline.is_clean() {
            return Err(format!(
                "{}: baseline not clean under {} ({} mismatch(es), first: {})",
                block.name,
                block.policy.describe(),
                baseline.mismatches.len(),
                baseline.mismatches[0]
            ));
        }
        Ok(())
    }

    /// The per-block work item: baseline admission check, then one
    /// [`Self::sweep_cell`] per fault class. Pure — a function of the
    /// campaign seed, the block, and its index only.
    fn sweep_block(&self, bi: usize, block: &FaultBlock) -> Result<Vec<FaultCase>, String> {
        Self::admit_baseline(block)?;
        Ok(FaultKind::ALL
            .into_iter()
            .enumerate()
            .map(|(ki, kind)| self.sweep_cell(bi, block, ki, kind))
            .collect())
    }

    /// One cell of the sweep: inject a single-class seeded plan into the
    /// block's clean stream, replay through the declared policy, classify.
    fn sweep_cell(&self, bi: usize, block: &FaultBlock, ki: usize, kind: FaultKind) -> FaultCase {
        let seed = self.cell_seed(bi, ki);
        let plan = FaultPlan::only(kind, seed);
        let mut injector = plan.injector();
        let faulted = injector.perturb(&block.actual);
        let log = injector.take_log();
        let report = replay(&block.expected, &faulted, block.policy.build().as_mut());
        let (verdict, note) = if log.is_empty() {
            (FaultVerdict::NotInjected, String::new())
        } else if report.is_clean() {
            if block.policy.tolerates(kind, &plan) {
                (
                    FaultVerdict::Tolerated,
                    format!("absorbed by {}", block.policy.describe()),
                )
            } else {
                (
                    FaultVerdict::Masked,
                    format!("escaped {}: {}", block.policy.describe(), log.events[0]),
                )
            }
        } else {
            (
                FaultVerdict::Detected,
                format!("{} -> {}", log.events[0], report.mismatches[0]),
            )
        };
        FaultCase {
            block: block.name.clone(),
            kind,
            seed,
            verdict,
            injected: log.len(),
            mismatches: report.mismatches.len(),
            note,
        }
    }
}

/// The result of one fault sweep. Rendering contains no wall-clock data,
/// so equal seeds over equal blocks render byte-for-byte identically.
#[derive(Debug, Clone)]
pub struct FaultCampaignReport {
    /// The campaign seed the sweep derives from.
    pub seed: u64,
    /// One case per (block, fault class), in sweep order.
    pub cases: Vec<FaultCase>,
    /// Blocks rejected because their unfaulted streams already mismatched.
    pub baseline_errors: Vec<String>,
    /// Blocks whose sweep panicked (`"<block>: <canonicalized payload>"`),
    /// quarantined by the scheduler while the rest of the sweep completed.
    pub crashed: Vec<String>,
}

impl FaultCampaignReport {
    fn count(&self, v: FaultVerdict) -> usize {
        self.cases.iter().filter(|c| c.verdict == v).count()
    }

    /// Cells where the comparator flagged the fault.
    pub fn detected(&self) -> usize {
        self.count(FaultVerdict::Detected)
    }

    /// Cells absorbed by declared policy.
    pub fn tolerated(&self) -> usize {
        self.count(FaultVerdict::Tolerated)
    }

    /// Cells that escaped undetected without declared tolerance.
    pub fn masked(&self) -> usize {
        self.count(FaultVerdict::Masked)
    }

    /// Cells where the plan fired zero times.
    pub fn not_injected(&self) -> usize {
        self.count(FaultVerdict::NotInjected)
    }

    /// Whether every injected fault was either detected or tolerated by
    /// declared policy — the acceptance bar for a robust comparison setup
    /// (masked cells, dirty baselines, and crashed sweeps all fail it).
    pub fn all_accounted(&self) -> bool {
        self.masked() == 0 && self.baseline_errors.is_empty() && self.crashed.is_empty()
    }

    /// The sweep as a machine-readable [`RunReport`]: verdict tallies as
    /// counters, the seed and per-cell verdicts under `values`. The sweep
    /// records no wall times, so
    /// [`canonical_json`](RunReport::canonical_json) of the result is a
    /// pure function of the campaign seed and blocks.
    pub fn to_run_report(&self) -> RunReport {
        let mut rep = RunReport::new("fault_campaign");
        rep.set_counter("faultcamp.cases", self.cases.len() as u64);
        rep.set_counter("faultcamp.detected", self.detected() as u64);
        rep.set_counter("faultcamp.tolerated", self.tolerated() as u64);
        rep.set_counter("faultcamp.masked", self.masked() as u64);
        rep.set_counter("faultcamp.not_injected", self.not_injected() as u64);
        rep.set_counter(
            "faultcamp.baseline_errors",
            self.baseline_errors.len() as u64,
        );
        if !self.crashed.is_empty() {
            rep.set_counter("faultcamp.crashed", self.crashed.len() as u64);
        }
        rep.set_value("seed", Json::UInt(self.seed));
        rep.set_value("all_accounted", Json::Bool(self.all_accounted()));
        if !self.crashed.is_empty() {
            rep.set_value(
                "crashed",
                Json::Arr(self.crashed.iter().map(Json::str).collect()),
            );
        }
        rep.set_value(
            "cases",
            Json::Arr(
                self.cases
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("block", Json::str(&c.block)),
                            ("fault", Json::str(c.kind.name())),
                            ("verdict", Json::Str(c.verdict.to_string())),
                            ("seed", Json::UInt(c.seed)),
                            ("injected", Json::UInt(c.injected as u64)),
                            ("mismatches", Json::UInt(c.mismatches as u64)),
                        ])
                    })
                    .collect(),
            ),
        );
        rep
    }
}

impl fmt::Display for FaultCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<13} {:<10} {:>8} {:>10}  note",
            "block", "fault", "verdict", "injected", "mismatches"
        )?;
        for c in &self.cases {
            writeln!(
                f,
                "{:<12} {:<13} {:<10} {:>8} {:>10}  {}",
                c.block,
                c.kind.to_string(),
                c.verdict.to_string(),
                c.injected,
                c.mismatches,
                c.note
            )?;
        }
        for e in &self.baseline_errors {
            writeln!(f, "baseline error: {e}")?;
        }
        for c in &self.crashed {
            writeln!(f, "crashed: {c}")?;
        }
        write!(
            f,
            "seed {:#x}: {} detected, {} tolerated, {} masked, {} not injected",
            self.seed,
            self.detected(),
            self.tolerated(),
            self.masked(),
            self.not_injected()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_bits::Bv;

    fn distinct_stream(n: u64) -> Vec<StreamItem> {
        (0..n)
            .map(|i| StreamItem {
                value: Bv::from_u64(16, 0x40 + i),
                time: i * 3,
            })
            .collect()
    }

    fn untimed_block(name: &str) -> FaultBlock {
        let s = distinct_stream(48);
        FaultBlock {
            name: name.into(),
            expected: s.clone(),
            actual: s,
            policy: ComparatorPolicy::InOrder {
                tolerance: u64::MAX,
                max_skew: None,
            },
        }
    }

    #[test]
    fn sweep_classifies_every_cell() {
        let report = FaultCampaign::new(0x0005_1EED).run(&[untimed_block("fir")]);
        assert_eq!(report.cases.len(), FaultKind::ALL.len());
        assert!(report.baseline_errors.is_empty());
        // Untimed in-order: timing faults absorbed by declared policy,
        // structural and ordering faults detected with provenance.
        for c in &report.cases {
            match c.kind {
                FaultKind::Stall | FaultKind::Backpressure | FaultKind::Jitter => {
                    assert_eq!(c.verdict, FaultVerdict::Tolerated, "{c:?}");
                }
                FaultKind::Drop | FaultKind::Duplicate | FaultKind::Reorder => {
                    assert_eq!(c.verdict, FaultVerdict::Detected, "{c:?}");
                    assert!(c.note.contains("txn #"), "provenance missing: {c:?}");
                }
            }
        }
        assert!(report.all_accounted());
    }

    #[test]
    fn constant_stream_masks_reorder() {
        // Every value identical: swapping completions changes nothing the
        // comparator can see, and in-order policy does not declare reorder
        // tolerance — the canonical masked escape.
        let s: Vec<StreamItem> = (0..48)
            .map(|i| StreamItem {
                value: Bv::from_u64(16, 0x7777),
                time: i * 3,
            })
            .collect();
        let block = FaultBlock {
            name: "dc".into(),
            expected: s.clone(),
            actual: s,
            policy: ComparatorPolicy::InOrder {
                tolerance: u64::MAX,
                max_skew: None,
            },
        };
        let report = FaultCampaign::new(7).run(&[block]);
        let reorder = report
            .cases
            .iter()
            .find(|c| c.kind == FaultKind::Reorder)
            .unwrap();
        assert_eq!(reorder.verdict, FaultVerdict::Masked, "{reorder:?}");
        assert!(!report.all_accounted());
    }

    #[test]
    fn dirty_baseline_is_rejected_not_swept() {
        let mut block = untimed_block("skewed");
        block.actual[0].value = Bv::from_u64(16, 0xBAD);
        let report = FaultCampaign::new(3).run(&[block, untimed_block("ok")]);
        assert_eq!(report.baseline_errors.len(), 1);
        assert!(report.baseline_errors[0].contains("skewed"));
        // The healthy block still swept.
        assert_eq!(report.cases.len(), FaultKind::ALL.len());
        assert!(!report.all_accounted());
    }

    #[test]
    fn run_report_json_is_reproducible_and_parses() {
        let blocks = [untimed_block("fir")];
        let j1 = FaultCampaign::new(0xF00D)
            .run(&blocks)
            .to_run_report()
            .canonical_json();
        let j2 = FaultCampaign::new(0xF00D)
            .run(&blocks)
            .to_run_report()
            .canonical_json();
        assert_eq!(j1, j2);
        let parsed = dfv_obs::parse_json(&j1).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("faultcamp.cases"))
                .and_then(Json::as_u64),
            Some(FaultKind::ALL.len() as u64)
        );
        let cases = parsed
            .get("values")
            .and_then(|v| v.get("cases"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(cases.len(), FaultKind::ALL.len());
        assert!(cases[0].get("verdict").is_some());
    }

    #[test]
    fn crashed_sweeps_fail_accounting_and_render() {
        // The quarantine plumbing (a panicking work item becomes an Err
        // slot while the others drain) is exercised at the scheduler level
        // in `sched::tests`; here we pin the report semantics: a crashed
        // block is never silently dropped from the accounting.
        let clean = FaultCampaign::new(1).run(&[untimed_block("ok")]);
        assert!(clean.crashed.is_empty());
        assert!(clean.all_accounted());

        let report = FaultCampaignReport {
            crashed: vec!["wedge: chaos: injected panic in block wedge".into()],
            ..clean
        };
        assert!(!report.all_accounted());
        assert!(report.to_string().contains("crashed: wedge"));
        let canon = report.to_run_report().canonical_json();
        assert!(canon.contains("faultcamp.crashed"), "{canon}");
        let parsed = dfv_obs::parse_json(&canon).unwrap();
        assert!(matches!(
            parsed.get("values").and_then(|v| v.get("all_accounted")),
            Some(Json::Bool(false))
        ));
    }

    #[test]
    fn lane_chunked_sweep_is_byte_identical_at_any_geometry() {
        // Three blocks x FaultKind::ALL cells, chunked into lane groups of
        // 1, 3 (splits blocks mid-sweep), and 64 (everything in one
        // group), at 1 and 4 workers — every geometry must render the
        // same canonical JSON as the per-block scalar path.
        let blocks = [
            untimed_block("fir"),
            untimed_block("conv"),
            untimed_block("memsys"),
        ];
        let base = FaultCampaign::new(0x1A7E)
            .run(&blocks)
            .to_run_report()
            .canonical_json();
        for workers in [1usize, 4] {
            for lanes in [1usize, 3, 64] {
                let j = FaultCampaign::new(0x1A7E)
                    .with_workers(workers)
                    .with_lanes(lanes)
                    .run(&blocks)
                    .to_run_report()
                    .canonical_json();
                assert_eq!(j, base, "diverged at workers={workers} lanes={lanes}");
            }
        }
    }

    #[test]
    fn lane_mode_still_rejects_dirty_baselines() {
        let mut dirty = untimed_block("skewed");
        dirty.actual[0].value = Bv::from_u64(16, 0xBAD);
        let blocks = [untimed_block("a"), dirty, untimed_block("b")];
        let report = FaultCampaign::new(3).with_lanes(64).run(&blocks);
        assert_eq!(report.baseline_errors.len(), 1);
        assert!(report.baseline_errors[0].contains("skewed"));
        // Both healthy blocks swept, in block order, with no cells from
        // the rejected one leaking into the lane groups.
        assert_eq!(report.cases.len(), 2 * FaultKind::ALL.len());
        assert!(report.cases.iter().all(|c| c.block != "skewed"));
        let scalar = FaultCampaign::new(3).run(&blocks);
        assert_eq!(
            report.to_run_report().canonical_json(),
            scalar.to_run_report().canonical_json()
        );
    }

    #[test]
    fn report_is_byte_for_byte_reproducible() {
        let blocks = [untimed_block("a"), untimed_block("b")];
        let r1 = FaultCampaign::new(0xABCD).run(&blocks).to_string();
        let r2 = FaultCampaign::new(0xABCD).run(&blocks).to_string();
        assert_eq!(r1, r2);
        // And a different seed gives a different (but valid) sweep.
        let r3 = FaultCampaign::new(0xABCE).run(&blocks).to_string();
        assert_ne!(r1, r3);
    }
}
