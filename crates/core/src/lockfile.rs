//! Advisory lock files with stale-lock detection and recovery.
//!
//! The cache ([`crate::cache`]) and journal ([`crate::Campaign`]
//! checkpointing) are each safe against *crashes* — atomic rename saves,
//! per-record checksums — but not against two live processes writing the
//! same path at once: interleaved appends corrupt the journal silently,
//! and racing cache saves can lose each other's verdicts. A multi-client
//! daemon (`dfv-serve`) makes that scenario real, so both writers now
//! take a sibling advisory lock first:
//!
//! ```text
//! <file>.lock     containing     dfv-lock v1\npid\t<pid>\n
//! ```
//!
//! Acquisition is the POSIX `O_CREAT|O_EXCL` dance through the
//! [`IoShim`](crate::IoShim) (so the chaos harness can fail it): create
//! the lock file exclusively, and on `AlreadyExists` read the holder's
//! pid. A holder that is provably dead (`/proc/<pid>` is absent on
//! Linux) — or a lock file too damaged to name a holder — is *stale*:
//! the lock is removed and acquisition retried, so one crashed process
//! never wedges every later one. A holder that is alive, or whose
//! liveness cannot be determined, keeps the lock: the caller degrades
//! (cache/journal disabled for that run) exactly as it does for any
//! other persistence failure — never panics, never interleaves.

use std::collections::HashSet;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use crate::cache::PersistError;
use crate::chaos::IoHandle;

/// First line of every lock file.
const MAGIC: &str = "dfv-lock v1";

/// Lock paths currently held *by this process*. A lock file naming our
/// own pid proves nothing by itself: it is either a lock genuinely held
/// by another thread of this process, or the leftover of a prior
/// incarnation (the chaos harness simulates kill-and-restart inside one
/// process, where a "killed" writer's release I/O is refused and the
/// file survives; across real restarts, pid recycling can do the same).
/// This registry disambiguates: our pid + present here = held; our pid +
/// absent = stale, steal it.
fn held_by_this_process() -> &'static Mutex<HashSet<PathBuf>> {
    static HELD: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    HELD.get_or_init(|| Mutex::new(HashSet::new()))
}

/// How many times acquisition races the create/steal cycle before giving
/// up. Two processes discovering the same stale lock can both remove and
/// re-create; the loser of the create race retries against the winner's
/// fresh (live) lock and then reports it held.
const MAX_ATTEMPTS: usize = 4;

/// Whether the process `pid` is alive, when the platform can tell.
///
/// `Some(false)` is the only answer that justifies stealing a lock;
/// `None` (no procfs) is treated as "assume alive" — safety over
/// availability.
fn pid_alive(pid: u32) -> Option<bool> {
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        Some(proc_dir.join(pid.to_string()).exists())
    } else {
        None
    }
}

/// The sibling lock path guarding `target`.
pub fn lock_path(target: &Path) -> PathBuf {
    let mut name = target.as_os_str().to_owned();
    name.push(".lock");
    PathBuf::from(name)
}

/// A held advisory lock. Released explicitly with [`FileLock::release`]
/// or best-effort on drop.
#[derive(Debug)]
pub struct FileLock {
    path: PathBuf,
    io: IoHandle,
    released: bool,
    recovered_stale: bool,
}

impl FileLock {
    /// Acquires the advisory lock guarding `target`.
    ///
    /// Returns the held lock, or a typed [`PersistError`] (`op ==
    /// "lock"`) when the lock is held by a live (or indeterminate)
    /// process or the lock file cannot be created. A stale lock left by
    /// a dead process is removed and re-acquired transparently.
    pub fn acquire(target: &Path, io: &IoHandle) -> Result<FileLock, PersistError> {
        let path = lock_path(target);
        let record = format!("{MAGIC}\npid\t{}\n", std::process::id());
        let shim = io.shim();
        let mut last_holder: Option<String> = None;
        for _ in 0..MAX_ATTEMPTS {
            match shim.create_new(&path, record.as_bytes()) {
                Ok(()) => {
                    held_by_this_process().lock().unwrap().insert(path.clone());
                    return Ok(FileLock {
                        path,
                        io: io.clone(),
                        released: false,
                        recovered_stale: last_holder.is_some(),
                    });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    // Somebody holds it. Dead holder (or unreadable
                    // lock) => stale: remove and retry the create.
                    let holder = match shim.read_to_string(&path) {
                        Ok(text) => parse_holder(&text),
                        // Racing release between our create and read:
                        // just retry the create.
                        Err(e) if e.kind() == ErrorKind::NotFound => {
                            last_holder = Some("released mid-race".into());
                            continue;
                        }
                        Err(_) => None,
                    };
                    match holder {
                        Some(pid) if pid == std::process::id() => {
                            if held_by_this_process().lock().unwrap().contains(&path) {
                                return Err(PersistError {
                                    op: "lock",
                                    path: path.display().to_string(),
                                    msg: format!("held by live process {pid} (this process)"),
                                });
                            }
                            // Our pid but nobody in this process holds it:
                            // a prior incarnation's leftover. Stale.
                            last_holder = Some(format!("prior incarnation of pid {pid}"));
                        }
                        Some(pid) if pid_alive(pid) != Some(false) => {
                            return Err(PersistError {
                                op: "lock",
                                path: path.display().to_string(),
                                msg: format!("held by live process {pid}"),
                            });
                        }
                        Some(pid) => last_holder = Some(format!("dead process {pid}")),
                        None => last_holder = Some("unidentifiable holder".into()),
                    }
                    // Stale: steal it. A remove that fails because the
                    // file is already gone is a racing steal — retry.
                    if let Err(e) = shim.remove(&path) {
                        if e.kind() != ErrorKind::NotFound {
                            return Err(PersistError::io("lock", &path, &e));
                        }
                    }
                }
                Err(e) => return Err(PersistError::io("lock", &path, &e)),
            }
        }
        Err(PersistError {
            op: "lock",
            path: path.display().to_string(),
            msg: format!(
                "still contended after {MAX_ATTEMPTS} attempts (last holder: {})",
                last_holder.as_deref().unwrap_or("unknown")
            ),
        })
    }

    /// Whether this acquisition had to recover a stale lock left by a
    /// dead process (callers surface it as `core.lock.stale_recovered`).
    pub fn recovered_stale(&self) -> bool {
        self.recovered_stale
    }

    /// Releases the lock by removing its file.
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        if !self.released {
            self.released = true;
            // Deregister first: even if removing the file fails (chaos,
            // ENOSPC recovery, ...) the leftover is then a *stale* lock
            // this process can steal back, not a deadlock.
            held_by_this_process().lock().unwrap().remove(&self.path);
            let _ = self.io.shim().remove(&self.path);
        }
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Extracts the holder pid from a lock file's text; `None` means the
/// file is damaged enough to be considered stale.
fn parse_holder(text: &str) -> Option<u32> {
    let body = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
    let pid_line = body.lines().next()?;
    pid_line.strip_prefix("pid\t")?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosIo, ChaosPlan, IoShim, RealIo};
    use std::fs;
    use std::sync::Arc;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dfv-lock-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn acquire_release_cycle() {
        let target = temp("cycle");
        let io = IoHandle::real();
        let lock = FileLock::acquire(&target, &io).unwrap();
        assert!(!lock.recovered_stale());
        assert!(lock_path(&target).exists());

        // Held by this (live) process: a second acquire degrades.
        let err = FileLock::acquire(&target, &io).unwrap_err();
        assert_eq!(err.op, "lock");
        assert!(err.msg.contains("live process"), "{err}");

        lock.release();
        assert!(!lock_path(&target).exists());
        let again = FileLock::acquire(&target, &io).unwrap();
        drop(again); // drop releases too
        assert!(!lock_path(&target).exists());
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_recovered() {
        if !Path::new("/proc").is_dir() {
            return; // liveness is indeterminate here; recovery is gated off
        }
        let target = temp("stale");
        let io = IoHandle::real();
        // No real process has this pid (kernel pid_max is far smaller).
        RealIo
            .write(&lock_path(&target), b"dfv-lock v1\npid\t999999999\n")
            .unwrap();
        let lock = FileLock::acquire(&target, &io).unwrap();
        assert!(lock.recovered_stale());
        lock.release();
    }

    #[test]
    fn damaged_lock_file_counts_as_stale() {
        if !Path::new("/proc").is_dir() {
            return;
        }
        let target = temp("damaged");
        let io = IoHandle::real();
        for garbage in [&b"!! not a lock !!"[..], b"dfv-lock v1\npid\tNaN\n"] {
            RealIo.write(&lock_path(&target), garbage).unwrap();
            let lock = FileLock::acquire(&target, &io).unwrap();
            assert!(lock.recovered_stale());
            lock.release();
        }
    }

    #[test]
    fn unwritable_lock_path_is_a_typed_error() {
        let target = Path::new("/nonexistent-dir/file.cache");
        let err = FileLock::acquire(target, &IoHandle::real()).unwrap_err();
        assert_eq!(err.op, "lock");
    }

    #[test]
    fn chaos_failed_lock_creation_degrades_typed() {
        let target = temp("chaos");
        let _ = fs::remove_file(lock_path(&target));
        let io = IoHandle::new(Arc::new(ChaosIo::new(ChaosPlan::none(0).fail_nth_write(1))));
        let err = FileLock::acquire(&target, &io).unwrap_err();
        assert_eq!(err.op, "lock");
        assert!(err.msg.contains("chaos"), "{err}");
        assert!(!lock_path(&target).exists());
    }

    #[test]
    fn parse_holder_roundtrip() {
        assert_eq!(parse_holder("dfv-lock v1\npid\t42\n"), Some(42));
        assert_eq!(parse_holder("dfv-lock v1\n"), None);
        assert_eq!(parse_holder("other file"), None);
    }
}
