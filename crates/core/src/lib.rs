//! The design-for-verification methodology layer: block pairs, verification
//! plans, a campaign runner, and incremental re-verification.
//!
//! This crate is the paper's §4 turned into an API:
//!
//! * **§4.2 design partitioning** — a [`VerificationPlan`] is a list of
//!   [`BlockPair`]s, each a one-to-one SLM/RTL block correspondence with a
//!   transaction spec ("clear functional boundaries both in the SLM and the
//!   RTL at blocks that will be equivalence checked");
//! * **§4.3 model conditioning** — every block is linted against the
//!   DFV001–DFV007 rules before anything else runs;
//! * **§2 verification** — conditioned blocks are statically elaborated and
//!   sequentially equivalence-checked against their RTL;
//! * **§4.1 keep models alive & check incrementally** — a [`Campaign`]
//!   caches per-block verdicts keyed by a content hash of (SLM source, RTL
//!   netlist, spec), so re-running after an edit re-verifies only the
//!   touched blocks. "Incremental runs of sequential equivalence checking
//!   between SLM and RTL are much more effective in terms of run time and
//!   can help localize the source of any difference quickly."
//!
//! # Example
//!
//! ```
//! use dfv_core::{BlockPair, Campaign, VerificationPlan, BlockStatus};
//! use dfv_rtl::ModuleBuilder;
//! use dfv_sec::{Binding, EquivSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rb = ModuleBuilder::new("inc_rtl");
//! let x = rb.input("x", 8);
//! let one = rb.lit(8, 1);
//! let y = rb.add(x, one);
//! rb.output("y", y);
//!
//! let plan = VerificationPlan::new().block(BlockPair {
//!     name: "inc".into(),
//!     slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
//!     slm_entry: "inc".into(),
//!     rtl: rb.finish()?,
//!     spec: EquivSpec::new(1)
//!         .bind("x", 0, Binding::Slm("x".into()))
//!         .compare("return", "y", 0),
//! });
//! let mut campaign = Campaign::new();
//! let report = campaign.run(&plan);
//! assert_eq!(report.blocks[0].status, BlockStatus::Pass);
//! // Nothing changed: the second run is entirely cache hits.
//! let report2 = campaign.run(&plan);
//! assert!(report2.blocks[0].from_cache);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use dfv_rtl::Module;
use dfv_sec::{check_equivalence, EquivOutcome, EquivReport, EquivSpec};
use dfv_slmir::{lint, LintFinding, Severity};

/// One SLM/RTL block correspondence (paper §4.2).
#[derive(Debug, Clone)]
pub struct BlockPair {
    /// Block name (unique within a plan).
    pub name: String,
    /// SLM-C source of the block's golden model.
    pub slm_source: String,
    /// Entry function within the source.
    pub slm_entry: String,
    /// The RTL implementation (flat).
    pub rtl: Module,
    /// The transaction-level equivalence spec.
    pub spec: EquivSpec,
}

impl BlockPair {
    /// A stable content hash of everything that affects this block's
    /// verdict. FNV-1a over the SLM source, the RTL netlist text, and the
    /// spec's debug rendering.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.slm_source.as_bytes());
        eat(self.slm_entry.as_bytes());
        eat(dfv_rtl::write_module(&self.rtl).as_bytes());
        eat(format!("{:?}", self.spec).as_bytes());
        h
    }
}

/// An ordered set of block pairs to verify.
#[derive(Debug, Clone, Default)]
pub struct VerificationPlan {
    /// The blocks.
    pub blocks: Vec<BlockPair>,
}

impl VerificationPlan {
    /// An empty plan.
    pub fn new() -> Self {
        VerificationPlan::default()
    }

    /// Adds a block.
    pub fn block(mut self, b: BlockPair) -> Self {
        self.blocks.push(b);
        self
    }
}

/// The verdict for one block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockStatus {
    /// Linted clean (errors-wise) and proven equivalent.
    Pass,
    /// Error-severity lint findings blocked elaboration.
    LintBlocked,
    /// A counterexample was found (rendered for the report).
    NotEquivalent(String),
    /// Parse/elaboration/spec failure.
    Error(String),
}

impl fmt::Display for BlockStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockStatus::Pass => write!(f, "PASS"),
            BlockStatus::LintBlocked => write!(f, "LINT"),
            BlockStatus::NotEquivalent(_) => write!(f, "FAIL"),
            BlockStatus::Error(_) => write!(f, "ERROR"),
        }
    }
}

/// The full record for one block in a campaign run.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// Block name.
    pub name: String,
    /// Verdict.
    pub status: BlockStatus,
    /// All lint findings (including warnings).
    pub lint_findings: Vec<LintFinding>,
    /// The equivalence report, when the check ran.
    pub equiv: Option<EquivReport>,
    /// Wall-clock time spent on this block in this run.
    pub duration: Duration,
    /// Whether the verdict came from the incremental cache.
    pub from_cache: bool,
}

/// A campaign run over a plan.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-block results, in plan order.
    pub blocks: Vec<BlockResult>,
    /// Total wall-clock time of the run.
    pub duration: Duration,
}

impl CampaignReport {
    /// Whether every block passed.
    pub fn all_pass(&self) -> bool {
        self.blocks.iter().all(|b| b.status == BlockStatus::Pass)
    }

    /// How many blocks were served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.blocks.iter().filter(|b| b.from_cache).count()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<6} {:>6} {:>9} {:>10}  notes",
            "block", "status", "cache", "lint", "time"
        )?;
        for b in &self.blocks {
            let note = match &b.status {
                BlockStatus::NotEquivalent(cex) => cex.clone(),
                BlockStatus::Error(e) => e.clone(),
                BlockStatus::LintBlocked => {
                    let n = b
                        .lint_findings
                        .iter()
                        .filter(|x| x.severity == Severity::Error)
                        .count();
                    format!("{n} blocking lint findings")
                }
                BlockStatus::Pass => String::new(),
            };
            writeln!(
                f,
                "{:<12} {:<6} {:>6} {:>9} {:>9.1?}  {}",
                b.name,
                b.status.to_string(),
                if b.from_cache { "hit" } else { "-" },
                b.lint_findings.len(),
                b.duration,
                note
            )?;
        }
        write!(
            f,
            "total {:.1?}, {} cache hits",
            self.duration,
            self.cache_hits()
        )
    }
}

/// Verifies one block from scratch: lint → elaborate → equivalence check.
pub fn verify_block(block: &BlockPair) -> BlockResult {
    let start = Instant::now();
    let mut result = BlockResult {
        name: block.name.clone(),
        status: BlockStatus::Pass,
        lint_findings: Vec::new(),
        equiv: None,
        duration: Duration::ZERO,
        from_cache: false,
    };
    let finish = |mut r: BlockResult, start: Instant| {
        r.duration = start.elapsed();
        r
    };
    let prog = match dfv_slmir::parse(&block.slm_source) {
        Ok(p) => p,
        Err(e) => {
            result.status = BlockStatus::Error(format!("parse: {e}"));
            return finish(result, start);
        }
    };
    result.lint_findings = lint(&prog, Some(&block.slm_entry));
    if result
        .lint_findings
        .iter()
        .any(|f| f.severity == Severity::Error)
    {
        result.status = BlockStatus::LintBlocked;
        return finish(result, start);
    }
    let slm = match dfv_slmir::elaborate(&prog, &block.slm_entry) {
        Ok(m) => m,
        Err(e) => {
            result.status = BlockStatus::Error(format!("elaborate: {e}"));
            return finish(result, start);
        }
    };
    match check_equivalence(&slm, &block.rtl, &block.spec) {
        Ok(report) => {
            if let EquivOutcome::NotEquivalent(cex) = &report.outcome {
                result.status = BlockStatus::NotEquivalent(cex.to_string());
            }
            result.equiv = Some(report);
        }
        Err(e) => result.status = BlockStatus::Error(format!("sec: {e}")),
    }
    finish(result, start)
}

/// A stateful campaign with an incremental result cache (paper §4.1).
#[derive(Debug, Default)]
pub struct Campaign {
    cache: HashMap<String, (u64, BlockResult)>,
}

impl Campaign {
    /// An empty campaign (cold cache).
    pub fn new() -> Self {
        Campaign::default()
    }

    /// Runs the plan, re-verifying only blocks whose content changed since
    /// the last run. Cached verdicts are returned with
    /// [`BlockResult::from_cache`] set and near-zero duration — the paper's
    /// incremental-SEC payoff.
    pub fn run(&mut self, plan: &VerificationPlan) -> CampaignReport {
        let start = Instant::now();
        let mut blocks = Vec::with_capacity(plan.blocks.len());
        for b in &plan.blocks {
            let hash = b.content_hash();
            if let Some((h, cached)) = self.cache.get(&b.name) {
                if *h == hash {
                    let mut r = cached.clone();
                    r.from_cache = true;
                    r.duration = Duration::ZERO;
                    blocks.push(r);
                    continue;
                }
            }
            let r = verify_block(b);
            self.cache.insert(b.name.clone(), (hash, r.clone()));
            blocks.push(r);
        }
        CampaignReport {
            blocks,
            duration: start.elapsed(),
        }
    }

    /// Drops all cached verdicts (forces a from-scratch run).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;
    use dfv_sec::Binding;

    fn inc_rtl(bug: bool) -> Module {
        let mut b = ModuleBuilder::new("inc_rtl");
        let x = b.input("x", 8);
        let one = b.lit(8, if bug { 2 } else { 1 });
        let y = b.add(x, one);
        b.output("y", y);
        b.finish().unwrap()
    }

    fn inc_block(bug: bool) -> BlockPair {
        BlockPair {
            name: "inc".into(),
            slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(bug),
            spec: EquivSpec::new(1)
                .bind("x", 0, Binding::Slm("x".into()))
                .compare("return", "y", 0),
        }
    }

    #[test]
    fn passing_block() {
        let r = verify_block(&inc_block(false));
        assert_eq!(r.status, BlockStatus::Pass);
        assert!(r.equiv.unwrap().outcome.is_equivalent());
    }

    #[test]
    fn buggy_block_reports_counterexample() {
        let r = verify_block(&inc_block(true));
        let BlockStatus::NotEquivalent(note) = &r.status else {
            panic!("expected NotEquivalent, got {:?}", r.status);
        };
        assert!(note.contains("counterexample"));
    }

    #[test]
    fn lint_blocked_block() {
        let mut b = inc_block(false);
        b.slm_source = "uint8 inc(uint8 x) { int *p = malloc(4); return x + 1; }".into();
        let r = verify_block(&b);
        assert_eq!(r.status, BlockStatus::LintBlocked);
        assert!(!r.lint_findings.is_empty());
        assert!(r.equiv.is_none());
    }

    #[test]
    fn parse_error_block() {
        let mut b = inc_block(false);
        b.slm_source = "not even a program".into();
        let r = verify_block(&b);
        assert!(matches!(r.status, BlockStatus::Error(_)));
    }

    #[test]
    fn incremental_cache_skips_unchanged() {
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "other".into(),
                ..inc_block(false)
            });
        let mut campaign = Campaign::new();
        let r1 = campaign.run(&plan);
        assert_eq!(r1.cache_hits(), 0);
        assert!(r1.all_pass());
        let r2 = campaign.run(&plan);
        assert_eq!(r2.cache_hits(), 2);
        assert!(r2.all_pass());

        // Editing one block re-verifies only that block.
        let mut edited = plan.clone();
        edited.blocks[0].slm_source = "uint8 inc(uint8 x) { return (uint8)(x + 1); }".into();
        let r3 = campaign.run(&edited);
        assert_eq!(r3.cache_hits(), 1);
        assert!(!r3.blocks[0].from_cache);
        assert!(r3.blocks[1].from_cache);
    }

    #[test]
    fn report_renders_a_table() {
        let plan = VerificationPlan::new().block(inc_block(true));
        let report = Campaign::new().run(&plan);
        let text = report.to_string();
        assert!(text.contains("inc"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("counterexample"));
    }
}
