//! The design-for-verification methodology layer: block pairs, verification
//! plans, a campaign runner, and incremental re-verification.
//!
//! This crate is the paper's §4 turned into an API:
//!
//! * **§4.2 design partitioning** — a [`VerificationPlan`] is a list of
//!   [`BlockPair`]s, each a one-to-one SLM/RTL block correspondence with a
//!   transaction spec ("clear functional boundaries both in the SLM and the
//!   RTL at blocks that will be equivalence checked");
//! * **§4.3 model conditioning** — every block is linted against the
//!   DFV001–DFV007 rules before anything else runs;
//! * **§2 verification** — conditioned blocks are statically elaborated and
//!   sequentially equivalence-checked against their RTL;
//! * **§4.1 keep models alive & check incrementally** — a [`Campaign`]
//!   caches per-block verdicts keyed by a content hash of (SLM source, RTL
//!   netlist, spec), so re-running after an edit re-verifies only the
//!   touched blocks. "Incremental runs of sequential equivalence checking
//!   between SLM and RTL are much more effective in terms of run time and
//!   can help localize the source of any difference quickly."
//!
//! # Resource governance
//!
//! A campaign treats the proof engine as a *metered* resource: each block is
//! solved under a [`RetryPolicy`] of escalating [`Budget`]s, the whole run
//! can carry a wall-clock deadline, and a block whose budgets all exhaust
//! degrades to bounded random-simulation falsification instead of hanging —
//! its verdict is [`BlockStatus::Inconclusive`] with a summary like
//! "no counterexample in N random transactions at depth k". The incremental
//! cache can be persisted to disk ([`CampaignOptions::cache_path`]) in a
//! checksummed text format, so verdicts survive a process restart and a
//! truncated or corrupted cache file is detected and rebuilt, never trusted.
//!
//! # Fault-injection campaigns
//!
//! Next to the equivalence campaign, a [`FaultCampaign`] sweeps the
//! interface-fault taxonomy (stall, backpressure, drop, duplicate,
//! reorder, jitter — the paper's Fig 2 inconsistency sources) over each
//! block's output streams and classifies every cell as **detected** (the
//! comparator flagged it, with provenance), **tolerated** (absorbed by
//! the declared [`dfv_cosim::ComparatorPolicy`]), or **masked** (an
//! undeclared escape). The sweep is a pure function of its seed.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use dfv_core::{
//!     BlockPair, BlockStatus, Campaign, CampaignOptions, RetryPolicy, VerificationPlan,
//! };
//! use dfv_rtl::ModuleBuilder;
//! use dfv_sec::{Binding, EquivSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rb = ModuleBuilder::new("inc_rtl");
//! let x = rb.input("x", 8);
//! let one = rb.lit(8, 1);
//! let y = rb.add(x, one);
//! rb.output("y", y);
//!
//! let plan = VerificationPlan::new().block(BlockPair {
//!     name: "inc".into(),
//!     slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
//!     slm_entry: "inc".into(),
//!     rtl: rb.finish()?,
//!     spec: EquivSpec::new(1)
//!         .bind("x", 0, Binding::Slm("x".into()))
//!         .compare("return", "y", 0),
//! });
//!
//! // Escalating proof budgets, a run deadline, and a persisted cache.
//! let path = std::env::temp_dir().join(format!("dfv-core-doc-{}.cache", std::process::id()));
//! let _ = std::fs::remove_file(&path);
//! let mut campaign = Campaign::with_options(CampaignOptions {
//!     retry: RetryPolicy::escalating(10_000, 10, 3),
//!     deadline: Some(Duration::from_secs(60)),
//!     cache_path: Some(path.clone()),
//!     ..CampaignOptions::default()
//! });
//! let report = campaign.run(&plan);
//! assert_eq!(report.blocks[0].status, BlockStatus::Pass);
//!
//! // A fresh process (here: a fresh `Campaign`) reloads the persisted
//! // verdicts, so nothing is re-proven.
//! let mut campaign2 = Campaign::with_cache_file(&path);
//! let report2 = campaign2.run(&plan);
//! assert!(report2.blocks[0].from_cache);
//! let _ = std::fs::remove_file(&path);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dfv_rtl::Module;
use dfv_sec::{check_equivalence_with, Budget, CheckOptions, EquivOutcome, EquivReport, EquivSpec};
use dfv_slmir::{lint, LintFinding, Severity};

mod cache;
pub mod chaos;
mod faultcamp;
mod journal;
pub mod lockfile;
pub mod sched;
mod stimsweep;

pub use cache::{CacheLoad, PersistError};
pub use chaos::{ChaosIo, ChaosPlan, ChaosWire, FailAction, IoHandle, IoShim, RealIo, WirePlan};
pub use faultcamp::{FaultBlock, FaultCampaign, FaultCampaignReport, FaultCase, FaultVerdict};
pub use journal::JournalLoad;
pub use lockfile::FileLock;
pub use sched::{
    resolve_workers, resolve_workers_with, CancelToken, DeadlineClock, MAX_WORKERS, WORKERS_ENV,
};
pub use stimsweep::{ScenarioOutcome, StimulusSweep, StimulusSweepReport};

use dfv_obs::ObsHook;

/// One SLM/RTL block correspondence (paper §4.2).
#[derive(Debug, Clone)]
pub struct BlockPair {
    /// Block name (unique within a plan).
    pub name: String,
    /// SLM-C source of the block's golden model.
    pub slm_source: String,
    /// Entry function within the source.
    pub slm_entry: String,
    /// The RTL implementation (flat).
    pub rtl: Module,
    /// The transaction-level equivalence spec.
    pub spec: EquivSpec,
}

impl BlockPair {
    /// A stable content hash of everything that affects this block's
    /// verdict. FNV-1a over the SLM source, the RTL netlist text, and the
    /// spec's debug rendering.
    pub fn content_hash(&self) -> u64 {
        let mut h = cache::Fnv::new();
        h.write(self.slm_source.as_bytes());
        h.write(self.slm_entry.as_bytes());
        h.write(dfv_rtl::write_module(&self.rtl).as_bytes());
        h.write(format!("{:?}", self.spec).as_bytes());
        h.finish()
    }
}

/// An ordered set of block pairs to verify.
#[derive(Debug, Clone, Default)]
pub struct VerificationPlan {
    /// The blocks.
    pub blocks: Vec<BlockPair>,
}

impl VerificationPlan {
    /// An empty plan.
    pub fn new() -> Self {
        VerificationPlan::default()
    }

    /// Adds a block.
    pub fn block(mut self, b: BlockPair) -> Self {
        self.blocks.push(b);
        self
    }
}

/// The verdict for one block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockStatus {
    /// Linted clean (errors-wise) and proven equivalent.
    Pass,
    /// Error-severity lint findings blocked elaboration.
    LintBlocked,
    /// A counterexample was found (rendered for the report).
    NotEquivalent(String),
    /// Every proof budget ran out before the solver answered, and bounded
    /// random simulation found no counterexample either. The note records
    /// the exhausted resource and (when the fallback ran) how much of the
    /// input space was sampled — quantified negative evidence, not a proof.
    /// Inconclusive verdicts are never cached: the block is retried on the
    /// next run.
    Inconclusive(String),
    /// Parse/elaboration/spec failure.
    Error(String),
    /// The block's work item panicked and was quarantined by the
    /// scheduler: the note is the canonicalized panic payload (first line,
    /// no backtrace — see [`sched::panic_text`]), every other block
    /// completed normally, and a `core.sched.panic` event was recorded.
    /// Like `Inconclusive`, a crash says nothing conclusive about the
    /// block, so it is never cached; a resumed run *does* replay it from
    /// the journal so the same run stays byte-reproducible.
    Crashed(String),
}

impl fmt::Display for BlockStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockStatus::Pass => write!(f, "PASS"),
            BlockStatus::LintBlocked => write!(f, "LINT"),
            BlockStatus::NotEquivalent(_) => write!(f, "FAIL"),
            BlockStatus::Inconclusive(_) => write!(f, "INCONC"),
            BlockStatus::Error(_) => write!(f, "ERROR"),
            BlockStatus::Crashed(_) => write!(f, "CRASH"),
        }
    }
}

/// Summed solver statistics for one block, in journal-survivable form.
///
/// The canonical report's `campaign.cnf_vars`/`cnf_clauses`/`conflicts`
/// counters are sums of these — kept separately from the full
/// [`EquivReport`] (which is not persisted) so a verdict replayed from
/// the checkpoint journal reproduces the same counters byte for byte.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTotals {
    /// CNF variables allocated by the (last) equivalence check.
    pub cnf_vars: usize,
    /// CNF clauses emitted by the (last) equivalence check.
    pub cnf_clauses: usize,
    /// CDCL conflicts spent by the (last) equivalence check.
    pub conflicts: u64,
}

impl SolverTotals {
    /// The totals of one equivalence report.
    pub fn of(report: &EquivReport) -> Self {
        SolverTotals {
            cnf_vars: report.cnf_vars,
            cnf_clauses: report.cnf_clauses,
            conflicts: report.solver_stats.conflicts,
        }
    }
}

/// The full record for one block in a campaign run.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// Block name.
    pub name: String,
    /// Verdict.
    pub status: BlockStatus,
    /// All lint findings (including warnings). Empty for verdicts served
    /// from a persisted cache (findings are not persisted).
    pub lint_findings: Vec<LintFinding>,
    /// How many lint findings the block had when it was verified. Unlike
    /// [`BlockResult::lint_findings`] this *count* survives the checkpoint
    /// journal, so a resumed run's canonical report matches the original.
    pub lint_count: usize,
    /// The equivalence report, when the check ran in this process. For an
    /// inconclusive block this is the *last* attempt's report.
    pub equiv: Option<EquivReport>,
    /// Journal-survivable solver statistics (see [`SolverTotals`]).
    pub solver: SolverTotals,
    /// Wall-clock time spent on this block in this run.
    pub duration: Duration,
    /// Whether the verdict came from the incremental cache.
    pub from_cache: bool,
    /// Whether the verdict was replayed from the checkpoint journal of an
    /// interrupted run (see [`CampaignOptions::resume`]).
    pub from_journal: bool,
    /// How many budgeted proof attempts ran (0 for cached/skipped blocks).
    pub attempts: u32,
}

/// A cross-campaign verdict store keyed by content hash, shared between
/// every campaign holding a clone — the "one warm cache, many clients"
/// piece of verification-as-a-service.
///
/// The per-campaign cache ([`CampaignOptions::cache_path`]) is keyed by
/// block *name* and owned by one campaign; this store is keyed purely by
/// [`BlockPair::content_hash`], so two clients submitting the same block
/// under different names (or in different plans) still dedupe: the second
/// submission is served from the store without touching a solver. Only
/// conclusive verdicts enter the store (same rule as the cache), inserted
/// post-join by the campaign's single-writer merge step, so the store's
/// contents are deterministic for a given set of completed campaigns.
///
/// A hit is reported as [`BlockResult::from_cache`] — provenance-wise it
/// *is* a cache hit, just from the process-wide tier.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: std::sync::Arc<std::sync::Mutex<HashMap<u64, BlockResult>>>,
}

impl SharedStore {
    /// A fresh, empty store.
    pub fn new() -> Self {
        SharedStore::default()
    }

    /// The verdict for `hash`, if some campaign already concluded it.
    pub fn get(&self, hash: u64) -> Option<BlockResult> {
        self.inner.lock().unwrap().get(&hash).cloned()
    }

    /// Records a conclusive verdict for `hash` (last writer wins; all
    /// writers proved the same content, so the verdicts agree).
    pub fn insert(&self, hash: u64, result: BlockResult) {
        self.inner.lock().unwrap().insert(hash, result);
    }

    /// How many distinct content hashes have verdicts.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the store holds no verdicts yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

/// A per-completion progress callback, fired by the campaign's
/// completion-order sink (the same single-threaded step that journals).
///
/// This is how a daemon streams "block finished" frames to a client while
/// the run is live. Completion *order* varies with worker count, so
/// anything derived from the firing order must stay out of canonical
/// reports — the hook is observability, like [`CampaignOptions::obs`].
#[derive(Clone, Default)]
pub struct ProgressHook(Option<ProgressFn>);

/// The shared callback a [`ProgressHook`] fires.
type ProgressFn = std::sync::Arc<dyn Fn(&BlockResult) + Send + Sync>;

impl ProgressHook {
    /// The inert default hook (no allocation, no call overhead).
    pub fn none() -> Self {
        ProgressHook::default()
    }

    /// A hook calling `f` with every completed block result.
    pub fn new(f: impl Fn(&BlockResult) + Send + Sync + 'static) -> Self {
        ProgressHook(Some(std::sync::Arc::new(f)))
    }

    fn fire(&self, r: &BlockResult) {
        if let Some(f) = &self.0 {
            f(r);
        }
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ProgressHook(attached)"
        } else {
            "ProgressHook(none)"
        })
    }
}

/// Escalating per-block proof budgets plus the degradation policy once the
/// last one exhausts (see [`CheckOptions::fallback_transactions`]).
///
/// Industrial SEC treats solver time as a metered resource: try cheap
/// first, escalate on exhaustion, and when proving is off the table fall
/// back to bounded falsification so the time spent still buys evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Budgets to try in order. Empty means a single unlimited attempt.
    pub budgets: Vec<Budget>,
    /// After the *last* budget exhausts, how many constraint-satisfying
    /// random transactions the simulation fallback replays looking for a
    /// concrete counterexample. `0` disables the fallback.
    pub fallback_transactions: u64,
    /// Seed for the fallback stimulus generator.
    pub fallback_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::unlimited()
    }
}

impl RetryPolicy {
    /// A single unbudgeted attempt — the solver runs to completion, so no
    /// block is ever inconclusive (but a pathological one can hang).
    pub fn unlimited() -> Self {
        RetryPolicy {
            budgets: Vec::new(),
            fallback_transactions: 256,
            fallback_seed: 0xDF5,
        }
    }

    /// Geometric escalation: `attempts` budgets starting at
    /// `initial_conflicts` conflicts, multiplying by `factor` each retry.
    pub fn escalating(initial_conflicts: u64, factor: u32, attempts: usize) -> Self {
        let mut budgets = Vec::with_capacity(attempts.max(1));
        let mut c = initial_conflicts;
        for _ in 0..attempts.max(1) {
            budgets.push(Budget::unlimited().with_conflicts(c));
            c = c.saturating_mul(factor.max(1) as u64);
        }
        RetryPolicy {
            budgets,
            ..RetryPolicy::unlimited()
        }
    }

    /// Additionally caps every attempt with a per-attempt wall-clock
    /// timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        if self.budgets.is_empty() {
            self.budgets.push(Budget::unlimited());
        }
        for b in &mut self.budgets {
            b.timeout = Some(timeout);
        }
        self
    }
}

/// Campaign-wide resource governance knobs.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Per-block retry/budget policy.
    pub retry: RetryPolicy,
    /// Wall-clock budget for one [`Campaign::run`]. Blocks reached after it
    /// passes are not started; they get [`BlockStatus::Inconclusive`], and
    /// a block in flight when it passes stops at its next budget check.
    pub deadline: Option<Duration>,
    /// Persist the incremental cache here (checksummed text format, written
    /// atomically after every run) so verdicts survive process restarts.
    pub cache_path: Option<PathBuf>,
    /// Scheduler worker threads for one run. `None` defaults to
    /// [`std::thread::available_parallelism`]; the `DFV_WORKERS`
    /// environment variable overrides either. Blocks are independent
    /// work items, so the canonical report is byte-identical for every
    /// worker count (see [`sched`]).
    pub workers: Option<usize>,
    /// Append-only checkpoint journal (see [`crate::JournalLoad`]). Each
    /// completed block's verdict is durably appended *during* the run, so
    /// a killed campaign re-run on the same path replays every journaled
    /// verdict and recomputes only what the crash lost. The canonical
    /// report of a resumed run is byte-identical to an uninterrupted one.
    pub journal_path: Option<PathBuf>,
    /// Observability hook for campaign-level events and counters
    /// (`core.sched.panic`, `core.journal.replayed`, ...). Unset by
    /// default; never feeds the canonical report.
    pub obs: ObsHook,
    /// The I/O shim all campaign persistence (cache + journal) goes
    /// through. Defaults to the real filesystem; the chaos harness
    /// ([`chaos`]) swaps in fault injection here.
    pub io: IoHandle,
    /// Cooperative cancellation. Once cancelled, blocks not yet started
    /// are skipped with [`BlockStatus::Inconclusive`] (note
    /// [`CANCELLED_NOTE`]) and never journaled — a later resume retries
    /// them — while blocks already in flight complete and checkpoint
    /// normally, so cancellation never discards finished proof work.
    pub cancel: CancelToken,
    /// Process-wide content-hash verdict store shared across campaigns
    /// (and therefore across daemon clients). Probed after the journal
    /// and the per-campaign cache; conclusive fresh verdicts are inserted
    /// post-join. `None` (default) disables the tier.
    pub shared_store: Option<SharedStore>,
    /// Per-completion progress callback (see [`ProgressHook`]). Fired in
    /// completion order from the single-threaded sink; never part of
    /// canonical reports.
    pub progress: ProgressHook,
}

/// The [`BlockStatus::Inconclusive`] note marking a block skipped because
/// the campaign deadline had already passed when it was scheduled.
pub const DEADLINE_SKIP_NOTE: &str = "campaign deadline exceeded before block started";

/// The [`BlockStatus::Inconclusive`] note marking a block skipped because
/// the campaign's [`CancelToken`] fired before it started.
pub const CANCELLED_NOTE: &str = "request cancelled before block started";

impl CampaignOptions {
    /// Options for resuming (or starting) a journaled campaign at `path`:
    /// everything default except the checkpoint journal.
    pub fn resume(path: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            journal_path: Some(path.into()),
            ..CampaignOptions::default()
        }
    }
}

/// A campaign run over a plan.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-block results, in plan order.
    pub blocks: Vec<BlockResult>,
    /// Total wall-clock time of the run.
    pub duration: Duration,
    /// Why persisting the cache failed, if it did (the run itself is still
    /// valid; only restart-resumability is lost).
    pub cache_write_error: Option<String>,
    /// How opening the checkpoint journal went ([`JournalLoad::Disabled`]
    /// when no journal is configured). Not part of the canonical report —
    /// a resumed run must stay byte-identical to an uninterrupted one.
    pub journal_load: JournalLoad,
    /// Why journaling failed, if it did (the run still completes; only
    /// crash-resumability is lost). Not part of the canonical report.
    pub journal_error: Option<String>,
}

impl CampaignReport {
    /// Whether every block passed.
    pub fn all_pass(&self) -> bool {
        self.blocks.iter().all(|b| b.status == BlockStatus::Pass)
    }

    /// How many blocks were served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.blocks.iter().filter(|b| b.from_cache).count()
    }

    /// How many verdicts were replayed from the checkpoint journal.
    pub fn journal_replayed(&self) -> usize {
        self.blocks.iter().filter(|b| b.from_journal).count()
    }

    /// How many blocks crashed (worker panic, quarantined).
    pub fn crashed(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.status, BlockStatus::Crashed(_)))
            .count()
    }

    /// How many blocks ended inconclusive (budget/deadline exhaustion).
    pub fn inconclusive(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.status, BlockStatus::Inconclusive(_)))
            .count()
    }

    /// How many blocks were skipped (a subset of [`Self::inconclusive`])
    /// because the campaign deadline had passed before they started.
    pub fn deadline_skipped(&self) -> usize {
        self.blocks
            .iter()
            .filter(
                |b| matches!(&b.status, BlockStatus::Inconclusive(n) if n == DEADLINE_SKIP_NOTE),
            )
            .count()
    }

    /// How many blocks were skipped (a subset of [`Self::inconclusive`])
    /// because the campaign's [`CancelToken`] fired before they started.
    pub fn cancelled(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(&b.status, BlockStatus::Inconclusive(n) if n == CANCELLED_NOTE))
            .count()
    }

    /// The run as a machine-readable [`RunReport`]: block tallies and
    /// solver totals as counters, per-block verdicts under `values`, and
    /// the measured per-block wall times in the timing section (only) —
    /// so [`RunReport::canonical_json`] of the result depends on the
    /// verdicts, never on how long the solver took to reach them.
    pub fn to_run_report(&self) -> dfv_obs::RunReport {
        use dfv_obs::Json;
        let mut rep = dfv_obs::RunReport::new("campaign");
        rep.set_counter("campaign.blocks", self.blocks.len() as u64);
        rep.set_counter(
            "campaign.passed",
            self.blocks
                .iter()
                .filter(|b| b.status == BlockStatus::Pass)
                .count() as u64,
        );
        rep.set_counter("campaign.cache_hits", self.cache_hits() as u64);
        rep.set_counter("campaign.inconclusive", self.inconclusive() as u64);
        rep.set_counter(
            "campaign.attempts",
            self.blocks.iter().map(|b| b.attempts as u64).sum(),
        );
        let (mut vars, mut clauses, mut conflicts) = (0u64, 0u64, 0u64);
        for b in &self.blocks {
            // The journal-survivable totals, not the full EquivReport, so
            // a resumed run sums to the same counters.
            vars += b.solver.cnf_vars as u64;
            clauses += b.solver.cnf_clauses as u64;
            conflicts += b.solver.conflicts;
        }
        rep.set_counter("campaign.cnf_vars", vars);
        rep.set_counter("campaign.cnf_clauses", clauses);
        rep.set_counter("campaign.conflicts", conflicts);
        rep.set_value(
            "blocks",
            Json::Arr(
                self.blocks
                    .iter()
                    .map(|b| {
                        Json::obj(vec![
                            ("name", Json::str(&b.name)),
                            ("status", Json::Str(b.status.to_string())),
                            ("from_cache", Json::Bool(b.from_cache)),
                            ("attempts", Json::UInt(b.attempts as u64)),
                            ("lint_findings", Json::UInt(b.lint_count as u64)),
                        ])
                    })
                    .collect(),
            ),
        );
        // Crash quarantines, deadline skips, and cancellations are rare
        // enough to keep out of clean reports (and conditional counters
        // keep clean runs byte-identical to pre-existing baselines); when
        // present each count is deterministic — the same blocks crash
        // under the same chaos plan, the same tail is skipped once the
        // deadline/cancel latch is set, and a resumed run replays crashes.
        if self.crashed() > 0 {
            rep.set_counter("campaign.crashed", self.crashed() as u64);
        }
        if self.deadline_skipped() > 0 {
            rep.set_counter("campaign.deadline_skipped", self.deadline_skipped() as u64);
        }
        if self.cancelled() > 0 {
            rep.set_counter("campaign.cancelled", self.cancelled() as u64);
        }
        if let Some(e) = &self.cache_write_error {
            rep.set_value("cache_write_error", Json::str(e));
        }
        if let Some(e) = &self.journal_error {
            rep.set_value("journal_error", Json::str(e));
        }
        for b in &self.blocks {
            rep.push_phase(format!("block:{}", b.name), b.duration);
        }
        rep.push_phase("total", self.duration);
        rep
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<6} {:>6} {:>9} {:>10}  notes",
            "block", "status", "cache", "lint", "time"
        )?;
        for b in &self.blocks {
            let note = match &b.status {
                BlockStatus::NotEquivalent(cex) => cex.clone(),
                BlockStatus::Error(e) => e.clone(),
                BlockStatus::Inconclusive(why) => why.clone(),
                BlockStatus::Crashed(payload) => format!("worker panic: {payload}"),
                BlockStatus::LintBlocked => {
                    let n = b
                        .lint_findings
                        .iter()
                        .filter(|x| x.severity == Severity::Error)
                        .count();
                    format!("{n} blocking lint findings")
                }
                BlockStatus::Pass => String::new(),
            };
            writeln!(
                f,
                "{:<12} {:<6} {:>6} {:>9} {:>9.1?}  {}",
                b.name,
                b.status.to_string(),
                if b.from_journal {
                    "jrnl"
                } else if b.from_cache {
                    "hit"
                } else {
                    "-"
                },
                b.lint_count,
                b.duration,
                note
            )?;
        }
        write!(
            f,
            "total {:.1?}, {} cache hits, {} inconclusive",
            self.duration,
            self.cache_hits(),
            self.inconclusive()
        )?;
        if self.journal_replayed() > 0 {
            write!(f, ", {} replayed from journal", self.journal_replayed())?;
        }
        if self.crashed() > 0 {
            write!(f, ", {} crashed", self.crashed())?;
        }
        if self.deadline_skipped() > 0 {
            write!(f, ", {} deadline-skipped", self.deadline_skipped())?;
        }
        if self.cancelled() > 0 {
            write!(f, ", {} cancelled", self.cancelled())?;
        }
        if let Some(e) = &self.cache_write_error {
            write!(f, " (cache: disabled ({e}))")?;
        }
        if let Some(e) = &self.journal_error {
            write!(f, " (journal: disabled ({e}))")?;
        }
        Ok(())
    }
}

/// Verifies one block from scratch with a single unlimited proof attempt:
/// lint → elaborate → equivalence check.
pub fn verify_block(block: &BlockPair) -> BlockResult {
    verify_block_with(block, &RetryPolicy::unlimited(), None)
}

/// Verifies one block under escalating budgets: lint → elaborate → one
/// budgeted equivalence check per [`RetryPolicy`] budget, stopping at the
/// first conclusive answer. If every budget exhausts (or `deadline`
/// passes), the final attempt's simulation-fallback evidence is folded into
/// a [`BlockStatus::Inconclusive`] verdict — bounded time, no hang, no
/// panic.
pub fn verify_block_with(
    block: &BlockPair,
    retry: &RetryPolicy,
    deadline: Option<Instant>,
) -> BlockResult {
    let start = Instant::now();
    let mut result = BlockResult {
        name: block.name.clone(),
        status: BlockStatus::Pass,
        lint_findings: Vec::new(),
        lint_count: 0,
        equiv: None,
        solver: SolverTotals::default(),
        duration: Duration::ZERO,
        from_cache: false,
        from_journal: false,
        attempts: 0,
    };
    let finish = |mut r: BlockResult, start: Instant| {
        r.duration = start.elapsed();
        r.lint_count = r.lint_findings.len();
        if let Some(e) = &r.equiv {
            r.solver = SolverTotals::of(e);
        }
        r
    };
    let prog = match dfv_slmir::parse(&block.slm_source) {
        Ok(p) => p,
        Err(e) => {
            result.status = BlockStatus::Error(format!("parse: {e}"));
            return finish(result, start);
        }
    };
    result.lint_findings = lint(&prog, Some(&block.slm_entry));
    if result
        .lint_findings
        .iter()
        .any(|f| f.severity == Severity::Error)
    {
        result.status = BlockStatus::LintBlocked;
        return finish(result, start);
    }
    let slm = match dfv_slmir::elaborate(&prog, &block.slm_entry) {
        Ok(m) => m,
        Err(e) => {
            result.status = BlockStatus::Error(format!("elaborate: {e}"));
            return finish(result, start);
        }
    };
    let unlimited = [Budget::unlimited()];
    let budgets: &[Budget] = if retry.budgets.is_empty() {
        &unlimited
    } else {
        &retry.budgets
    };
    for (i, b) in budgets.iter().enumerate() {
        let last = i + 1 == budgets.len();
        let mut budget = *b;
        if let Some(d) = deadline {
            budget.deadline = Some(budget.deadline.map_or(d, |x| x.min(d)));
        }
        let opts = CheckOptions {
            budget,
            // Falsification is the *terminal* degradation step; while there
            // are budgets left to escalate into, skip it.
            fallback_transactions: if last { retry.fallback_transactions } else { 0 },
            fallback_seed: retry.fallback_seed,
            ..CheckOptions::default()
        };
        result.attempts += 1;
        match check_equivalence_with(&slm, &block.rtl, &block.spec, &opts) {
            Ok(report) => match &report.outcome {
                EquivOutcome::Equivalent => {
                    result.equiv = Some(report);
                    return finish(result, start);
                }
                EquivOutcome::NotEquivalent(cex) => {
                    result.status = BlockStatus::NotEquivalent(cex.to_string());
                    result.equiv = Some(report);
                    return finish(result, start);
                }
                EquivOutcome::Inconclusive {
                    reason,
                    falsification,
                } => {
                    let campaign_over = deadline.is_some_and(|d| Instant::now() >= d);
                    if last || campaign_over {
                        result.status = BlockStatus::Inconclusive(match falsification {
                            Some(f) => format!("{reason}; {f}"),
                            None => reason.to_string(),
                        });
                        result.equiv = Some(report);
                        return finish(result, start);
                    }
                    // Otherwise escalate into the next budget.
                }
            },
            Err(e) => {
                result.status = BlockStatus::Error(format!("sec: {e}"));
                return finish(result, start);
            }
        }
    }
    unreachable!("the budget loop always returns on its last iteration")
}

/// The quarantine verdict for a block whose work item panicked.
fn crashed_result(name: &str, payload: &str) -> BlockResult {
    BlockResult {
        name: name.to_string(),
        status: BlockStatus::Crashed(payload.to_string()),
        lint_findings: Vec::new(),
        lint_count: 0,
        equiv: None,
        solver: SolverTotals::default(),
        duration: Duration::ZERO,
        from_cache: false,
        from_journal: false,
        attempts: 0,
    }
}

/// A stateful campaign with an incremental result cache (paper §4.1),
/// optionally persisted across process restarts.
#[derive(Debug, Default)]
pub struct Campaign {
    cache: HashMap<String, (u64, BlockResult)>,
    opts: CampaignOptions,
    cache_load: CacheLoad,
}

impl Campaign {
    /// An empty in-memory campaign (cold cache, unlimited budgets).
    pub fn new() -> Self {
        Campaign::default()
    }

    /// A campaign with explicit resource governance. If
    /// [`CampaignOptions::cache_path`] is set, the persisted cache is loaded
    /// now; a missing file starts cold, and a corrupted one starts cold
    /// *and records why* (see [`Campaign::cache_load`]) — it never panics
    /// and never trusts damaged verdicts.
    pub fn with_options(opts: CampaignOptions) -> Self {
        let (cache, cache_load) = match &opts.cache_path {
            Some(p) => cache::load(p, &opts.io),
            None => (HashMap::new(), CacheLoad::Disabled),
        };
        if let CacheLoad::Recovered { dropped, .. } = &cache_load {
            opts.obs
                .add(dfv_obs::kinds::CACHE_RECOVERED, *dropped as u64);
        }
        Campaign {
            cache,
            opts,
            cache_load,
        }
    }

    /// A campaign persisting its cache at `path`, with default budgets.
    pub fn with_cache_file(path: impl Into<PathBuf>) -> Self {
        Campaign::with_options(CampaignOptions {
            cache_path: Some(path.into()),
            ..CampaignOptions::default()
        })
    }

    /// How loading the persisted cache went at construction time.
    pub fn cache_load(&self) -> &CacheLoad {
        &self.cache_load
    }

    /// Runs the plan, re-verifying only blocks whose content changed since
    /// the last run. Cached verdicts are returned with
    /// [`BlockResult::from_cache`] set and near-zero duration — the paper's
    /// incremental-SEC payoff. Under a campaign deadline, blocks reached
    /// after it passes are skipped with [`BlockStatus::Inconclusive`]
    /// *before* their content hash is computed, so an expired run does not
    /// pay hashing cost over a large plan; if a cache path is configured,
    /// the (conclusive) verdicts are persisted atomically before returning.
    ///
    /// With [`CampaignOptions::workers`] `> 1` the blocks are executed by
    /// the self-scheduling worker pool in [`sched`]: each block is a pure
    /// work item (the run-start cache is shared read-only, the deadline is
    /// the shared amortized [`DeadlineClock`]), results are merged back in
    /// plan order, and all cache mutation and persistence happens on this
    /// thread after the join — so the canonical report is byte-identical
    /// to the one-worker run.
    pub fn run(&mut self, plan: &VerificationPlan) -> CampaignReport {
        let start = Instant::now();
        let clock = sched::DeadlineClock::new(start, self.opts.deadline);
        let deadline = clock.instant();
        let workers = sched::resolve_workers_with(self.opts.workers, &self.opts.obs);
        // Open (or create) the checkpoint journal, replaying any verdicts
        // an interrupted run already committed.
        let (mut journal_writer, replayed, journal_load) = match &self.opts.journal_path {
            Some(p) => {
                let (w, map, load) = journal::open(p, &self.opts.io);
                (Some(w), map, load)
            }
            None => (None, HashMap::new(), JournalLoad::Disabled),
        };
        if let JournalLoad::Resumed { dropped, .. } = &journal_load {
            self.opts
                .obs
                .add(dfv_obs::kinds::JOURNAL_DROPPED, *dropped as u64);
        }
        let cache = &self.cache;
        let retry = &self.opts.retry;
        let io = &self.opts.io;
        let cancel = &self.opts.cancel;
        let shared = self.opts.shared_store.as_ref();
        let replayed_ref = &replayed;
        // The per-block work item: chaos fail point (deterministic, first),
        // then the deadline (amortized, shared) and the cancel latch so an
        // expired or abandoned campaign skips even the hashing, then the
        // journal replay probe, then the per-campaign cache probe, then
        // the cross-campaign shared store, then the budgeted proof.
        // Returns the content hash alongside the result so the post-join
        // cache writer needn't rehash.
        let work = |_i: usize, b: &BlockPair| -> (Option<u64>, BlockResult) {
            if io.shim().fail_point("campaign.block", &b.name) == FailAction::Panic {
                panic!("chaos: injected panic in block {}", b.name);
            }
            if clock.expired() {
                let mut r = crashed_result(&b.name, "");
                r.status = BlockStatus::Inconclusive(DEADLINE_SKIP_NOTE.into());
                return (None, r);
            }
            if cancel.is_cancelled() {
                // Skipped, not journaled (the `None` hash keeps it out of
                // the sink): a resume after cancellation recomputes these,
                // while everything already journaled replays.
                let mut r = crashed_result(&b.name, "");
                r.status = BlockStatus::Inconclusive(CANCELLED_NOTE.into());
                return (None, r);
            }
            let hash = b.content_hash();
            if let Some((h, journaled)) = replayed_ref.get(&b.name) {
                // The journal outranks the cache: it also replays
                // inconclusive and crashed verdicts, which the cache
                // deliberately forgets, so resuming the *same* run stays
                // byte-identical.
                if *h == hash {
                    return (Some(hash), journaled.clone());
                }
            }
            if let Some((h, cached)) = cache.get(&b.name) {
                if *h == hash {
                    let mut r = cached.clone();
                    r.from_cache = true;
                    r.duration = Duration::ZERO;
                    return (Some(hash), r);
                }
            }
            if let Some(hit) = shared.and_then(|s| s.get(hash)) {
                // Another campaign (another client) already proved this
                // exact content — serve it as a cache hit under *this*
                // block's name.
                let mut r = hit;
                r.name = b.name.clone();
                r.from_cache = true;
                r.from_journal = false;
                r.duration = Duration::ZERO;
                return (Some(hash), r);
            }
            (Some(hash), verify_block_with(b, retry, deadline))
        };
        // The completion-order sink is the journal's single writer: each
        // verdict is durably appended the moment it exists, so a kill
        // between two appends loses at most the in-flight blocks. Crashed
        // items are journaled too (a resumed run must replay them);
        // replayed and deadline-skipped ones are not (already journaled /
        // not a verdict).
        let blocks_ref = &plan.blocks;
        let progress = &self.opts.progress;
        let results = sched::run_quarantined(&plan.blocks, workers, work, |i, res| {
            match res {
                Ok((_, r)) => progress.fire(r),
                Err(payload) => progress.fire(&crashed_result(&blocks_ref[i].name, payload)),
            }
            let Some(w) = journal_writer.as_mut() else {
                return;
            };
            match res {
                Ok((Some(hash), r)) if !r.from_journal => w.append(&r.name, *hash, r),
                Ok(_) => {}
                Err(payload) => {
                    let b = &blocks_ref[i];
                    // Re-derive the hash defensively: if hashing is what
                    // panicked, journaling this block is hopeless — skip
                    // it (the resumed run recomputes and re-crashes).
                    let hashed =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.content_hash()));
                    if let Ok(hash) = hashed {
                        w.append(&b.name, hash, &crashed_result(&b.name, payload));
                    }
                }
            }
        });
        // Single writer: the cache is only mutated here, after the join,
        // in plan order — worker count cannot change what gets cached.
        let mut blocks = Vec::with_capacity(results.len());
        for (res, b) in results.into_iter().zip(&plan.blocks) {
            let (hash, r) = match res {
                Ok(pair) => pair,
                Err(payload) => {
                    // Recorded here, post-join in plan order, so the obs
                    // stream is deterministic across worker counts.
                    self.opts.obs.event(dfv_obs::kinds::SCHED_PANIC, || {
                        format!("{}: {payload}", b.name)
                    });
                    (None, crashed_result(&b.name, &payload))
                }
            };
            // Inconclusive is a statement about the *budget*, not the
            // block — and a crash says even less: caching either would
            // freeze a non-verdict forever.
            if let Some(hash) = hash {
                if !r.from_cache
                    && !matches!(
                        r.status,
                        BlockStatus::Inconclusive(_) | BlockStatus::Crashed(_)
                    )
                {
                    let mut cached = r.clone();
                    // A journal-replayed verdict enters the cache as a
                    // plain entry; the provenance flag is per-run.
                    cached.from_journal = false;
                    if let Some(store) = &self.opts.shared_store {
                        store.insert(hash, cached.clone());
                    }
                    self.cache.insert(b.name.clone(), (hash, cached));
                }
            }
            blocks.push(r);
        }
        self.opts.obs.add(
            dfv_obs::kinds::JOURNAL_REPLAYED,
            blocks.iter().filter(|r| r.from_journal).count() as u64,
        );
        let journal_error = journal_writer
            .as_ref()
            .and_then(|w| w.error())
            .map(|e| e.to_string());
        let cache_write_error = match &self.opts.cache_path {
            Some(p) => cache::save(p, &self.cache, io).err().map(|e| e.to_string()),
            None => None,
        };
        CampaignReport {
            blocks,
            duration: start.elapsed(),
            cache_write_error,
            journal_load,
            journal_error,
        }
    }

    /// Drops all cached verdicts (forces a from-scratch run). Does not
    /// delete the on-disk cache file; the next [`Campaign::run`] rewrites
    /// it.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfv_rtl::ModuleBuilder;
    use dfv_sec::Binding;
    use std::path::Path;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn inc_rtl(bug: bool) -> Module {
        let mut b = ModuleBuilder::new("inc_rtl");
        let x = b.input("x", 8);
        let one = b.lit(8, if bug { 2 } else { 1 });
        let y = b.add(x, one);
        b.output("y", y);
        b.finish().unwrap()
    }

    fn inc_block(bug: bool) -> BlockPair {
        BlockPair {
            name: "inc".into(),
            slm_source: "uint8 inc(uint8 x) { return x + 1; }".into(),
            slm_entry: "inc".into(),
            rtl: inc_rtl(bug),
            spec: EquivSpec::new(1)
                .bind("x", 0, Binding::Slm("x".into()))
                .compare("return", "y", 0),
        }
    }

    /// A deliberately hard, genuinely-equivalent block: 16×16→32 multiplier
    /// commutativity (`a*b` in the SLM vs `b*a` in the RTL), which CDCL
    /// cannot settle under a tiny budget.
    fn hard_block() -> BlockPair {
        let mut rb = ModuleBuilder::new("rtl_mul");
        let a = rb.input("a", 16);
        let b = rb.input("b", 16);
        let (aw, bw) = (rb.zext(a, 32), rb.zext(b, 32));
        let y = rb.mul(bw, aw);
        rb.output("y", y);
        BlockPair {
            name: "mul".into(),
            slm_source: "uint32 mul(uint16 a, uint16 b) { return (uint32)a * (uint32)b; }".into(),
            slm_entry: "mul".into(),
            rtl: rb.finish().unwrap(),
            spec: EquivSpec::new(1)
                .bind("a", 0, Binding::Slm("a".into()))
                .bind("b", 0, Binding::Slm("b".into()))
                .compare("return", "y", 0),
        }
    }

    /// A unique temp path per test invocation (no external tempfile dep).
    fn temp_cache_path(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dfv-core-test-{}-{tag}-{n}.cache",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn passing_block() {
        let r = verify_block(&inc_block(false));
        assert_eq!(r.status, BlockStatus::Pass);
        assert_eq!(r.attempts, 1);
        assert!(r.equiv.unwrap().outcome.is_equivalent());
    }

    #[test]
    fn buggy_block_reports_counterexample() {
        let r = verify_block(&inc_block(true));
        let BlockStatus::NotEquivalent(note) = &r.status else {
            panic!("expected NotEquivalent, got {:?}", r.status);
        };
        assert!(note.contains("counterexample"));
    }

    #[test]
    fn lint_blocked_block() {
        let mut b = inc_block(false);
        b.slm_source = "uint8 inc(uint8 x) { int *p = malloc(4); return x + 1; }".into();
        let r = verify_block(&b);
        assert_eq!(r.status, BlockStatus::LintBlocked);
        assert!(!r.lint_findings.is_empty());
        assert!(r.equiv.is_none());
    }

    #[test]
    fn parse_error_block() {
        let mut b = inc_block(false);
        b.slm_source = "not even a program".into();
        let r = verify_block(&b);
        assert!(matches!(r.status, BlockStatus::Error(_)));
    }

    #[test]
    fn incremental_cache_skips_unchanged() {
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "other".into(),
                ..inc_block(false)
            });
        let mut campaign = Campaign::new();
        let r1 = campaign.run(&plan);
        assert_eq!(r1.cache_hits(), 0);
        assert!(r1.all_pass());
        let r2 = campaign.run(&plan);
        assert_eq!(r2.cache_hits(), 2);
        assert!(r2.all_pass());

        // Editing one block re-verifies only that block.
        let mut edited = plan.clone();
        edited.blocks[0].slm_source = "uint8 inc(uint8 x) { return (uint8)(x + 1); }".into();
        let r3 = campaign.run(&edited);
        assert_eq!(r3.cache_hits(), 1);
        assert!(!r3.blocks[0].from_cache);
        assert!(r3.blocks[1].from_cache);
    }

    #[test]
    fn campaign_run_report_json_separates_timing_from_verdicts() {
        use dfv_obs::Json;
        let plan = VerificationPlan::new().block(inc_block(false));
        let rep = Campaign::new().run(&plan).to_run_report();
        let canon = rep.canonical_json();
        assert!(!canon.contains("wall_us"), "{canon}");
        let parsed = dfv_obs::parse_json(&canon).unwrap();
        let counters = parsed.get("counters").unwrap();
        assert_eq!(
            counters.get("campaign.blocks").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            counters.get("campaign.passed").and_then(Json::as_u64),
            Some(1)
        );
        let blocks = parsed
            .get("values")
            .and_then(|v| v.get("blocks"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(blocks[0].get("status").and_then(Json::as_str), Some("PASS"));
        // Wall time lives only in the full report: one phase per block + total.
        let full = dfv_obs::parse_json(&rep.full_json()).unwrap();
        let phases = full
            .get("timing")
            .and_then(|t| t.get("phases"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(phases.len(), 2);
    }

    #[test]
    fn report_renders_a_table() {
        let plan = VerificationPlan::new().block(inc_block(true));
        let report = Campaign::new().run(&plan);
        let text = report.to_string();
        assert!(text.contains("inc"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("counterexample"));
    }

    #[test]
    fn hard_block_under_tiny_budget_degrades_to_simulation() {
        // The acceptance scenario: 100 conflicts + 1ms per attempt must
        // yield Inconclusive with a falsification summary in bounded time.
        let retry = RetryPolicy {
            budgets: vec![Budget::unlimited()
                .with_conflicts(100)
                .with_timeout(Duration::from_millis(1))],
            fallback_transactions: 32,
            fallback_seed: 9,
        };
        let started = Instant::now();
        let r = verify_block_with(&hard_block(), &retry, None);
        let BlockStatus::Inconclusive(note) = &r.status else {
            panic!("expected Inconclusive, got {:?}", r.status);
        };
        assert!(
            note.contains("no counterexample in 32 random transactions"),
            "note: {note}"
        );
        assert_eq!(r.attempts, 1);
        assert!(r.equiv.is_some());
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "budgeted verification must return in bounded time"
        );
    }

    #[test]
    fn escalation_retries_until_a_budget_suffices() {
        // First budget (0 conflicts) exhausts before the search can start;
        // the second (unlimited) finds the counterexample. The simulation
        // fallback is disabled, so the verdict can only come from the
        // escalated solve. (A trivially-UNSAT block won't do here: it is
        // decided during clause insertion, before any budget applies.)
        let retry = RetryPolicy {
            budgets: vec![Budget::unlimited().with_conflicts(0), Budget::unlimited()],
            fallback_transactions: 0,
            fallback_seed: 1,
        };
        let r = verify_block_with(&inc_block(true), &retry, None);
        assert!(
            matches!(r.status, BlockStatus::NotEquivalent(_)),
            "got {:?}",
            r.status
        );
        assert_eq!(r.attempts, 2);
    }

    #[test]
    fn simulation_fallback_still_finds_real_bugs() {
        // A buggy block under a zero-conflict budget: the fallback must
        // surface the divergence as NotEquivalent, not Inconclusive.
        let retry = RetryPolicy {
            budgets: vec![Budget::unlimited().with_conflicts(0)],
            fallback_transactions: 300,
            fallback_seed: 2,
        };
        let r = verify_block_with(&inc_block(true), &retry, None);
        assert!(
            matches!(r.status, BlockStatus::NotEquivalent(_)),
            "got {:?}",
            r.status
        );
    }

    #[test]
    fn campaign_deadline_skips_remaining_blocks() {
        let plan = VerificationPlan::new()
            .block(hard_block())
            .block(inc_block(false));
        let mut campaign = Campaign::with_options(CampaignOptions {
            retry: RetryPolicy {
                budgets: vec![Budget::unlimited()],
                fallback_transactions: 0,
                fallback_seed: 0,
            },
            deadline: Some(Duration::ZERO),
            ..CampaignOptions::default()
        });
        let report = campaign.run(&plan);
        assert_eq!(report.inconclusive(), 2);
        // With a zero deadline neither block gets to start a proof; a block
        // already in flight would instead stop at the solver's next budget
        // check with the deadline reason.
        let BlockStatus::Inconclusive(note) = &report.blocks[1].status else {
            panic!("expected skip, got {:?}", report.blocks[1].status);
        };
        assert!(note.contains("deadline"), "note: {note}");
        assert_eq!(report.blocks[1].attempts, 0);
    }

    #[test]
    fn zero_deadline_skips_before_hashing_or_cache_probe() {
        // Regression: the deadline used to be checked only *after*
        // `content_hash()`, so an expired campaign still paid full hashing
        // cost over the plan (and could serve cache hits). The check now
        // comes first: with a zero deadline every block — cached or not —
        // is skipped untouched.
        let path = temp_cache_path("zero-deadline");
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "other".into(),
                ..inc_block(false)
            });
        let mut warm = Campaign::with_cache_file(&path);
        assert!(warm.run(&plan).all_pass());
        drop(warm);

        let mut expired = Campaign::with_options(CampaignOptions {
            deadline: Some(Duration::ZERO),
            cache_path: Some(path.clone()),
            ..CampaignOptions::default()
        });
        assert_eq!(expired.cache_load(), &CacheLoad::Loaded { entries: 2 });
        let report = expired.run(&plan);
        assert_eq!(report.inconclusive(), 2);
        for b in &report.blocks {
            assert!(!b.from_cache, "skip must precede the cache probe");
            assert_eq!(b.attempts, 0);
            let BlockStatus::Inconclusive(note) = &b.status else {
                panic!("expected deadline skip, got {:?}", b.status);
            };
            assert!(note.contains("deadline"), "note: {note}");
        }
        cleanup(&path);
    }

    #[test]
    fn inconclusive_verdicts_are_retried_next_run() {
        let plan = VerificationPlan::new().block(hard_block());
        let mut campaign = Campaign::with_options(CampaignOptions {
            retry: RetryPolicy {
                budgets: vec![Budget::unlimited().with_conflicts(10)],
                fallback_transactions: 0,
                fallback_seed: 0,
            },
            ..CampaignOptions::default()
        });
        let r1 = campaign.run(&plan);
        assert_eq!(r1.inconclusive(), 1);
        let r2 = campaign.run(&plan);
        assert_eq!(r2.cache_hits(), 0, "inconclusive must not be cached");
        assert_eq!(r2.inconclusive(), 1);
    }

    #[test]
    fn persisted_cache_survives_process_restart() {
        let path = temp_cache_path("restart");
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "buggy".into(),
                ..inc_block(true)
            });

        let mut first = Campaign::with_cache_file(&path);
        assert_eq!(first.cache_load(), &CacheLoad::Missing);
        let r1 = first.run(&plan);
        assert_eq!(r1.cache_hits(), 0);
        assert!(r1.cache_write_error.is_none());
        drop(first); // "process exit"

        let mut second = Campaign::with_cache_file(&path);
        assert_eq!(second.cache_load(), &CacheLoad::Loaded { entries: 2 });
        let r2 = second.run(&plan);
        assert_eq!(r2.cache_hits(), 2);
        assert!(r2.blocks.iter().all(|b| b.from_cache));
        // The failing verdict (with its rendered counterexample) survived.
        let BlockStatus::NotEquivalent(note) = &r2.blocks[1].status else {
            panic!("expected persisted FAIL, got {:?}", r2.blocks[1].status);
        };
        assert!(note.contains("counterexample"));

        // An edit after restart re-verifies only the touched block.
        let mut edited = plan.clone();
        edited.blocks[0].slm_source = "uint8 inc(uint8 x) { return (uint8)(x + 1); }".into();
        let r3 = second.run(&edited);
        assert!(!r3.blocks[0].from_cache);
        assert!(r3.blocks[1].from_cache);
        cleanup(&path);
    }

    #[test]
    fn corrupted_cache_entry_is_a_miss_for_that_entry_only() {
        let path = temp_cache_path("corrupt");
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "other".into(),
                ..inc_block(false)
            });
        let mut first = Campaign::with_cache_file(&path);
        first.run(&plan);
        drop(first);

        // Truncate the file mid-entry (simulates a crash or disk fault):
        // the damaged record is dropped, the intact one is recovered.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();

        let mut second = Campaign::with_cache_file(&path);
        assert_eq!(
            second.cache_load(),
            &CacheLoad::Recovered {
                entries: 1,
                dropped: 1
            }
        );
        // One block is a hit, the damaged one is re-verified, and the
        // next save rewrites a fully valid cache file.
        let r = second.run(&plan);
        assert!(r.all_pass());
        assert_eq!(r.cache_hits(), 1);
        drop(second);

        let third = Campaign::with_cache_file(&path);
        assert_eq!(third.cache_load(), &CacheLoad::Loaded { entries: 2 });

        // Outright garbage is also survived (and rejected wholesale: a
        // file without the magic header can't be trusted record by
        // record).
        std::fs::write(&path, "!! this is not a cache file !!").unwrap();
        let fourth = Campaign::with_cache_file(&path);
        assert!(matches!(fourth.cache_load(), CacheLoad::Corrupt { .. }));
        cleanup(&path);
    }

    #[test]
    fn cache_recovery_records_a_counter() {
        let path = temp_cache_path("recover-counter");
        let plan = VerificationPlan::new().block(inc_block(false));
        let mut first = Campaign::with_cache_file(&path);
        first.run(&plan);
        drop(first);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 3]).unwrap();

        let rec = dfv_obs::MemoryRecorder::shared();
        let campaign = Campaign::with_options(CampaignOptions {
            cache_path: Some(path.clone()),
            obs: dfv_obs::ObsHook::attached(rec.clone()),
            ..CampaignOptions::default()
        });
        assert!(matches!(campaign.cache_load(), CacheLoad::Recovered { .. }));
        assert_eq!(
            rec.lock().unwrap().counter(dfv_obs::kinds::CACHE_RECOVERED),
            1
        );
        cleanup(&path);
    }

    #[test]
    fn panicking_block_is_quarantined_and_the_rest_complete() {
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "victim".into(),
                ..inc_block(false)
            })
            .block(BlockPair {
                name: "tail".into(),
                ..inc_block(false)
            });
        for workers in [1, 4] {
            let rec = dfv_obs::MemoryRecorder::shared();
            let mut campaign = Campaign::with_options(CampaignOptions {
                workers: Some(workers),
                io: IoHandle::chaos(ChaosPlan::none(0).panic_on_block("victim")),
                obs: dfv_obs::ObsHook::attached(rec.clone()),
                ..CampaignOptions::default()
            });
            let report = campaign.run(&plan);
            assert_eq!(report.crashed(), 1, "workers={workers}");
            let BlockStatus::Crashed(payload) = &report.blocks[1].status else {
                panic!("expected Crashed, got {:?}", report.blocks[1].status);
            };
            assert_eq!(payload, "chaos: injected panic in block victim");
            assert_eq!(report.blocks[0].status, BlockStatus::Pass);
            assert_eq!(report.blocks[2].status, BlockStatus::Pass);
            let guard = rec.lock().unwrap();
            assert_eq!(
                guard.events_of(dfv_obs::kinds::SCHED_PANIC),
                vec!["victim: chaos: injected panic in block victim"]
            );
            drop(guard);
            // The quarantine verdict shows up in report renderings too.
            assert!(report.to_string().contains("CRASH"));
            let canon = report.to_run_report().canonical_json();
            assert!(canon.contains("\"CRASH\""), "{canon}");
            assert!(canon.contains("campaign.crashed"), "{canon}");
        }
    }

    #[test]
    fn journaled_campaign_resumes_after_partial_run() {
        let path = temp_cache_path("journal-resume");
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "buggy".into(),
                ..inc_block(true)
            })
            .block(BlockPair {
                name: "third".into(),
                ..inc_block(false)
            });

        // Uninterrupted reference run (journaled — the journal must be
        // invisible in the canonical report).
        let mut clean = Campaign::with_options(CampaignOptions::resume(&path));
        let clean_report = clean.run(&plan);
        assert_eq!(clean_report.journal_load, JournalLoad::Fresh);
        assert!(clean_report.journal_error.is_none());
        let clean_json = clean_report.to_run_report().canonical_json();
        drop(clean);

        // Simulate a crash that lost the last record: truncate the tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text[..text.len() - 2].rfind('\n').unwrap() + 1;
        std::fs::write(&path, &text[..cut]).unwrap();

        // The resumed run replays the surviving verdicts, recomputes the
        // lost one, and its canonical report is byte-identical.
        let rec = dfv_obs::MemoryRecorder::shared();
        let mut resumed = Campaign::with_options(CampaignOptions {
            journal_path: Some(path.clone()),
            obs: dfv_obs::ObsHook::attached(rec.clone()),
            ..CampaignOptions::default()
        });
        let resumed_report = resumed.run(&plan);
        assert_eq!(
            resumed_report.journal_load,
            JournalLoad::Resumed {
                entries: 2,
                dropped: 0
            }
        );
        assert_eq!(resumed_report.journal_replayed(), 2);
        assert_eq!(
            rec.lock()
                .unwrap()
                .counter(dfv_obs::kinds::JOURNAL_REPLAYED),
            2
        );
        assert_eq!(resumed_report.to_run_report().canonical_json(), clean_json);
        // The replayed verdicts carry their provenance in the table view.
        assert!(resumed_report.to_string().contains("jrnl"));
        cleanup(&path);
    }

    #[test]
    fn journal_to_unwritable_path_degrades_not_fatal() {
        let plan = VerificationPlan::new().block(inc_block(false));
        let mut campaign =
            Campaign::with_options(CampaignOptions::resume("/nonexistent-dir/dfv.journal"));
        let report = campaign.run(&plan);
        assert!(report.all_pass(), "verdicts must not depend on the journal");
        assert!(report.journal_error.is_some());
        assert!(report.to_string().contains("journal: disabled"));
    }

    #[test]
    fn unwritable_cache_path_is_reported_not_fatal() {
        let plan = VerificationPlan::new().block(inc_block(false));
        let mut campaign = Campaign::with_options(CampaignOptions {
            cache_path: Some(PathBuf::from("/nonexistent-dir/dfv.cache")),
            ..CampaignOptions::default()
        });
        let report = campaign.run(&plan);
        assert!(report.all_pass(), "verdicts must not depend on the cache");
        assert!(report.cache_write_error.is_some());
    }

    #[test]
    fn cancelled_campaign_skips_unstarted_blocks_and_never_journals_them() {
        let path = temp_cache_path("cancel");
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "second".into(),
                ..inc_block(false)
            });
        // Pre-cancelled token: every block is skipped before hashing.
        let cancel = CancelToken::new();
        cancel.cancel();
        let mut campaign = Campaign::with_options(CampaignOptions {
            journal_path: Some(path.clone()),
            cancel: cancel.clone(),
            ..CampaignOptions::default()
        });
        let report = campaign.run(&plan);
        assert_eq!(report.cancelled(), 2);
        assert_eq!(report.inconclusive(), 2);
        for b in &report.blocks {
            assert_eq!(b.attempts, 0);
            assert!(!b.from_cache);
        }
        assert!(report.to_string().contains("2 cancelled"));
        let canon = report.to_run_report().canonical_json();
        assert!(canon.contains("campaign.cancelled"), "{canon}");
        drop(campaign);

        // Cancelled blocks were not journaled, so a fresh (uncancelled)
        // run on the same journal recomputes them all.
        let mut resumed = Campaign::with_options(CampaignOptions::resume(&path));
        let resumed_report = resumed.run(&plan);
        assert_eq!(resumed_report.journal_load, JournalLoad::Fresh);
        assert!(resumed_report.all_pass());
        assert_eq!(resumed_report.cancelled(), 0);
        cleanup(&path);
    }

    #[test]
    fn shared_store_dedupes_identical_content_across_campaigns() {
        let store = SharedStore::new();
        // Client A and client B submit the same block content under
        // different names and in different campaigns.
        let plan_a = VerificationPlan::new().block(inc_block(false));
        let plan_b = VerificationPlan::new().block(BlockPair {
            name: "same_content_other_name".into(),
            ..inc_block(false)
        });
        let mut a = Campaign::with_options(CampaignOptions {
            shared_store: Some(store.clone()),
            ..CampaignOptions::default()
        });
        let ra = a.run(&plan_a);
        assert!(ra.all_pass());
        assert_eq!(ra.cache_hits(), 0);
        assert_eq!(store.len(), 1);

        let mut b = Campaign::with_options(CampaignOptions {
            shared_store: Some(store.clone()),
            ..CampaignOptions::default()
        });
        let rb = b.run(&plan_b);
        assert!(rb.all_pass());
        assert_eq!(rb.cache_hits(), 1, "cross-campaign dedup must hit");
        assert_eq!(rb.blocks[0].name, "same_content_other_name");
        assert_eq!(rb.blocks[0].attempts, ra.blocks[0].attempts);
        assert_eq!(store.len(), 1, "a served hit must not re-insert");
    }

    #[test]
    fn shared_store_never_holds_inconclusive_verdicts() {
        let store = SharedStore::new();
        let plan = VerificationPlan::new().block(hard_block());
        let mut campaign = Campaign::with_options(CampaignOptions {
            retry: RetryPolicy {
                budgets: vec![Budget::unlimited().with_conflicts(10)],
                fallback_transactions: 0,
                fallback_seed: 0,
            },
            shared_store: Some(store.clone()),
            ..CampaignOptions::default()
        });
        let r = campaign.run(&plan);
        assert_eq!(r.inconclusive(), 1);
        assert!(store.is_empty(), "non-verdicts must not be shared");
    }

    #[test]
    fn progress_hook_fires_once_per_block_at_any_worker_count() {
        use std::sync::{Arc, Mutex};
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "b2".into(),
                ..inc_block(false)
            })
            .block(BlockPair {
                name: "b3".into(),
                ..inc_block(true)
            });
        for workers in [1, 4] {
            let seen: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
            let sink = seen.clone();
            let mut campaign = Campaign::with_options(CampaignOptions {
                workers: Some(workers),
                progress: ProgressHook::new(move |r| {
                    sink.lock()
                        .unwrap()
                        .push((r.name.clone(), r.status.to_string()));
                }),
                ..CampaignOptions::default()
            });
            campaign.run(&plan);
            let mut got = seen.lock().unwrap().clone();
            got.sort();
            assert_eq!(
                got,
                vec![
                    ("b2".to_string(), "PASS".to_string()),
                    ("b3".to_string(), "FAIL".to_string()),
                    ("inc".to_string(), "PASS".to_string()),
                ],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn deadline_skips_are_counted_in_the_canonical_summary() {
        let plan = VerificationPlan::new()
            .block(inc_block(false))
            .block(BlockPair {
                name: "second".into(),
                ..inc_block(false)
            });
        let mut campaign = Campaign::with_options(CampaignOptions {
            deadline: Some(Duration::ZERO),
            ..CampaignOptions::default()
        });
        let report = campaign.run(&plan);
        assert_eq!(report.deadline_skipped(), 2);
        assert!(report.to_string().contains("2 deadline-skipped"));
        let canon = report.to_run_report().canonical_json();
        assert!(canon.contains("campaign.deadline_skipped"), "{canon}");
    }
}
