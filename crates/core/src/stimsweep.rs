//! Batched constrained-random stimulus sweeps over compiled RTL.
//!
//! The simulation side of the campaign picture: a [`StimulusSweep`] runs
//! `scenarios` independent constrained-random stimulus streams (one
//! seeded [`StimulusGen`] per scenario) against a module for a fixed
//! cycle count, and digests each scenario's output stream into a stable
//! FNV-1a hash. The sweep is the fuzzing analogue of
//! [`crate::FaultCampaign`]: scenarios are the cells, and the report is a
//! pure function of the sweep seed and the module.
//!
//! # Lane batching
//!
//! With [`StimulusSweep::with_lanes`] the scenarios are chunked into
//! groups of up to 64 and each group executes on one
//! [`dfv_rtl::LaneSim`] — the bit-sliced 64-lane evaluator — with
//! scenario *i* of the group riding lane *i*. One kernel dispatch then
//! advances every scenario in the group at once, which is where the
//! ~`1/lanes` node-evaluation cost of a sweep comes from (measured by
//! [`StimulusSweepReport::node_evals`]).
//!
//! Determinism is the whole point of the layering: scenario seeds derive
//! from the scenario *index* (never the group, lane, or worker that ran
//! it), the scalar and lane engines are differentially tested to produce
//! identical outputs, and groups merge back in scenario order through the
//! deterministic scheduler in [`crate::sched`]. The canonical report
//! excludes the engine-dependent work counters, so it is byte-identical
//! for every `lanes` and worker count.

use dfv_bits::{limbs::LANES, Bv, SplitMix64};
use dfv_cosim::{FieldSpec, StimulusGen};
use dfv_obs::{Json, RunReport};
use dfv_rtl::{LaneSim, Module, Simulator};

use crate::cache::Fnv;

/// A seeded multi-scenario constrained-random sweep.
///
/// # Example
///
/// ```
/// use dfv_core::StimulusSweep;
/// use dfv_cosim::FieldSpec;
///
/// let module = dfv_designs::fir::rtl();
/// let sweep = StimulusSweep::new(7)
///     .field("in_valid", FieldSpec::Uniform { width: 1 })
///     .field("x", FieldSpec::Corners { width: 8, corner_percent: 25 })
///     .scenarios(8)
///     .cycles(32);
/// let scalar = sweep.run(&module).unwrap();
/// let batched = sweep.with_lanes(64).run(&module).unwrap();
/// assert_eq!(
///     scalar.to_run_report().canonical_json(),
///     batched.to_run_report().canonical_json(),
/// );
/// assert!(batched.node_evals < scalar.node_evals);
/// ```
#[derive(Debug, Clone)]
pub struct StimulusSweep {
    seed: u64,
    scenarios: usize,
    cycles: usize,
    lanes: usize,
    workers: Option<usize>,
    fields: Vec<(String, FieldSpec)>,
}

impl StimulusSweep {
    /// A sweep whose entire report is a pure function of `seed` and the
    /// module it runs over. Defaults: 64 scenarios, 256 cycles, scalar
    /// (one-lane) execution.
    pub fn new(seed: u64) -> Self {
        StimulusSweep {
            seed,
            scenarios: 64,
            cycles: 256,
            lanes: 1,
            workers: None,
            fields: Vec::new(),
        }
    }

    /// Adds a stimulus field driving the input port of the same name.
    /// Ports without a field are held at zero.
    pub fn field(mut self, port: &str, spec: FieldSpec) -> Self {
        self.fields.push((port.into(), spec));
        self
    }

    /// Sets how many independent scenarios to run.
    pub fn scenarios(mut self, n: usize) -> Self {
        self.scenarios = n;
        self
    }

    /// Sets how many cycles each scenario runs.
    pub fn cycles(mut self, n: usize) -> Self {
        self.cycles = n;
        self
    }

    /// Chunks scenarios into groups of `lanes` (clamped to `1..=64`),
    /// each executed on one [`LaneSim`] with scenario *i* of the group on
    /// lane *i*. Scenario seeds derive from scenario indices, so the
    /// report is byte-identical for every `lanes` value.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.clamp(1, LANES);
        self
    }

    /// Sets the scheduler worker count (lane groups are the work items).
    /// Defaults to [`std::thread::available_parallelism`]; `DFV_WORKERS`
    /// overrides either. The report is identical for every count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// The per-scenario stream seed — exposed so one scenario can be
    /// replayed in isolation from a report.
    pub fn scenario_seed(&self, scenario: usize) -> u64 {
        let mut r =
            SplitMix64::new(self.seed ^ (scenario as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next_u64()
    }

    fn gen_for(&self, scenario: usize) -> StimulusGen {
        let mut g = StimulusGen::new(self.scenario_seed(scenario));
        for (name, spec) in &self.fields {
            g = g.field(name, spec.clone());
        }
        g
    }

    /// Runs the sweep. Errors (as strings, no panic) on a field naming a
    /// missing input port or mismatching its width — catching the
    /// misconfiguration before any cycles are spent.
    pub fn run(&self, module: &Module) -> Result<StimulusSweepReport, String> {
        for (name, spec) in &self.fields {
            let port = module
                .inputs
                .iter()
                .find(|p| &p.name == name)
                .ok_or_else(|| format!("stimulus field {name:?} names no input port"))?;
            let (fw, pw) = (field_width(spec), port.width);
            if fw != pw {
                return Err(format!(
                    "stimulus field {name:?} is {fw} bits but port is {pw}"
                ));
            }
        }
        let workers = crate::sched::resolve_workers(self.workers);
        let scenario_ids: Vec<usize> = (0..self.scenarios).collect();
        let groups: Vec<&[usize]> = scenario_ids.chunks(self.lanes.max(1)).collect();
        let runs = crate::sched::run_indexed(&groups, workers, |_, group| {
            if self.lanes > 1 {
                self.run_group_lanes(module, group)
            } else {
                self.run_group_scalar(module, group)
            }
        });
        let mut scenarios = Vec::with_capacity(self.scenarios);
        let (mut node_evals, mut lane_fallback_evals) = (0u64, 0u64);
        for run in runs {
            let run = run?;
            scenarios.extend(run.hashes);
            node_evals += run.node_evals;
            lane_fallback_evals += run.lane_fallback_evals;
        }
        Ok(StimulusSweepReport {
            seed: self.seed,
            cycles: self.cycles,
            scenarios,
            node_evals,
            lane_fallback_evals,
        })
    }

    /// One lane group on the scalar engine: each scenario gets its own
    /// [`Simulator`] and its stream is replayed cycle by cycle.
    fn run_group_scalar(&self, module: &Module, group: &[usize]) -> Result<GroupRun, String> {
        let mut run = GroupRun::default();
        for &scenario in group {
            let mut sim = Simulator::new(module.clone()).map_err(|e| e.to_string())?;
            let mut gen = self.gen_for(scenario);
            let mut h = Fnv::new();
            for _ in 0..self.cycles {
                for (name, value) in gen.next_transaction() {
                    sim.poke(&name, value);
                }
                sim.step();
                for port in &module.outputs {
                    hash_bv(&mut h, &sim.output(&port.name));
                }
            }
            run.hashes.push(ScenarioOutcome {
                scenario,
                out_hash: h.finish(),
            });
            run.node_evals += sim.stats().node_evals;
        }
        Ok(run)
    }

    /// One lane group on the batched engine: a single [`LaneSim`] carries
    /// the whole group, scenario *i* on lane *i*, each lane fed by its own
    /// generator — the same per-scenario streams the scalar path draws.
    fn run_group_lanes(&self, module: &Module, group: &[usize]) -> Result<GroupRun, String> {
        let mut run = GroupRun::default();
        let mut sim = LaneSim::new(module.clone()).map_err(|e| e.to_string())?;
        let mut gens: Vec<StimulusGen> = group.iter().map(|&s| self.gen_for(s)).collect();
        let mut hashers: Vec<Fnv> = group.iter().map(|_| Fnv::new()).collect();
        for _ in 0..self.cycles {
            for (lane, gen) in gens.iter_mut().enumerate() {
                for (name, value) in gen.next_transaction() {
                    sim.poke_lane(&name, lane, value);
                }
            }
            sim.step();
            for (lane, h) in hashers.iter_mut().enumerate() {
                for port in &module.outputs {
                    hash_bv(h, &sim.output_lane(&port.name, lane));
                }
            }
        }
        for (&scenario, h) in group.iter().zip(&hashers) {
            run.hashes.push(ScenarioOutcome {
                scenario,
                out_hash: h.finish(),
            });
        }
        let stats = sim.stats();
        run.node_evals = stats.node_evals;
        run.lane_fallback_evals = stats.lane_fallback_evals;
        Ok(run)
    }
}

/// One work item's results: the group's scenario digests in lane order
/// plus the engine work it spent.
#[derive(Debug, Default)]
struct GroupRun {
    hashes: Vec<ScenarioOutcome>,
    node_evals: u64,
    lane_fallback_evals: u64,
}

fn field_width(spec: &FieldSpec) -> u32 {
    match spec {
        FieldSpec::Uniform { width }
        | FieldSpec::Range { width, .. }
        | FieldSpec::Corners { width, .. }
        | FieldSpec::Excluding { width, .. } => *width,
    }
}

/// Folds one output value into a scenario digest: width then limbs,
/// little-endian — identical bytes whichever engine produced the `Bv`.
fn hash_bv(h: &mut Fnv, v: &Bv) {
    h.write(&v.width().to_le_bytes());
    for limb in v.limbs() {
        h.write(&limb.to_le_bytes());
    }
}

/// One scenario's digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The scenario index (its seed is [`StimulusSweep::scenario_seed`]).
    pub scenario: usize,
    /// FNV-1a over every output port value of every cycle, in cycle-major
    /// module-output order.
    pub out_hash: u64,
}

/// The result of one sweep.
///
/// The work counters ([`Self::node_evals`], [`Self::lane_fallback_evals`])
/// measure the engine, not the design's behaviour — they differ between
/// scalar and batched execution by construction, so
/// [`Self::to_run_report`] deliberately leaves them out of the canonical
/// report.
#[derive(Debug, Clone)]
pub struct StimulusSweepReport {
    /// The sweep seed everything derives from.
    pub seed: u64,
    /// Cycles each scenario ran.
    pub cycles: usize,
    /// Per-scenario digests, in scenario order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Kernel dispatches summed over every engine the sweep ran — the
    /// batched path's headline: one dispatch covers a whole lane group.
    pub node_evals: u64,
    /// Per-lane scalar fallback evaluations (division and friends) the
    /// batched engines performed. Always zero on the scalar path.
    pub lane_fallback_evals: u64,
}

impl StimulusSweepReport {
    /// An order-sensitive digest of the whole sweep (for quick equality
    /// checks and bench summaries).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(&self.seed.to_le_bytes());
        for s in &self.scenarios {
            h.write(&(s.scenario as u64).to_le_bytes());
            h.write(&s.out_hash.to_le_bytes());
        }
        h.finish()
    }

    /// Total engine work: kernel dispatches plus per-lane fallbacks.
    pub fn total_evals(&self) -> u64 {
        self.node_evals + self.lane_fallback_evals
    }

    /// The sweep as a machine-readable [`RunReport`]. Only
    /// engine-independent data enters: the seed, geometry, and the
    /// per-scenario digests — so the canonical JSON is byte-identical
    /// for every `lanes` and worker count.
    pub fn to_run_report(&self) -> RunReport {
        let mut rep = RunReport::new("stimulus_sweep");
        rep.set_counter("stimsweep.scenarios", self.scenarios.len() as u64);
        rep.set_counter("stimsweep.cycles", self.cycles as u64);
        rep.set_value("seed", Json::UInt(self.seed));
        rep.set_value("digest", Json::UInt(self.digest()));
        rep.set_value(
            "scenarios",
            Json::Arr(
                self.scenarios
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("scenario", Json::UInt(s.scenario as u64)),
                            ("out_hash", Json::UInt(s.out_hash)),
                        ])
                    })
                    .collect(),
            ),
        );
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_sweep(seed: u64) -> StimulusSweep {
        StimulusSweep::new(seed)
            .field("in_valid", FieldSpec::Uniform { width: 1 })
            .field(
                "x",
                FieldSpec::Corners {
                    width: 8,
                    corner_percent: 25,
                },
            )
            .field(
                "stall",
                FieldSpec::Excluding {
                    width: 1,
                    exclude: vec![],
                },
            )
            .scenarios(96)
            .cycles(40)
    }

    #[test]
    fn scalar_and_lane_reports_are_byte_identical_at_any_geometry() {
        let module = dfv_designs::fir::rtl();
        let base = fir_sweep(0xF12)
            .run(&module)
            .unwrap()
            .to_run_report()
            .canonical_json();
        for workers in [1usize, 4] {
            for lanes in [1usize, 5, 64] {
                let j = fir_sweep(0xF12)
                    .with_workers(workers)
                    .with_lanes(lanes)
                    .run(&module)
                    .unwrap()
                    .to_run_report()
                    .canonical_json();
                assert_eq!(j, base, "diverged at workers={workers} lanes={lanes}");
            }
        }
    }

    #[test]
    fn batching_cuts_kernel_dispatches() {
        // A fully lane-able datapath: one dispatch advances all 64 lanes,
        // and the sweep's total work drops by well over the 8x acceptance
        // floor even when every per-lane fallback evaluation (zero here)
        // is charged against the batched engine.
        let mut b = dfv_rtl::ModuleBuilder::new("laneable");
        let en = b.input("en", 1);
        let x = b.input("x", 16);
        let acc = b.reg("acc", 16, dfv_bits::Bv::zero(16));
        let q = b.reg_q(acc);
        let sum = b.add(q, x);
        let folded = b.xor(sum, q);
        b.connect_reg(acc, folded);
        b.reg_enable(acc, en);
        b.output("acc", q);
        let module = b.finish().unwrap();

        let sweep = |lanes| {
            StimulusSweep::new(3)
                .field("en", FieldSpec::Uniform { width: 1 })
                .field("x", FieldSpec::Uniform { width: 16 })
                .scenarios(96)
                .cycles(40)
                .with_lanes(lanes)
                .run(&module)
                .unwrap()
        };
        let scalar = sweep(1);
        let batched = sweep(64);
        assert_eq!(scalar.digest(), batched.digest());
        assert_eq!(scalar.lane_fallback_evals, 0);
        assert_eq!(batched.lane_fallback_evals, 0);
        assert!(
            batched.total_evals() * 8 <= scalar.total_evals(),
            "batched {} vs scalar {}",
            batched.total_evals(),
            scalar.total_evals()
        );
    }

    #[test]
    fn scenarios_are_independent_of_grouping() {
        // A scenario's digest must not depend on which group (or lane) ran
        // it: sweeping 10 scenarios in groups of 3 gives the same
        // per-scenario hashes as groups of 64.
        let module = dfv_designs::fir::rtl();
        let a = fir_sweep(11)
            .scenarios(10)
            .with_lanes(3)
            .run(&module)
            .unwrap();
        let b = fir_sweep(11)
            .scenarios(10)
            .with_lanes(64)
            .run(&module)
            .unwrap();
        assert_eq!(a.scenarios, b.scenarios);
        // And distinct scenarios see distinct stimulus.
        assert_ne!(a.scenarios[0].out_hash, a.scenarios[1].out_hash);
    }

    #[test]
    fn misconfigured_fields_error_before_running() {
        let module = dfv_designs::fir::rtl();
        let missing = StimulusSweep::new(1)
            .field("nope", FieldSpec::Uniform { width: 8 })
            .run(&module);
        assert!(missing.unwrap_err().contains("no input port"));
        let wrong_width = StimulusSweep::new(1)
            .field("x", FieldSpec::Uniform { width: 16 })
            .run(&module);
        assert!(wrong_width.unwrap_err().contains("16 bits but port is 8"));
    }
}
